//! # ada-repro — umbrella crate
//!
//! Re-exports the whole ADA reproduction stack under one roof so the
//! workspace examples and integration tests (and downstream users who just
//! want everything) can depend on a single crate.
//!
//! Start with [`ada_core::Ada`] for the middleware itself, or run
//! `cargo run -p ada-bench --bin repro -- all` to regenerate the paper's
//! evaluation. See README.md for the architecture tour.
#![forbid(unsafe_code)]

pub use ada_core as core;
pub use ada_mdformats as mdformats;
pub use ada_mdmodel as mdmodel;
pub use ada_platforms as platforms;
pub use ada_plfs as plfs;
pub use ada_simfs as simfs;
pub use ada_storagesim as storagesim;
pub use ada_vmdsim as vmdsim;
pub use ada_workload as workload;

use ada_core::{Ada, AdaConfig};
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use std::sync::Arc;

/// Build a ready-to-use ADA instance over an SSD + HDD backend pair — the
/// paper's prototype deployment, as used by the examples.
pub fn ada_over_hybrid_storage() -> Ada {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), containers, ssd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_core::IngestInput;
    use ada_mdmodel::Tag;

    #[test]
    fn hybrid_helper_works() {
        let ada = ada_over_hybrid_storage();
        let w = ada_workload::gpcr_workload(800, 2, 1);
        let report = ada
            .ingest(
                "demo",
                IngestInput::Real {
                    pdb_text: ada_mdformats::write_pdb(&w.system),
                    xtc_bytes: ada_mdformats::xtc::write_xtc(
                        &w.trajectory,
                        ada_mdformats::xtc::DEFAULT_PRECISION,
                    )
                    .unwrap(),
                },
            )
            .unwrap();
        assert!(report.raw_bytes > 0);
        assert!(ada.query("demo", Some(&Tag::protein())).is_ok());
    }
}
