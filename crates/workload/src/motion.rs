//! Trajectory generation: category-dependent stochastic motion.
//!
//! Each category gets a diffusion amplitude (nm per frame step) and the
//! whole system breathes slightly; waters additionally drift. Displacements
//! are small relative to interatomic spacing, which is what makes real MD
//! trajectories compress well in XTC's small-number run coder — the
//! property the paper's decompression-cost analysis rests on.

use ada_mdformats::{Frame, Trajectory};
use ada_mdmodel::{Category, MolecularSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Per-category motion amplitudes (nm per frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionModel {
    /// Protein thermal wobble.
    pub protein_sigma: f32,
    /// Lipid lateral diffusion.
    pub lipid_sigma: f32,
    /// Water diffusion.
    pub water_sigma: f32,
    /// Ion diffusion.
    pub ion_sigma: f32,
    /// Time per frame in ps (header metadata).
    pub dt_ps: f32,
}

impl Default for MotionModel {
    fn default() -> MotionModel {
        MotionModel {
            protein_sigma: 0.004,
            lipid_sigma: 0.008,
            water_sigma: 0.02,
            ion_sigma: 0.015,
            dt_ps: 10.0,
        }
    }
}

impl MotionModel {
    fn sigma_for(&self, c: Category) -> f32 {
        match c {
            Category::Protein => self.protein_sigma,
            Category::Lipid => self.lipid_sigma,
            Category::Water => self.water_sigma,
            Category::Ion => self.ion_sigma,
            _ => self.water_sigma,
        }
    }
}

/// Streaming trajectory generator (random-walk displacement per frame).
#[derive(Debug)]
pub struct TrajectoryGenerator {
    current: Vec<[f32; 3]>,
    sigmas: Vec<f32>,
    model: MotionModel,
    rng: StdRng,
    step: i32,
    frame_index: usize,
    pbc: ada_mdmodel::PbcBox,
}

impl TrajectoryGenerator {
    /// Generator starting from the system's reference coordinates.
    pub fn new(system: &MolecularSystem, model: MotionModel, seed: u64) -> TrajectoryGenerator {
        // Precompute each atom's sigma (per-residue category lookup).
        let mut sigmas = vec![0.0f32; system.len()];
        for res in &system.residues {
            let s = model.sigma_for(res.category());
            for slot in &mut sigmas[res.atom_start..res.atom_end] {
                *slot = s;
            }
        }
        TrajectoryGenerator {
            current: system.coords.clone(),
            sigmas,
            model,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            frame_index: 0,
            pbc: system.pbc,
        }
    }

    /// Produce the next frame (the first call returns the starting
    /// coordinates unperturbed, like frame 0 of an MD run).
    pub fn next_frame(&mut self) -> Frame {
        if self.frame_index > 0 {
            // ada-lint: allow(no-panic-in-lib) constant parameters: sigma = 1.0 is finite and positive, Normal::new cannot fail
            let normal = Normal::new(0.0f32, 1.0f32).expect("unit normal");
            for (c, &sigma) in self.current.iter_mut().zip(&self.sigmas) {
                for axis in c.iter_mut() {
                    *axis += sigma * normal.sample(&mut self.rng);
                }
            }
        }
        let frame = Frame {
            step: self.step,
            time: self.frame_index as f32 * self.model.dt_ps,
            pbc: self.pbc,
            coords: self.current.clone(),
        };
        self.frame_index += 1;
        self.step += 100;
        frame
    }

    /// Generate `nframes` frames.
    pub fn generate(mut self, nframes: usize) -> Trajectory {
        let frames = (0..nframes).map(|_| self.next_frame()).collect();
        Trajectory::from_frames(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use ada_mdformats::read_xtc;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};

    fn system() -> MolecularSystem {
        SystemBuilder::gpcr_like(2500).build(11)
    }

    #[test]
    fn frame_zero_is_reference() {
        let sys = system();
        let t = TrajectoryGenerator::new(&sys, MotionModel::default(), 5).generate(3);
        assert_eq!(t.frames[0].coords, sys.coords);
        assert_ne!(t.frames[1].coords, sys.coords);
    }

    #[test]
    fn displacement_scales_with_category() {
        let sys = system();
        let t = TrajectoryGenerator::new(&sys, MotionModel::default(), 5).generate(20);
        let prot = sys.category_ranges(Category::Protein);
        let water = sys.category_ranges(Category::Water);
        let last = &t.frames[19].coords;
        let rms = |ranges: &ada_mdmodel::IndexRanges| -> f64 {
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for i in ranges.iter_indices() {
                for (a, b) in last[i].iter().zip(&sys.coords[i]) {
                    let dd = (a - b) as f64;
                    sum += dd * dd;
                }
                n += 1;
            }
            (sum / n as f64).sqrt()
        };
        assert!(
            rms(&water) > 2.0 * rms(&prot),
            "water {} vs protein {}",
            rms(&water),
            rms(&prot)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = system();
        let a = TrajectoryGenerator::new(&sys, MotionModel::default(), 9).generate(4);
        let b = TrajectoryGenerator::new(&sys, MotionModel::default(), 9).generate(4);
        assert_eq!(a, b);
        let c = TrajectoryGenerator::new(&sys, MotionModel::default(), 10).generate(4);
        assert_ne!(a, c);
    }

    #[test]
    fn time_and_step_metadata() {
        let sys = system();
        let t = TrajectoryGenerator::new(&sys, MotionModel::default(), 1).generate(3);
        assert_eq!(t.frames[0].time, 0.0);
        assert_eq!(t.frames[1].time, 10.0);
        assert_eq!(t.frames[2].step, 200);
    }

    #[test]
    fn generated_trajectory_compresses_like_md() {
        // The compressibility contract: XTC on generated frames should land
        // in the 2.5–4.5x band the paper's tables imply (raw/compressed =
        // 327/100 ≈ 3.27).
        let sys = system();
        let t = TrajectoryGenerator::new(&sys, MotionModel::default(), 3).generate(5);
        let bytes = write_xtc(&t, DEFAULT_PRECISION).unwrap();
        let raw = t.nbytes() as f64;
        let ratio = raw / bytes.len() as f64;
        assert!(ratio > 2.2 && ratio < 5.0, "compression ratio {}", ratio);
        // And it must decode.
        let back = read_xtc(&bytes).unwrap();
        assert_eq!(back.len(), 5);
    }
}
