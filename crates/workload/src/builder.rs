//! Synthetic molecular system construction.

use ada_mdmodel::{Atom, Element, MolecularSystem, PbcBox};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Composition of a synthetic system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Number of protein residues (across the helix bundle).
    pub protein_residues: usize,
    /// Number of POPC lipids (split between two leaflets).
    pub lipids: usize,
    /// Number of water molecules.
    pub waters: usize,
    /// Number of Na+/Cl- ion pairs.
    pub ion_pairs: usize,
    /// Atoms of the bound ligand (0 = apo structure; the CB1 study is a
    /// receptor–ligand system, so the default composition includes one).
    pub ligand_atoms: usize,
    /// Rectangular box edge lengths (nm).
    pub box_nm: [f32; 3],
}

/// Average atoms per protein residue produced by the builder (backbone 4 +
/// mean sidechain ≈ 4).
pub const ATOMS_PER_RESIDUE: f64 = 7.96;
/// Atoms per simplified POPC lipid.
pub const ATOMS_PER_LIPID: usize = 52;
/// Atoms per water molecule.
pub const ATOMS_PER_WATER: usize = 3;

impl SystemSpec {
    /// A GPCR-membrane-like composition totalling roughly `natoms` atoms
    /// with the paper's ~42.5 % protein / ~57.5 % MISC split (Table 2:
    /// protein is 139/327 of the raw volume).
    ///
    /// MISC is split ~45 % lipid / ~53 % water / ~2 % ions, typical of a
    /// membrane-protein box.
    pub fn gpcr_like(natoms: usize) -> SystemSpec {
        let natoms = natoms.max(200) as f64;
        let protein_atoms = natoms * 0.425;
        let lipid_atoms = natoms * 0.26;
        let water_atoms = natoms * 0.30;
        let ion_atoms = natoms * 0.015;
        let protein_residues = (protein_atoms / ATOMS_PER_RESIDUE).round().max(7.0) as usize;
        let lipids = (lipid_atoms / ATOMS_PER_LIPID as f64).round().max(2.0) as usize;
        let waters = (water_atoms / ATOMS_PER_WATER as f64).round().max(1.0) as usize;
        let ion_pairs = (ion_atoms / 2.0).round().max(1.0) as usize;
        // Box sized for liquid-like density: ~100 atoms/nm³ overall.
        let volume = natoms / 95.0;
        let lx = volume.cbrt() as f32;
        SystemSpec {
            protein_residues,
            lipids,
            waters,
            ion_pairs,
            ligand_atoms: 26, // a THC-sized ligand in the binding pocket
            box_nm: [lx, lx, lx * 1.25],
        }
    }

    /// Total atom count this spec will produce (exact).
    pub fn total_atoms(&self) -> usize {
        residue_atom_total(self.protein_residues)
            + self.lipids * ATOMS_PER_LIPID
            + self.waters * ATOMS_PER_WATER
            + self.ion_pairs * 2
            + self.ligand_atoms
    }
}

/// Builder that realizes a [`SystemSpec`] into coordinates and topology.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    spec: SystemSpec,
}

/// The 20 standard residues with the sidechain pseudo-atom counts the
/// builder uses (name, sidechain atoms). Backbone adds N, CA, C, O.
const RESIDUE_MENU: [(&str, usize); 20] = [
    ("ALA", 1),
    ("ARG", 7),
    ("ASN", 4),
    ("ASP", 4),
    ("CYS", 2),
    ("GLN", 5),
    ("GLU", 5),
    ("GLY", 0),
    ("HIS", 6),
    ("ILE", 4),
    ("LEU", 4),
    ("LYS", 5),
    ("MET", 4),
    ("PHE", 7),
    ("PRO", 3),
    ("SER", 2),
    ("THR", 3),
    ("TRP", 10),
    ("TYR", 8),
    ("VAL", 3),
];

/// Deterministic residue choice for residue index `i` (no RNG so that atom
/// counts are exactly reproducible from the spec alone).
fn residue_for(i: usize) -> (&'static str, usize) {
    RESIDUE_MENU[(i * 7 + i / 3) % RESIDUE_MENU.len()]
}

/// Exact atom total for `n` residues chosen by [`residue_for`].
fn residue_atom_total(n: usize) -> usize {
    (0..n).map(|i| 4 + residue_for(i).1).sum()
}

impl SystemBuilder {
    /// Builder for an explicit spec.
    pub fn new(spec: SystemSpec) -> SystemBuilder {
        SystemBuilder { spec }
    }

    /// Builder for a GPCR-like composition of roughly `natoms`.
    pub fn gpcr_like(natoms: usize) -> SystemBuilder {
        SystemBuilder::new(SystemSpec::gpcr_like(natoms))
    }

    /// The spec this builder realizes.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Build the system. `seed` perturbs coordinates only — the topology
    /// (atom names/residues/order) is fully determined by the spec.
    pub fn build(&self, seed: u64) -> MolecularSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut atoms: Vec<Atom> = Vec::with_capacity(self.spec.total_atoms());
        let mut coords: Vec<[f32; 3]> = Vec::with_capacity(self.spec.total_atoms());
        let [bx, by, bz] = self.spec.box_nm;
        let center = [bx / 2.0, by / 2.0, bz / 2.0];
        let mut serial: u32 = 1;
        let mut resid: i32 = 1;

        // --- Protein: a 7-helix bundle around the box axis. ---
        let helices = 7usize;
        let per_helix = self.spec.protein_residues.div_ceil(helices);
        let bundle_radius = 1.5f32;
        let helix_rise = 0.15f32;
        let wheel_radius = 0.23f32;
        let mut res_index = 0usize;
        'outer: for h in 0..helices {
            let angle0 = h as f32 / helices as f32 * std::f32::consts::TAU;
            let hx = center[0] + bundle_radius * angle0.cos();
            let hy = center[1] + bundle_radius * angle0.sin();
            for k in 0..per_helix {
                if res_index >= self.spec.protein_residues {
                    break 'outer;
                }
                let (resname, sidechain) = residue_for(res_index);
                // Helical wheel: 100° per residue.
                let phi = k as f32 * 100.0f32.to_radians();
                let z0 = center[2] - per_helix as f32 * helix_rise / 2.0 + k as f32 * helix_rise;
                let ca = [
                    hx + wheel_radius * phi.cos(),
                    hy + wheel_radius * phi.sin(),
                    z0,
                ];
                let backbone: [(&str, Element, [f32; 3]); 4] = [
                    ("N", Element::N, [ca[0] - 0.12, ca[1], ca[2] - 0.05]),
                    ("CA", Element::C, ca),
                    ("C", Element::C, [ca[0] + 0.12, ca[1] + 0.03, ca[2] + 0.05]),
                    ("O", Element::O, [ca[0] + 0.15, ca[1] + 0.14, ca[2] + 0.02]),
                ];
                for (name, element, pos) in backbone {
                    atoms.push(Atom {
                        serial,
                        name: name.to_string(),
                        resname: resname.to_string(),
                        resid,
                        chain: 'A',
                        element,
                        hetero: false,
                    });
                    coords.push(jitter(pos, 0.01, &mut rng));
                    serial = serial.wrapping_add(1);
                }
                // Sidechain pseudo-atoms fan outward from CA.
                let out_dir = [phi.cos(), phi.sin(), 0.0];
                for s in 0..sidechain {
                    let name = format!("CB{}", s + 1);
                    atoms.push(Atom {
                        serial,
                        name,
                        resname: resname.to_string(),
                        resid,
                        chain: 'A',
                        element: Element::C,
                        hetero: false,
                    });
                    let r = 0.15 * (s as f32 + 1.0);
                    coords.push(jitter(
                        [
                            ca[0] + out_dir[0] * r,
                            ca[1] + out_dir[1] * r,
                            ca[2] + 0.03 * s as f32,
                        ],
                        0.02,
                        &mut rng,
                    ));
                    serial = serial.wrapping_add(1);
                }
                resid += 1;
                res_index += 1;
            }
        }

        // --- Ligand: a small hetero molecule in the bundle's pocket. ---
        if self.spec.ligand_atoms > 0 {
            for k in 0..self.spec.ligand_atoms {
                let phi = k as f32 * 0.8;
                atoms.push(Atom {
                    serial,
                    name: format!("L{}", k + 1),
                    resname: "LIG".to_string(),
                    resid,
                    chain: 'X',
                    element: if k % 6 == 5 { Element::O } else { Element::C },
                    hetero: true,
                });
                coords.push(jitter(
                    [
                        center[0] + 0.35 * phi.cos(),
                        center[1] + 0.35 * phi.sin(),
                        center[2] - 0.6 + 0.05 * k as f32,
                    ],
                    0.01,
                    &mut rng,
                ));
                serial = serial.wrapping_add(1);
            }
            resid += 1;
        }

        // --- Lipid bilayer: two leaflets of simplified POPC on a grid. ---
        let per_leaflet = self.spec.lipids.div_ceil(2);
        let grid = (per_leaflet as f32).sqrt().ceil().max(1.0) as usize;
        let spacing = bx / grid as f32;
        let mut lipid_count = 0usize;
        for leaflet in 0..2usize {
            let z_head = center[2] + if leaflet == 0 { 1.9 } else { -1.9 };
            let tail_dir = if leaflet == 0 { -1.0f32 } else { 1.0 };
            for g in 0..grid * grid {
                if lipid_count >= self.spec.lipids {
                    break;
                }
                let gx = (g % grid) as f32 * spacing + spacing / 2.0;
                let gy = (g / grid) as f32 * spacing + spacing / 2.0;
                // Skip the protein footprint.
                let dx = gx - center[0];
                let dy = gy - center[1];
                if (dx * dx + dy * dy).sqrt() < bundle_radius + 0.6 {
                    continue;
                }
                push_lipid(
                    &mut atoms,
                    &mut coords,
                    &mut serial,
                    &mut resid,
                    [gx, gy, z_head],
                    tail_dir,
                    &mut rng,
                );
                lipid_count += 1;
            }
        }
        // If the footprint exclusion left lipids unplaced, pack the rest in
        // a second shell so the composition stays exact.
        while lipid_count < self.spec.lipids {
            let gx = rng.gen_range(0.0..bx);
            let gy = rng.gen_range(0.0..by);
            let leaflet = lipid_count % 2;
            let z_head = center[2] + if leaflet == 0 { 1.9 } else { -1.9 };
            let tail_dir = if leaflet == 0 { -1.0f32 } else { 1.0 };
            push_lipid(
                &mut atoms,
                &mut coords,
                &mut serial,
                &mut resid,
                [gx, gy, z_head],
                tail_dir,
                &mut rng,
            );
            lipid_count += 1;
        }

        // --- Water: lattice filling the non-membrane slabs. ---
        let w_grid = (self.spec.waters as f32).cbrt().ceil().max(1.0) as usize;
        let mut placed = 0usize;
        'water: for iz in 0..w_grid * 2 {
            for iy in 0..w_grid {
                for ix in 0..w_grid {
                    if placed >= self.spec.waters {
                        break 'water;
                    }
                    let x = (ix as f32 + 0.5) / w_grid as f32 * bx;
                    let y = (iy as f32 + 0.5) / w_grid as f32 * by;
                    // Two solvent slabs above and below the membrane.
                    let frac = (iz as f32 + 0.5) / (w_grid * 2) as f32;
                    let z = if frac < 0.5 {
                        frac * (center[2] - 2.6)
                    } else {
                        center[2] + 2.6 + (frac - 0.5) * (bz - center[2] - 2.6)
                    };
                    let o = jitter([x, y, z], 0.03, &mut rng);
                    let spec3: [(&str, Element, [f32; 3]); 3] = [
                        ("OW", Element::O, o),
                        ("HW1", Element::H, [o[0] + 0.0957, o[1], o[2]]),
                        ("HW2", Element::H, [o[0] - 0.024, o[1] + 0.0927, o[2]]),
                    ];
                    for (name, element, pos) in spec3 {
                        atoms.push(Atom {
                            serial,
                            name: name.to_string(),
                            resname: "SOL".to_string(),
                            resid,
                            chain: 'W',
                            element,
                            hetero: false,
                        });
                        coords.push(pos);
                        serial = serial.wrapping_add(1);
                    }
                    resid += 1;
                    placed += 1;
                }
            }
        }

        // --- Ions. ---
        for p in 0..self.spec.ion_pairs {
            for (resname, name, element) in [("SOD", "NA", Element::Na), ("CLA", "CL", Element::Cl)]
            {
                atoms.push(Atom {
                    serial,
                    name: name.to_string(),
                    resname: resname.to_string(),
                    resid,
                    chain: 'I',
                    element,
                    hetero: true,
                });
                let z = if p % 2 == 0 { 0.4 } else { bz - 0.4 };
                coords.push([
                    rng.gen_range(0.0..bx),
                    rng.gen_range(0.0..by),
                    z + rng.gen_range(-0.2..0.2f32),
                ]);
                serial = serial.wrapping_add(1);
                resid += 1;
            }
        }

        MolecularSystem::from_atoms(
            "synthetic GPCR-like membrane system (ADA reproduction workload)",
            atoms,
            coords,
            PbcBox::rectangular(bx, by, bz),
        )
    }
}

fn jitter(p: [f32; 3], amp: f32, rng: &mut StdRng) -> [f32; 3] {
    [
        p[0] + rng.gen_range(-amp..amp),
        p[1] + rng.gen_range(-amp..amp),
        p[2] + rng.gen_range(-amp..amp),
    ]
}

fn push_lipid(
    atoms: &mut Vec<Atom>,
    coords: &mut Vec<[f32; 3]>,
    serial: &mut u32,
    resid: &mut i32,
    head: [f32; 3],
    tail_dir: f32,
    rng: &mut StdRng,
) {
    // Simplified POPC: 8 head-group atoms, two tails of 22 carbons each.
    let head_atoms: [(&str, Element); 8] = [
        ("N", Element::N),
        ("C13", Element::C),
        ("C14", Element::C),
        ("C15", Element::C),
        ("P", Element::P),
        ("O11", Element::O),
        ("O12", Element::O),
        ("C1", Element::C),
    ];
    for (k, (name, element)) in head_atoms.iter().enumerate() {
        atoms.push(Atom {
            serial: *serial,
            name: name.to_string(),
            resname: "POPC".to_string(),
            resid: *resid,
            chain: 'L',
            element: *element,
            hetero: false,
        });
        coords.push(jitter(
            [
                head[0] + (k as f32 * 0.07) * (k as f32).cos(),
                head[1] + (k as f32 * 0.07) * (k as f32).sin(),
                head[2],
            ],
            0.02,
            rng,
        ));
        *serial = serial.wrapping_add(1);
    }
    for tail in 0..2 {
        let off = if tail == 0 { -0.2f32 } else { 0.2 };
        for c in 0..22usize {
            atoms.push(Atom {
                serial: *serial,
                name: format!("C{}{}", tail + 2, c + 1),
                resname: "POPC".to_string(),
                resid: *resid,
                chain: 'L',
                element: Element::C,
                hetero: false,
            });
            coords.push(jitter(
                [
                    head[0] + off,
                    head[1],
                    head[2] + tail_dir * 0.127 * (c as f32 + 1.0),
                ],
                0.02,
                rng,
            ));
            *serial = serial.wrapping_add(1);
        }
    }
    *resid += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::Category;

    #[test]
    fn spec_atom_count_is_exact() {
        let spec = SystemSpec::gpcr_like(5000);
        let sys = SystemBuilder::new(spec.clone()).build(3);
        assert_eq!(sys.len(), spec.total_atoms());
    }

    #[test]
    fn composition_close_to_target() {
        for natoms in [1000usize, 5000, 20000] {
            let sys = SystemBuilder::gpcr_like(natoms).build(1);
            let total = sys.len() as f64;
            assert!(
                (total - natoms as f64).abs() / (natoms as f64) < 0.08,
                "total {} vs target {}",
                total,
                natoms
            );
            let f = sys.protein_fraction();
            assert!(f > 0.38 && f < 0.47, "protein fraction {} at {}", f, natoms);
        }
    }

    #[test]
    fn all_categories_present() {
        let sys = SystemBuilder::gpcr_like(4000).build(9);
        let counts = sys.category_counts();
        assert!(counts[&Category::Protein] > 0);
        assert!(counts[&Category::Lipid] > 0);
        assert!(counts[&Category::Water] > 0);
        assert!(counts[&Category::Ion] > 0);
        // The CB1-like composition carries a bound ligand.
        assert_eq!(counts[&Category::Ligand], 26);
    }

    #[test]
    fn coordinates_inside_reasonable_bounds() {
        let sys = SystemBuilder::gpcr_like(3000).build(5);
        let l = sys.pbc.lengths();
        for c in &sys.coords {
            for d in 0..3 {
                assert!(
                    c[d] > -1.5 && c[d] < l[d] + 1.5,
                    "coordinate {:?} outside box {:?}",
                    c,
                    l
                );
            }
        }
    }

    #[test]
    fn lipids_have_52_atoms() {
        let sys = SystemBuilder::gpcr_like(4000).build(2);
        for res in &sys.residues {
            if res.name == "POPC" {
                assert_eq!(res.len(), ATOMS_PER_LIPID);
            }
            if res.name == "SOL" {
                assert_eq!(res.len(), 3);
            }
        }
    }

    #[test]
    fn topology_independent_of_seed() {
        let a = SystemBuilder::gpcr_like(2000).build(1);
        let b = SystemBuilder::gpcr_like(2000).build(2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.atoms.iter().zip(&b.atoms) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.resname, y.resname);
        }
        // Coordinates differ.
        assert_ne!(a.coords, b.coords);
    }
}
