//! Byte-volume calibration against the paper's own tables.
//!
//! Tables 1, 2 and 6 pin down the GPCR dataset's per-frame volumes:
//!
//! * raw (decompressed) trajectory ≈ **0.522 MB/frame** (327 MB / 626),
//! * compressed `.xtc` ≈ **0.160 MB/frame** (100 MB / 626, ratio ≈ 3.27×),
//! * decompressed *protein* subset ≈ **0.222 MB/frame** (139 MB / 626,
//!   ≈ 42.5 % of raw).
//!
//! At 12 bytes/atom/frame that implies a ≈ **45,600-atom** system — typical
//! for a solvated membrane GPCR. [`PaperCalibration`] exposes these
//! constants; [`DatasetSpec`] scales them to any frame count (used by the
//! platform harness to build Synthetic datasets); the `PAPER_TABLE*` rows
//! keep the literal published numbers for paper-vs-measured reports.

/// One megabyte as used by the paper's tables (decimal).
pub const MB: f64 = 1_000_000.0;

/// Volume calibration derived from the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCalibration {
    /// Decompressed bytes per frame.
    pub raw_bytes_per_frame: f64,
    /// Compressed (.xtc) bytes per frame.
    pub compressed_bytes_per_frame: f64,
    /// Decompressed protein-subset bytes per frame.
    pub protein_bytes_per_frame: f64,
}

impl Default for PaperCalibration {
    fn default() -> PaperCalibration {
        PaperCalibration {
            // 2612.8 GB-scale row of Table 6 / 5,004,800 frames, consistent
            // with 327/626 of Table 2.
            raw_bytes_per_frame: 0.522 * MB,
            compressed_bytes_per_frame: 0.15981 * MB,
            protein_bytes_per_frame: 0.22155 * MB,
        }
    }
}

impl PaperCalibration {
    /// Atom count implied by the raw volume at 12 bytes/atom.
    pub fn implied_natoms(&self) -> usize {
        (self.raw_bytes_per_frame / 12.0).round() as usize
    }

    /// Protein fraction of the decompressed volume.
    pub fn protein_fraction(&self) -> f64 {
        self.protein_bytes_per_frame / self.raw_bytes_per_frame
    }

    /// Compression ratio raw/compressed.
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes_per_frame / self.compressed_bytes_per_frame
    }

    /// Calibration measured from an actual synthetic workload: encode the
    /// trajectory with the real codec and take the observed ratios.
    pub fn from_measured(
        natoms: usize,
        protein_atom_fraction: f64,
        measured_compression_ratio: f64,
    ) -> PaperCalibration {
        let raw = natoms as f64 * 12.0;
        PaperCalibration {
            raw_bytes_per_frame: raw,
            compressed_bytes_per_frame: raw / measured_compression_ratio,
            protein_bytes_per_frame: raw * protein_atom_fraction,
        }
    }
}

/// A dataset sized in frames, with volumes derived from a calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Number of trajectory frames.
    pub frames: u64,
    /// Volume calibration.
    pub cal: PaperCalibration,
}

impl DatasetSpec {
    /// Spec with the default paper calibration.
    pub fn paper(frames: u64) -> DatasetSpec {
        DatasetSpec {
            frames,
            cal: PaperCalibration::default(),
        }
    }

    /// Compressed `.xtc` size in bytes.
    pub fn compressed_bytes(&self) -> u64 {
        (self.frames as f64 * self.cal.compressed_bytes_per_frame) as u64
    }

    /// Decompressed raw size in bytes.
    pub fn raw_bytes(&self) -> u64 {
        (self.frames as f64 * self.cal.raw_bytes_per_frame) as u64
    }

    /// Decompressed protein-subset size in bytes.
    pub fn protein_bytes(&self) -> u64 {
        (self.frames as f64 * self.cal.protein_bytes_per_frame) as u64
    }

    /// Decompressed MISC-subset size in bytes.
    pub fn misc_bytes(&self) -> u64 {
        self.raw_bytes() - self.protein_bytes()
    }
}

/// A literal row of the paper's Table 1 (compressed file MB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Frame count.
    pub frames: u64,
    /// Complete compressed data (MB).
    pub complete_mb: f64,
    /// Protein portion of the compressed data (MB).
    pub protein_mb: f64,
    /// Protein fraction (%).
    pub fraction_pct: f64,
}

/// Table 1: data components of three .xtc files.
pub const PAPER_TABLE1: [Table1Row; 3] = [
    Table1Row {
        frames: 626,
        complete_mb: 100.0,
        protein_mb: 44.0,
        fraction_pct: 44.0,
    },
    Table1Row {
        frames: 1251,
        complete_mb: 200.0,
        protein_mb: 98.0,
        fraction_pct: 49.0,
    },
    Table1Row {
        frames: 5006,
        complete_mb: 800.0,
        protein_mb: 348.0,
        fraction_pct: 43.5,
    },
];

/// A literal row of Table 2 / Table 6 (sizes in MB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeRow {
    /// Frame count.
    pub frames: u64,
    /// Compressed size loaded by the plain file system (MB).
    pub compressed_mb: f64,
    /// Decompressed protein subset loaded by ADA (MB).
    pub ada_protein_mb: f64,
    /// Raw decompressed size (MB).
    pub raw_mb: f64,
}

/// Table 2: data size comparisons on the SSD server (ext4 vs ADA).
pub const PAPER_TABLE2: [SizeRow; 8] = [
    SizeRow {
        frames: 626,
        compressed_mb: 100.0,
        ada_protein_mb: 139.0,
        raw_mb: 327.0,
    },
    SizeRow {
        frames: 1251,
        compressed_mb: 200.0,
        ada_protein_mb: 277.0,
        raw_mb: 653.0,
    },
    SizeRow {
        frames: 1877,
        compressed_mb: 300.0,
        ada_protein_mb: 416.0,
        raw_mb: 980.0,
    },
    SizeRow {
        frames: 2503,
        compressed_mb: 400.0,
        ada_protein_mb: 555.0,
        raw_mb: 1306.0,
    },
    SizeRow {
        frames: 3129,
        compressed_mb: 500.0,
        ada_protein_mb: 693.0,
        raw_mb: 1632.0,
    },
    SizeRow {
        frames: 3754,
        compressed_mb: 600.0,
        ada_protein_mb: 832.0,
        raw_mb: 1959.0,
    },
    SizeRow {
        frames: 4380,
        compressed_mb: 700.0,
        ada_protein_mb: 970.0,
        raw_mb: 2285.0,
    },
    SizeRow {
        frames: 5006,
        compressed_mb: 800.0,
        ada_protein_mb: 1108.0,
        raw_mb: 2612.0,
    },
];

/// Table 6: data size comparisons on the fat-node server (XFS vs ADA);
/// sizes in MB (converted from the paper's GB ×1000).
pub const PAPER_TABLE6: [SizeRow; 13] = [
    SizeRow {
        frames: 62_560,
        compressed_mb: 10_000.0,
        ada_protein_mb: 13_900.0,
        raw_mb: 32_700.0,
    },
    SizeRow {
        frames: 187_680,
        compressed_mb: 30_000.0,
        ada_protein_mb: 41_600.0,
        raw_mb: 98_000.0,
    },
    SizeRow {
        frames: 312_800,
        compressed_mb: 50_000.0,
        ada_protein_mb: 69_300.0,
        raw_mb: 163_300.0,
    },
    SizeRow {
        frames: 437_920,
        compressed_mb: 70_000.0,
        ada_protein_mb: 97_000.0,
        raw_mb: 228_600.0,
    },
    SizeRow {
        frames: 625_600,
        compressed_mb: 100_000.0,
        ada_protein_mb: 138_600.0,
        raw_mb: 326_600.0,
    },
    SizeRow {
        frames: 938_400,
        compressed_mb: 150_000.0,
        ada_protein_mb: 207_900.0,
        raw_mb: 489_900.0,
    },
    SizeRow {
        frames: 1_251_200,
        compressed_mb: 200_000.0,
        ada_protein_mb: 277_200.0,
        raw_mb: 653_200.0,
    },
    SizeRow {
        frames: 1_564_000,
        compressed_mb: 250_000.0,
        ada_protein_mb: 346_500.0,
        raw_mb: 816_500.0,
    },
    SizeRow {
        frames: 1_876_800,
        compressed_mb: 300_000.0,
        ada_protein_mb: 415_800.0,
        raw_mb: 979_800.0,
    },
    SizeRow {
        frames: 2_502_400,
        compressed_mb: 400_000.0,
        ada_protein_mb: 554_400.0,
        raw_mb: 1_306_400.0,
    },
    SizeRow {
        frames: 3_440_800,
        compressed_mb: 550_000.0,
        ada_protein_mb: 762_300.0,
        raw_mb: 1_796_300.0,
    },
    SizeRow {
        frames: 4_379_200,
        compressed_mb: 700_000.0,
        ada_protein_mb: 970_200.0,
        raw_mb: 2_286_200.0,
    },
    SizeRow {
        frames: 5_004_800,
        compressed_mb: 800_000.0,
        ada_protein_mb: 1_108_800.0,
        raw_mb: 2_612_800.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_band() {
        let c = PaperCalibration::default();
        assert!((c.protein_fraction() - 0.425).abs() < 0.01);
        assert!((c.compression_ratio() - 3.27).abs() < 0.1);
        let n = c.implied_natoms();
        assert!(n > 40_000 && n < 50_000, "implied natoms {}", n);
    }

    #[test]
    fn dataset_spec_scales_linearly() {
        let a = DatasetSpec::paper(626);
        let b = DatasetSpec::paper(1252);
        assert_eq!(b.raw_bytes() / a.raw_bytes(), 2);
        assert!(a.misc_bytes() > a.protein_bytes());
    }

    #[test]
    fn model_reproduces_table2_within_tolerance() {
        for row in PAPER_TABLE2 {
            let d = DatasetSpec::paper(row.frames);
            let rel = |model: f64, paper: f64| (model - paper).abs() / paper;
            assert!(
                rel(d.compressed_bytes() as f64 / MB, row.compressed_mb) < 0.02,
                "compressed mismatch at {} frames",
                row.frames
            );
            assert!(
                rel(d.raw_bytes() as f64 / MB, row.raw_mb) < 0.02,
                "raw mismatch at {} frames",
                row.frames
            );
            assert!(
                rel(d.protein_bytes() as f64 / MB, row.ada_protein_mb) < 0.02,
                "protein mismatch at {} frames",
                row.frames
            );
        }
    }

    #[test]
    fn model_reproduces_table6_within_tolerance() {
        for row in PAPER_TABLE6 {
            let d = DatasetSpec::paper(row.frames);
            let rel = |model: f64, paper: f64| (model - paper).abs() / paper;
            assert!(rel(d.compressed_bytes() as f64 / MB, row.compressed_mb) < 0.03);
            assert!(rel(d.raw_bytes() as f64 / MB, row.raw_mb) < 0.03);
            assert!(rel(d.protein_bytes() as f64 / MB, row.ada_protein_mb) < 0.03);
        }
    }

    #[test]
    fn from_measured_roundtrip() {
        let c = PaperCalibration::from_measured(45_600, 0.425, 3.27);
        assert_eq!(c.implied_natoms(), 45_600);
        assert!((c.protein_fraction() - 0.425).abs() < 1e-12);
        assert!((c.compression_ratio() - 3.27).abs() < 1e-9);
    }

    #[test]
    fn table1_fraction_consistency() {
        for row in PAPER_TABLE1 {
            let computed = row.protein_mb / row.complete_mb * 100.0;
            assert!((computed - row.fraction_pct).abs() < 1.0);
        }
    }
}
