//! Shuffled-epoch sampling schedules — the ML-training read pattern.
//!
//! Atompack-style training loops (see PAPERS.md) read atomistic datasets
//! as many small `(tag × frame-range)` samples: each epoch covers every
//! window of the trajectory exactly once, in a freshly shuffled order.
//! The *set* of samples is identical across epochs; only the visit order
//! changes — which is exactly what makes a hot-set cache effective and a
//! cache-less reader pay full decode cost per sample.
//!
//! [`shuffled_epochs`] generates that schedule deterministically from a
//! seed, so benchmarks and byte-equivalence tests replay identical access
//! streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sample: a strided frame window of one tag, matching the arguments
/// of `Ada::query_range` / `Frontend::query_range`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Tag the window is drawn from.
    pub tag: String,
    /// First frame (inclusive).
    pub start: usize,
    /// End of the window (exclusive).
    pub end: usize,
    /// Keep every `stride`-th frame.
    pub stride: usize,
}

/// Parameters of a shuffled-epoch sampling schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Frames in the trajectory being sampled.
    pub nframes: usize,
    /// Frames per sample window (clamped to ≥ 1).
    pub window: usize,
    /// Stride within each window (clamped to ≥ 1).
    pub stride: usize,
    /// Number of epochs to schedule.
    pub epochs: usize,
    /// Tags the loader draws from (each epoch tiles every tag).
    pub tags: Vec<String>,
    /// Seed; epoch `e` shuffles with `seed ^ e` so epochs differ but the
    /// whole schedule replays exactly.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            nframes: 512,
            window: 16,
            stride: 1,
            epochs: 3,
            tags: vec!["p".to_string()],
            seed: 0x5A3E,
        }
    }
}

/// Every window of one epoch, unshuffled: each tag tiled into
/// `ceil(nframes / window)` consecutive windows (the last one short).
fn epoch_tiles(cfg: &SamplingConfig) -> Vec<Sample> {
    let window = cfg.window.max(1);
    let stride = cfg.stride.max(1);
    let mut tiles = Vec::new();
    for tag in &cfg.tags {
        let mut start = 0usize;
        while start < cfg.nframes {
            let end = (start + window).min(cfg.nframes);
            tiles.push(Sample {
                tag: tag.clone(),
                start,
                end,
                stride,
            });
            start = end;
        }
    }
    tiles
}

/// Generate `cfg.epochs` epochs; each covers every `(tag × window)` tile
/// exactly once, Fisher–Yates-shuffled with `seed ^ epoch`. Deterministic:
/// the same config always yields the same schedule.
pub fn shuffled_epochs(cfg: &SamplingConfig) -> Vec<Vec<Sample>> {
    (0..cfg.epochs)
        .map(|epoch| {
            let mut tiles = epoch_tiles(cfg);
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ epoch as u64);
            // Fisher–Yates, back to front.
            for i in (1..tiles.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                tiles.swap(i, j);
            }
            tiles
        })
        .collect()
}

/// Frames one sample delivers (`ceil((end − start) / stride)`).
pub fn sample_len(s: &Sample) -> usize {
    (s.end - s.start).div_ceil(s.stride.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn cfg() -> SamplingConfig {
        SamplingConfig {
            nframes: 100,
            window: 16,
            stride: 2,
            epochs: 4,
            tags: vec!["p".into(), "m".into()],
            seed: 42,
        }
    }

    #[test]
    fn epochs_cover_every_tile_exactly_once() {
        let epochs = shuffled_epochs(&cfg());
        assert_eq!(epochs.len(), 4);
        // 100 frames / window 16 = 7 tiles per tag, 2 tags.
        let canonical: BTreeSet<(String, usize, usize)> = epoch_tiles(&cfg())
            .into_iter()
            .map(|s| (s.tag, s.start, s.end))
            .collect();
        assert_eq!(canonical.len(), 14);
        for epoch in &epochs {
            assert_eq!(epoch.len(), 14);
            let seen: BTreeSet<(String, usize, usize)> = epoch
                .iter()
                .map(|s| (s.tag.clone(), s.start, s.end))
                .collect();
            assert_eq!(seen, canonical, "an epoch dropped or duplicated a tile");
        }
    }

    #[test]
    fn windows_partition_the_frame_space() {
        let tiles = epoch_tiles(&cfg());
        for tag in ["p", "m"] {
            let mut of_tag: Vec<&Sample> = tiles.iter().filter(|s| s.tag == tag).collect();
            of_tag.sort_by_key(|s| s.start);
            let mut at = 0usize;
            for s in of_tag {
                assert_eq!(s.start, at, "gap or overlap at frame {}", at);
                assert!(s.end > s.start);
                at = s.end;
            }
            assert_eq!(at, 100);
        }
    }

    #[test]
    fn schedule_is_deterministic_and_epochs_differ() {
        let a = shuffled_epochs(&cfg());
        let b = shuffled_epochs(&cfg());
        assert_eq!(a, b);
        // Different epochs visit the tiles in different orders (with 14
        // tiles a collision across all pairs is vanishingly unlikely).
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
        // A different seed reshuffles.
        let mut other = cfg();
        other.seed ^= 1;
        assert_ne!(shuffled_epochs(&other)[0], a[0]);
    }

    #[test]
    fn sample_len_counts_strided_frames() {
        let s = Sample {
            tag: "p".into(),
            start: 3,
            end: 10,
            stride: 2,
        };
        assert_eq!(sample_len(&s), 4); // frames 3, 5, 7, 9
        let s1 = Sample {
            tag: "p".into(),
            start: 0,
            end: 16,
            stride: 1,
        };
        assert_eq!(sample_len(&s1), 16);
    }
}
