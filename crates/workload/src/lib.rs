#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-workload — synthetic GPCR-like systems and trajectories
//!
//! The paper evaluates ADA with trajectories from the GPCR (CB1 receptor)
//! MD study [10]. Those production datasets are not redistributable, so this
//! crate builds the closest synthetic equivalent:
//!
//! * a **7-transmembrane-helix protein** embedded in a **POPC bilayer**,
//!   solvated with **TIP3-like water** and ions ([`builder`]);
//! * molecule ordering follows standard preparation tools (protein first,
//!   then lipids, water, ions) so the categorizer sees the same contiguous
//!   run structure real files have;
//! * a **trajectory generator** ([`motion`]) that displaces atoms with
//!   category-dependent diffusion (water drifts fastest, protein wobbles
//!   least) — giving XTC the same "small consecutive displacement"
//!   compressibility structure real solvated systems have;
//! * **calibration** ([`calibration`]) reproducing the byte accounting of
//!   the paper's Tables 1, 2 and 6 (0.52 MB/frame raw, ~0.16 compressed,
//!   ~0.22 protein) and the atom counts they imply.
//!
//! What matters for ADA is (a) PDB residue classes, (b) XTC frame structure
//! and compressibility, (c) the protein:MISC volume split — all three are
//! reproduced; chemistry beyond that is irrelevant to I/O behaviour.

pub mod builder;
pub mod calibration;
pub mod motion;
pub mod sampling;

pub use builder::{SystemBuilder, SystemSpec};
pub use calibration::{DatasetSpec, PaperCalibration};
pub use motion::{MotionModel, TrajectoryGenerator};
pub use sampling::{sample_len, shuffled_epochs, Sample, SamplingConfig};

use ada_mdformats::Trajectory;
use ada_mdmodel::MolecularSystem;

/// A ready-to-run workload: structure + trajectory, as the paper's
/// `.pdb` + `.xtc` pairs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The structure (what would be written to `foo.pdb`).
    pub system: MolecularSystem,
    /// The trajectory (what would be written to `bar.xtc`).
    pub trajectory: Trajectory,
}

/// Build a GPCR-like workload with roughly `natoms` atoms and `nframes`
/// frames, deterministically from `seed`.
pub fn gpcr_workload(natoms: usize, nframes: usize, seed: u64) -> Workload {
    let system = SystemBuilder::gpcr_like(natoms).build(seed);
    let trajectory =
        TrajectoryGenerator::new(&system, MotionModel::default(), seed ^ 0x5EED).generate(nframes);
    Workload { system, trajectory }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::Category;

    #[test]
    fn gpcr_workload_protein_fraction_in_paper_band() {
        let w = gpcr_workload(4000, 3, 42);
        let f = w.system.protein_fraction();
        // Paper Table 1: 43.5%–49% of bytes are protein; our atom fraction
        // targets the same band.
        assert!(f > 0.40 && f < 0.50, "protein fraction {}", f);
        assert_eq!(w.trajectory.natoms(), w.system.len());
        assert_eq!(w.trajectory.len(), 3);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = gpcr_workload(1500, 2, 7);
        let b = gpcr_workload(1500, 2, 7);
        assert_eq!(a.system, b.system);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn categories_are_contiguous_blocks() {
        let w = gpcr_workload(3000, 1, 1);
        // Standard preparation order: protein, lipid, water, ion — each in
        // one contiguous run.
        for cat in [Category::Protein, Category::Lipid, Category::Water] {
            let r = w.system.category_ranges(cat);
            assert_eq!(r.run_count(), 1, "{:?} not contiguous", cat);
        }
    }
}
