//! The Table 3 notation as a type.

/// One evaluated configuration (Table 3).
///
/// * `C` — VMD loads a compressed XTC file.
/// * `D` — VMD loads a raw XTC file without compression.
/// * `ADA (all)` — ADA transfers the entire (decompressed) raw data.
/// * `ADA (protein)` — ADA transfers only the protein data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Traditional FS, compressed load (C-ext4 / C-PVFS / XFS).
    CTraditional,
    /// Traditional FS, pre-decompressed load (D-ext4 / D-PVFS).
    DTraditional,
    /// ADA delivering every tag's decompressed subset.
    AdaAll,
    /// ADA delivering only the protein subset.
    AdaProtein,
}

impl Scenario {
    /// All four scenarios in figure order.
    pub const ALL: [Scenario; 4] = [
        Scenario::CTraditional,
        Scenario::DTraditional,
        Scenario::AdaAll,
        Scenario::AdaProtein,
    ];

    /// The paper's label for this scenario on a given base file system
    /// ("ext4", "PVFS", "XFS").
    pub fn label(&self, base_fs: &str) -> String {
        match self {
            Scenario::CTraditional => {
                if base_fs == "XFS" {
                    // Fig. 10 drops the C- prefix: XFS loads compressed.
                    "XFS".to_string()
                } else {
                    format!("C-{}", base_fs)
                }
            }
            Scenario::DTraditional => format!("D-{}", base_fs),
            Scenario::AdaAll => {
                if base_fs == "XFS" {
                    "ADA (all)".to_string()
                } else {
                    "D-ADA (all)".to_string()
                }
            }
            Scenario::AdaProtein => {
                if base_fs == "XFS" {
                    "ADA (protein)".to_string()
                } else {
                    "D-ADA (protein)".to_string()
                }
            }
        }
    }

    /// Whether this scenario goes through the ADA middleware.
    pub fn uses_ada(&self) -> bool {
        matches!(self, Scenario::AdaAll | Scenario::AdaProtein)
    }

    /// Whether the compute node must decompress.
    pub fn decompresses_on_compute(&self) -> bool {
        matches!(self, Scenario::CTraditional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(Scenario::CTraditional.label("ext4"), "C-ext4");
        assert_eq!(Scenario::DTraditional.label("PVFS"), "D-PVFS");
        assert_eq!(Scenario::AdaAll.label("ext4"), "D-ADA (all)");
        assert_eq!(Scenario::AdaProtein.label("PVFS"), "D-ADA (protein)");
        assert_eq!(Scenario::CTraditional.label("XFS"), "XFS");
        assert_eq!(Scenario::AdaAll.label("XFS"), "ADA (all)");
        assert_eq!(Scenario::AdaProtein.label("XFS"), "ADA (protein)");
    }

    #[test]
    fn classification() {
        assert!(Scenario::AdaAll.uses_ada());
        assert!(!Scenario::DTraditional.uses_ada());
        assert!(Scenario::CTraditional.decompresses_on_compute());
        assert!(!Scenario::AdaProtein.decompresses_on_compute());
    }
}
