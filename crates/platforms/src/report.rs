//! Plain-text table/series rendering for the repro binary.

/// Render an ASCII table with a header row.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {:<width$} |", h, width = w));
    }
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {:>width$} |", cell, width = w));
        }
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Format seconds compactly (ms / s / min).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.0005 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 0.5 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{:.2} s", s)
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.2} h", s / 3600.0)
    }
}

/// Format bytes compactly (MB/GB decimal, as in the paper's tables).
pub fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b < 1e6 {
        format!("{:.1} kB", b / 1e3)
    } else if b < 1e9 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{:.1} GB", b / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = format_table(
            "Demo",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("| a   | long-header |"));
        let lines: Vec<&str> = t.lines().collect();
        // All body lines have the same width.
        let w = lines[1].len();
        for l in &lines[1..] {
            assert_eq!(l.len(), w, "line '{}'", l);
        }
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000001).contains("µs"));
        assert!(fmt_secs(0.01).contains("ms"));
        assert!(fmt_secs(3.0).contains(" s"));
        assert!(fmt_secs(600.0).contains("min"));
        assert!(fmt_secs(10_000.0).contains(" h"));
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(1_500), "1.5 kB");
        assert_eq!(fmt_bytes(100_000_000), "100.0 MB");
        assert_eq!(fmt_bytes(2_612_800_000_000), "2612.8 GB");
    }
}
