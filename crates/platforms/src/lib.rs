#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-platforms — the paper's three testbeds and every experiment
//!
//! §4 evaluates ADA on (1) an NVMe **SSD server**, (2) a **nine-node
//! OrangeFS cluster** (3 compute + 3 HDD-storage + 3 SSD-storage nodes) and
//! (3) a **1 TB fat-node server** with a RAID-50 HDD array. This crate
//! assembles those platforms from the simulator substrate and provides:
//!
//! * [`config`] — platform definitions with the published hardware
//!   (Tables 4 and 5) plus the calibrated power model;
//! * [`scenario`] — the Table 3 notation (`C`/`D` × `ext4`/`PVFS`/`XFS` ×
//!   `ADA (all)` / `ADA (protein)`) as a type;
//! * [`runner`] — executes one scenario at one frame count end-to-end
//!   through the real middleware stack (simfs → plfs → ada-core) with
//!   synthetic volumes, producing retrieval / turnaround / memory / energy
//!   metrics and OOM kills;
//! * [`figures`] — one generator per table and figure of the paper,
//!   returning printable rows (used by the `repro` binary and asserted by
//!   the shape tests).

pub mod ablations;
pub mod amortization;
pub mod config;
pub mod contention;
pub mod figures;
pub mod playback;
pub mod report;
pub mod runner;
pub mod scenario;

pub use config::{Platform, PlatformKind};
pub use runner::{run_scenario, KillPoint, RunMetrics};
pub use scenario::Scenario;
