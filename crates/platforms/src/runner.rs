//! Execute one scenario at one frame count, end to end.
//!
//! The runner assembles the real middleware stack (simulated file systems →
//! PLFS containers → ADA) for the chosen platform, seeds it with a
//! paper-calibrated synthetic dataset, and then plays the VMD workflow of
//! Fig. 2: retrieve → (decompress) → (locate active data) → render. It
//! returns the paper's metrics: raw-data retrieval time, data-processing
//! turnaround time, peak memory, OOM kills, and energy.
//!
//! Phase semantics (documented deviations in EXPERIMENTS.md):
//!
//! * `C-*`: read compressed; decompress (single-thread); scan raw to locate
//!   the active subset; render the active (protein) data.
//! * `D-*`: read the pre-decompressed raw file; scan; render.
//! * `ADA (all)`: ADA delivers every decompressed subset (both backends in
//!   parallel) + indexer; the compute node still scans to locate the
//!   active subset; render.
//! * `ADA (protein)`: ADA delivers only the protein subset + indexer;
//!   render immediately — no pre-processing at all.

use crate::config::{Platform, PlatformKind, STREAM_BUFFER_BYTES};
use crate::scenario::Scenario;
use ada_core::{Ada, AdaConfig, DispatchPolicy, IngestInput, SyntheticDataset};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{Content, LocalFs, SimFileSystem, StripedFs};
use ada_storagesim::{CpuWork, MemoryTracker, SimDuration};
use std::sync::Arc;

/// Where an OOM kill struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// While loading frames into memory (the dataset alone exceeds DRAM).
    DuringLoad,
    /// While building render geometry ("killed ... when VMD is trying to
    /// render", §4.3).
    DuringRender,
}

/// Metrics of one run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Scenario executed.
    pub scenario: Scenario,
    /// Paper-style label (e.g. `D-ADA (protein)`).
    pub label: String,
    /// Frame count.
    pub frames: u64,
    /// Raw-data retrieval time (storage → memory).
    pub retrieval: SimDuration,
    /// ADA indexer tag-search time (zero for traditional scenarios).
    pub indexer: SimDuration,
    /// Compute-node decompression time.
    pub decompress: SimDuration,
    /// Active-data location (scan/filter) time.
    pub scan: SimDuration,
    /// Rendering time (possibly truncated by an OOM kill).
    pub render: SimDuration,
    /// OOM kill, if the run died.
    pub killed: Option<KillPoint>,
    /// Peak resident memory in bytes.
    pub mem_peak_bytes: u64,
    /// Energy over the run in kilojoules.
    pub energy_kj: f64,
    /// Bytes delivered from storage to the compute node.
    pub delivered_bytes: u64,
}

impl RunMetrics {
    /// Data-processing turnaround time (§2.1): retrieval through rendering.
    pub fn turnaround(&self) -> SimDuration {
        self.retrieval + self.indexer + self.decompress + self.scan + self.render
    }

    /// Pre-processing share of turnaround (Fig. 8's numerator is the
    /// decompression part of this).
    pub fn preprocess(&self) -> SimDuration {
        self.decompress + self.scan
    }
}

struct Stack {
    /// Plain file system holding `bar.xtc` (compressed) and `bar.raw`.
    plain: Arc<dyn SimFileSystem>,
    /// ADA over its backends.
    ada: Ada,
}

fn build_stack(platform: &Platform) -> Stack {
    match platform.kind {
        PlatformKind::SsdServer => {
            let plain: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
            // One ext4 namespace over the NVMe storage: Fig. 7a shows
            // D-ADA(all) ≈ D-ext4 (+ indexer), i.e. the two subsets are
            // read through the same device path, not two drives in
            // parallel.
            let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
            let cs = Arc::new(ContainerSet::new(vec![("ssd".into(), ssd.clone())]));
            let cfg = AdaConfig {
                policy: DispatchPolicy::all_to("ssd"),
                ..AdaConfig::paper_prototype("ssd", "ssd")
            };
            Stack {
                plain,
                ada: Ada::new(cfg, cs, ssd),
            }
        }
        PlatformKind::Cluster9 => {
            let plain: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_hdd_3nodes());
            let ssd: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_ssd_3nodes());
            let hdd: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_hdd_3nodes());
            let cs = Arc::new(ContainerSet::new(vec![
                ("pvfs-ssd".into(), ssd.clone()),
                ("pvfs-hdd".into(), hdd),
            ]));
            let cfg = AdaConfig {
                policy: DispatchPolicy::hybrid_gpcr("pvfs-ssd", "pvfs-hdd"),
                ..AdaConfig::paper_prototype("pvfs-ssd", "pvfs-hdd")
            };
            Stack {
                plain,
                ada: Ada::new(cfg, cs, ssd),
            }
        }
        PlatformKind::FatNode => {
            let plain: Arc<dyn SimFileSystem> = Arc::new(LocalFs::xfs_on_raid50());
            // The fat node has a single array: ADA's split is logical only.
            let raid: Arc<dyn SimFileSystem> = Arc::new(LocalFs::xfs_on_raid50());
            let cs = Arc::new(ContainerSet::new(vec![("raid".into(), raid.clone())]));
            let cfg = AdaConfig {
                policy: DispatchPolicy::all_to("raid"),
                ..AdaConfig::paper_prototype("raid", "raid")
            };
            Stack {
                plain,
                ada: Ada::new(cfg, cs, raid),
            }
        }
    }
}

/// Run `scenario` on `platform` for a paper-calibrated dataset of `frames`
/// frames.
pub fn run_scenario(platform: &Platform, scenario: Scenario, frames: u64) -> RunMetrics {
    let spec = SyntheticDataset::gpcr_paper(frames);
    let raw_bytes = spec.raw_bytes();
    let protein_bytes = spec.tag_bytes(&Tag::protein());
    let stack = build_stack(platform);
    let cpu = &platform.cpu;

    // Seed storage. Ingest-time pre-processing is deliberately outside the
    // measured window: the paper measures read→render turnaround; ADA pays
    // its costs "when the .pdb and .xtc files are sent to ADA for permanent
    // storage" (§3.4).
    let mut indexer = SimDuration::ZERO;
    let (mut retrieval, delivered_bytes) = match scenario {
        Scenario::CTraditional => {
            stack
                .plain
                .create("bar.xtc", Content::synthetic(spec.compressed_bytes))
                // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
                .expect("seed compressed");
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let (_, d) = stack.plain.read("bar.xtc").expect("read compressed");
            (d, spec.compressed_bytes)
        }
        Scenario::DTraditional => {
            stack
                .plain
                .create("bar.raw", Content::synthetic(raw_bytes))
                // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
                .expect("seed raw");
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let (_, d) = stack.plain.read("bar.raw").expect("read raw");
            (d, raw_bytes)
        }
        Scenario::AdaAll | Scenario::AdaProtein => {
            stack
                .ada
                .ingest("bar", IngestInput::Synthetic(spec.clone()))
                // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
                .expect("ingest");
            let tag = if scenario == Scenario::AdaProtein {
                Some(Tag::protein())
            } else {
                None
            };
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let q = stack.ada.query("bar", tag.as_ref()).expect("query");
            indexer = q.indexer;
            (q.read, q.data.bytes())
        }
    };

    // Compute-node CPU phases.
    let mut decompress = SimDuration::ZERO;
    let mut scan = SimDuration::ZERO;
    if scenario.decompresses_on_compute() {
        decompress = CpuWork::Decompress {
            out_bytes: raw_bytes,
        }
        .duration(cpu);
    }
    if scenario != Scenario::AdaProtein {
        // Locate the active data within the raw frames.
        scan = CpuWork::Scan { bytes: raw_bytes }.duration(cpu);
    }
    let mut render = CpuWork::Render {
        bytes: protein_bytes,
    }
    .duration(cpu);

    // Memory accounting + OOM kills.
    let frames_bytes = if scenario == Scenario::AdaProtein {
        protein_bytes
    } else {
        raw_bytes
    };
    let overhead_bytes = (frames_bytes as f64 * platform.render_overhead_fraction) as u64;
    let mut mem = MemoryTracker::new(platform.memory_bytes);
    let mut killed = None;
    if scenario == Scenario::CTraditional {
        mem.alloc(
            "stream-buffer",
            STREAM_BUFFER_BYTES.min(spec.compressed_bytes),
        )
        // ada-lint: allow(no-panic-in-lib) allocation is clamped to the memory budget by min() above
        .expect("stream buffer always fits");
    }
    match mem.alloc("frames", frames_bytes) {
        Ok(()) => {
            mem.free_all("stream-buffer");
            if mem.alloc("render-geometry", overhead_bytes).is_err() {
                killed = Some(KillPoint::DuringRender);
                // Render proceeds until the working set no longer fits.
                let available = platform.memory_bytes - mem.in_use();
                let fraction = if overhead_bytes == 0 {
                    0.0
                } else {
                    available as f64 / overhead_bytes as f64
                };
                mem.alloc("render-geometry", available).ok();
                render = SimDuration::from_secs_f64(render.as_secs_f64() * fraction);
            }
        }
        Err(_) => {
            killed = Some(KillPoint::DuringLoad);
            // Load dies part-way: scale the data-dependent phases.
            let available = platform.memory_bytes - mem.in_use();
            let fraction = available as f64 / frames_bytes as f64;
            mem.alloc("frames", available).ok();
            retrieval = SimDuration::from_secs_f64(retrieval.as_secs_f64() * fraction);
            decompress = SimDuration::from_secs_f64(decompress.as_secs_f64() * fraction);
            scan = SimDuration::from_secs_f64(scan.as_secs_f64() * fraction);
            render = SimDuration::ZERO;
        }
    }

    // Energy: base + CPU-state power + storage-state power per phase.
    let idle_cores = 0usize;
    let one_core = 1usize;
    let phases: [(SimDuration, usize, bool); 5] = [
        (retrieval, idle_cores, true),
        (indexer, one_core, true),
        (decompress, one_core, false),
        (scan, one_core, false),
        (render, cpu.cores, false),
    ];
    let mut joules = 0.0;
    for (d, cores, storage_active) in phases {
        let storage = if storage_active {
            platform.storage_active_w
        } else {
            platform.storage_idle_w
        };
        joules += d.as_secs_f64() * (platform.base_power_w + cpu.power_w(cores) + storage);
    }

    RunMetrics {
        scenario,
        label: scenario.label(&platform.base_fs),
        frames,
        retrieval,
        indexer,
        decompress,
        scan,
        render,
        killed,
        mem_peak_bytes: mem.peak(),
        energy_kj: joules / 1e3,
        delivered_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn fig7b_headline_speedup() {
        // D-ADA(protein) vs C-ext4 at 5,006 frames: the paper's 13.4x.
        let p = Platform::ssd_server();
        let c = run_scenario(&p, Scenario::CTraditional, 5006);
        let a = run_scenario(&p, Scenario::AdaProtein, 5006);
        let ratio = c.turnaround().as_secs_f64() / a.turnaround().as_secs_f64();
        assert!(ratio > 11.0 && ratio < 16.0, "speedup {}", ratio);
        assert!(c.killed.is_none() && a.killed.is_none());
    }

    #[test]
    fn fig7a_retrieval_ordering() {
        // C-ext4 fastest (least bytes); D-ADA(all) ≈ D-ext4 but slightly
        // slower (indexer); D-ADA(protein) between C and D.
        let p = Platform::ssd_server();
        let c = run_scenario(&p, Scenario::CTraditional, 5006);
        let d = run_scenario(&p, Scenario::DTraditional, 5006);
        let all = run_scenario(&p, Scenario::AdaAll, 5006);
        let prot = run_scenario(&p, Scenario::AdaProtein, 5006);
        assert!(c.retrieval < prot.retrieval);
        assert!(prot.retrieval < d.retrieval);
        let d_t = d.retrieval.as_secs_f64();
        let all_t = (all.retrieval + all.indexer).as_secs_f64();
        assert!(
            all_t > d_t,
            "ADA(all) {} should exceed D-ext4 {}",
            all_t,
            d_t
        );
        assert!(all_t < d_t * 1.2, "but only slightly: {} vs {}", all_t, d_t);
    }

    #[test]
    fn fig7c_memory_ratio() {
        // ext4 uses ~2.3-2.5x the memory of ADA(protein) at 5,006 frames.
        let p = Platform::ssd_server();
        let c = run_scenario(&p, Scenario::CTraditional, 5006);
        let prot = run_scenario(&p, Scenario::AdaProtein, 5006);
        let ratio = c.mem_peak_bytes as f64 / prot.mem_peak_bytes as f64;
        assert!(ratio > 2.0 && ratio < 2.6, "memory ratio {}", ratio);
    }

    #[test]
    fn fig8_decompression_dominates() {
        let p = Platform::ssd_server();
        let c = run_scenario(&p, Scenario::CTraditional, 5006);
        let cpu_total = c.preprocess() + c.render;
        let share = c.decompress.as_secs_f64() / cpu_total.as_secs_f64();
        assert!(share > 0.5, "decompression share {}", share);
    }

    #[test]
    fn fig9a_cluster_retrieval_shape() {
        let p = Platform::cluster9();
        let frames = 6256;
        let c = run_scenario(&p, Scenario::CTraditional, frames);
        let d = run_scenario(&p, Scenario::DTraditional, frames);
        let all = run_scenario(&p, Scenario::AdaAll, frames);
        let prot = run_scenario(&p, Scenario::AdaProtein, frames);
        // ADA scenarios sit between the best (C) and worst (D) cases.
        assert!(c.retrieval < prot.retrieval && prot.retrieval < d.retrieval);
        assert!(all.retrieval < d.retrieval && all.retrieval > c.retrieval);
        // D-ADA(all) beats D-PVFS by ~1.7x (paper: "more than 2x").
        let r = d.retrieval.as_secs_f64() / all.retrieval.as_secs_f64();
        assert!(r > 1.5 && r < 2.5, "ratio {}", r);
    }

    #[test]
    fn fig9b_cluster_turnaround_shape() {
        let p = Platform::cluster9();
        let frames = 6256;
        let c = run_scenario(&p, Scenario::CTraditional, frames);
        let d = run_scenario(&p, Scenario::DTraditional, frames);
        let all = run_scenario(&p, Scenario::AdaAll, frames);
        let prot = run_scenario(&p, Scenario::AdaProtein, frames);
        // C-PVFS is the worst by far (decompression); ADA(protein) best.
        let ct = c.turnaround().as_secs_f64();
        let dt = d.turnaround().as_secs_f64();
        let at = all.turnaround().as_secs_f64();
        let pt = prot.turnaround().as_secs_f64();
        assert!(ct > 4.0 * dt, "C-PVFS {} vs D-PVFS {}", ct, dt);
        assert!(dt > at && at > pt, "ordering {} > {} > {}", dt, at, pt);
        // The paper reports a 9x D-PVFS vs D-ADA(protein) gap at 6,256
        // frames; our calibration reproduces the ordering with a ~2x gap
        // (documented deviation in EXPERIMENTS.md).
        assert!(dt / pt > 1.5, "gap {}", dt / pt);
    }

    #[test]
    fn fig10_kill_points_match_paper() {
        let p = Platform::fatnode();
        // XFS and ADA(all) die at 1,876,800 frames but not 1,564,000.
        for scenario in [Scenario::CTraditional, Scenario::AdaAll] {
            let ok = run_scenario(&p, scenario, 1_564_000);
            assert!(ok.killed.is_none(), "{:?} at 1.56M should live", scenario);
            let dead = run_scenario(&p, scenario, 1_876_800);
            assert_eq!(
                dead.killed,
                Some(KillPoint::DuringRender),
                "{:?} at 1.88M should die rendering",
                scenario
            );
        }
        // ADA(protein) survives 4,379,200 and dies at 5,004,800.
        let ok = run_scenario(&p, Scenario::AdaProtein, 4_379_200);
        assert!(ok.killed.is_none());
        let dead = run_scenario(&p, Scenario::AdaProtein, 5_004_800);
        assert!(dead.killed.is_some());
    }

    #[test]
    fn fig10d_energy_ordering() {
        let p = Platform::fatnode();
        let frames = 1_876_800;
        let xfs = run_scenario(&p, Scenario::CTraditional, frames);
        let all = run_scenario(&p, Scenario::AdaAll, frames);
        let prot = run_scenario(&p, Scenario::AdaProtein, frames);
        // Paper: XFS > 12,500 kJ; ADA(all) < 5,000; ADA(protein) ≈ 2,200.
        assert!(
            xfs.energy_kj > 3.0 * all.energy_kj,
            "xfs {} vs all {}",
            xfs.energy_kj,
            all.energy_kj
        );
        assert!(
            all.energy_kj > prot.energy_kj,
            "all {} vs protein {}",
            all.energy_kj,
            prot.energy_kj
        );
        assert!(
            xfs.energy_kj > 10_000.0 && xfs.energy_kj < 25_000.0,
            "xfs {}",
            xfs.energy_kj
        );
        assert!(
            prot.energy_kj > 800.0 && prot.energy_kj < 4_000.0,
            "protein {}",
            prot.energy_kj
        );
    }

    #[test]
    fn fig10b_400_minute_anchor() {
        // Paper: ~400 minutes to retrieve and render 1,564,000 frames on
        // XFS, with retrieval < 10% of the turnaround.
        let p = Platform::fatnode();
        let m = run_scenario(&p, Scenario::CTraditional, 1_564_000);
        let minutes = m.turnaround().as_secs_f64() / 60.0;
        assert!(minutes > 300.0 && minutes < 700.0, "{} minutes", minutes);
        let frac = m.retrieval.as_secs_f64() / m.turnaround().as_secs_f64();
        assert!(frac < 0.10, "retrieval fraction {}", frac);
    }

    #[test]
    fn delivered_bytes_match_table2() {
        let p = Platform::ssd_server();
        let c = run_scenario(&p, Scenario::CTraditional, 626);
        let prot = run_scenario(&p, Scenario::AdaProtein, 626);
        let d = run_scenario(&p, Scenario::DTraditional, 626);
        assert!((c.delivered_bytes as f64 / MB - 100.0).abs() < 2.0);
        assert!((prot.delivered_bytes as f64 / MB - 139.0).abs() < 3.0);
        assert!((d.delivered_bytes as f64 / MB - 327.0).abs() < 7.0);
    }
}
