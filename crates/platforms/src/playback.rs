//! The §2.1 playback experiment, quantified.
//!
//! "Recently retrieved frames should be evacuated from the limited memory
//! to make room for subsequent phases of frames. Frequent data swapping
//! operations cause a low data hit rate under random frames accesses
//! (e.g., replaying the frames back and forth), which further leads to a
//! non-fluent VMD animation playback."
//!
//! This module sweeps the frame-cache budget and measures the hit rate of
//! back-and-forth and random replay for raw frames vs ADA's protein
//! frames, plus the resulting effective re-fetch volume — the numeric form
//! of the paper's "fluent playback" argument.

use ada_vmdsim::{AccessPattern, FrameCache};
use ada_workload::calibration::PaperCalibration;

/// One row of the playback sweep.
#[derive(Debug, Clone)]
pub struct PlaybackRow {
    /// Cache budget as a fraction of the raw animation size.
    pub budget_fraction: f64,
    /// Hit rate replaying raw frames.
    pub raw_hit_rate: f64,
    /// Hit rate replaying ADA protein frames.
    pub ada_hit_rate: f64,
    /// Bytes re-fetched from storage per replay, raw frames.
    pub raw_refetch_bytes: u64,
    /// Bytes re-fetched per replay, protein frames.
    pub ada_refetch_bytes: u64,
}

/// Sweep cache budgets for an `nframes` animation under `pattern`.
pub fn playback_sweep(
    nframes: usize,
    pattern: AccessPattern,
    budget_fractions: &[f64],
) -> Vec<PlaybackRow> {
    let cal = PaperCalibration::default();
    let raw_frame = cal.raw_bytes_per_frame as u64;
    let protein_frame = cal.protein_bytes_per_frame as u64;
    let animation_bytes = raw_frame * nframes as u64;
    budget_fractions
        .iter()
        .map(|&fraction| {
            let budget = (animation_bytes as f64 * fraction) as u64;
            let mut raw = FrameCache::new(budget, raw_frame);
            let mut ada = FrameCache::new(budget, protein_frame);
            let raw_stats = raw.replay(pattern, nframes);
            let ada_stats = ada.replay(pattern, nframes);
            PlaybackRow {
                budget_fraction: fraction,
                raw_hit_rate: raw_stats.hit_rate(),
                ada_hit_rate: ada_stats.hit_rate(),
                raw_refetch_bytes: raw_stats.misses as u64 * raw_frame,
                ada_refetch_bytes: ada_stats.misses as u64 * protein_frame,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ada_hit_rate_dominates_raw() {
        let rows = playback_sweep(
            500,
            AccessPattern::BackAndForth { cycles: 3 },
            &[0.1, 0.25, 0.5, 0.75],
        );
        for r in &rows {
            assert!(
                r.ada_hit_rate >= r.raw_hit_rate,
                "ada {} < raw {} at {}",
                r.ada_hit_rate,
                r.raw_hit_rate,
                r.budget_fraction
            );
            assert!(r.ada_refetch_bytes <= r.raw_refetch_bytes);
        }
        // At a budget of ~half the animation, ADA frames all fit
        // (protein ≈ 42.5% of raw) while raw thrashes.
        let half = &rows[2];
        assert!(half.ada_hit_rate > 0.8, "ada {}", half.ada_hit_rate);
        assert!(half.raw_hit_rate < 0.5, "raw {}", half.raw_hit_rate);
    }

    #[test]
    fn full_budget_both_saturate() {
        let rows = playback_sweep(200, AccessPattern::BackAndForth { cycles: 2 }, &[1.1]);
        let r = &rows[0];
        // Everything fits: only compulsory misses remain.
        assert!(r.raw_hit_rate > 0.7);
        assert!(r.ada_hit_rate > 0.7);
    }

    #[test]
    fn random_access_pattern_also_benefits() {
        let rows = playback_sweep(
            400,
            AccessPattern::Random {
                count: 4000,
                seed: 11,
            },
            &[0.5],
        );
        let r = &rows[0];
        assert!(r.ada_hit_rate > r.raw_hit_rate + 0.2);
    }
}
