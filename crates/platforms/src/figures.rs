//! One generator per table and figure of the paper's evaluation.
//!
//! Each `figN` function runs the scenario grid and returns a
//! [`FigureSeries`]; the tables return row vectors carrying both the
//! model's value and the paper's published value so the repro binary can
//! print paper-vs-measured side by side (EXPERIMENTS.md is generated from
//! the same data).

use crate::config::Platform;
use crate::runner::{run_scenario, RunMetrics};
use crate::scenario::Scenario;
use ada_workload::calibration::{
    DatasetSpec, SizeRow, Table1Row, MB, PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE6,
};

/// One data point of a figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Frame count (x axis).
    pub frames: u64,
    /// Metric value (y axis), in the figure's unit.
    pub value: f64,
    /// Whether this run was OOM-killed (the paper marks these runs).
    pub killed: bool,
}

/// A figure: one or more labelled series over frame counts.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Figure id, e.g. "Fig. 7b".
    pub id: String,
    /// What is measured.
    pub title: String,
    /// Y-axis unit.
    pub unit: String,
    /// (scenario label, points).
    pub series: Vec<(String, Vec<Point>)>,
}

impl FigureSeries {
    /// Value of `label` at `frames` (None if killed or absent).
    pub fn value(&self, label: &str, frames: u64) -> Option<f64> {
        self.series
            .iter()
            .find(|(l, _)| l == label)?
            .1
            .iter()
            .find(|p| p.frames == frames && !p.killed)
            .map(|p| p.value)
    }
}

/// Frame counts of the SSD-server experiments (Table 2).
pub fn fig7_frames() -> Vec<u64> {
    PAPER_TABLE2.iter().map(|r| r.frames).collect()
}

/// Frame counts of the cluster experiments (§4.2 runs to 6,256).
pub fn fig9_frames() -> Vec<u64> {
    vec![626, 1251, 1877, 2503, 3129, 3754, 4380, 5006, 6256]
}

/// Frame counts of the fat-node experiments (Table 6).
pub fn fig10_frames() -> Vec<u64> {
    PAPER_TABLE6.iter().map(|r| r.frames).collect()
}

fn grid(
    platform: &Platform,
    scenarios: &[Scenario],
    frames: &[u64],
) -> Vec<(String, Vec<RunMetrics>)> {
    scenarios
        .iter()
        .map(|&s| {
            let runs: Vec<RunMetrics> = frames
                .iter()
                .map(|&f| run_scenario(platform, s, f))
                .collect();
            (s.label(&platform.base_fs), runs)
        })
        .collect()
}

fn figure(
    id: &str,
    title: &str,
    unit: &str,
    grid: &[(String, Vec<RunMetrics>)],
    metric: impl Fn(&RunMetrics) -> f64,
) -> FigureSeries {
    FigureSeries {
        id: id.to_string(),
        title: title.to_string(),
        unit: unit.to_string(),
        series: grid
            .iter()
            .map(|(label, runs)| {
                (
                    label.clone(),
                    runs.iter()
                        .map(|m| Point {
                            frames: m.frames,
                            value: metric(m),
                            killed: m.killed.is_some(),
                        })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Fig. 7 (a, b, c): SSD server.
pub fn fig7() -> [FigureSeries; 3] {
    let p = Platform::ssd_server();
    let g = grid(&p, &Scenario::ALL, &fig7_frames());
    [
        figure(
            "Fig. 7a",
            "SSD server: raw data retrieval time",
            "s",
            &g,
            |m| (m.retrieval + m.indexer).as_secs_f64(),
        ),
        figure(
            "Fig. 7b",
            "SSD server: data processing turnaround time",
            "s",
            &g,
            |m| m.turnaround().as_secs_f64(),
        ),
        figure("Fig. 7c", "SSD server: memory usage", "MB", &g, |m| {
            m.mem_peak_bytes as f64 / MB
        }),
    ]
}

/// One phase row of Fig. 8: (phase name, seconds, share of total).
pub type PhaseRow = (String, f64, f64);

/// Fig. 8: CPU burst breakdown of the traditional (C-ext4) run vs ADA.
/// Returns `(phase, seconds, share)` rows per scenario.
pub fn fig8() -> Vec<(String, Vec<PhaseRow>)> {
    let p = Platform::ssd_server();
    [Scenario::CTraditional, Scenario::AdaProtein]
        .iter()
        .map(|&s| {
            let m = run_scenario(&p, s, 5006);
            let phases = [
                ("decompress", m.decompress.as_secs_f64()),
                ("locate-active (scan)", m.scan.as_secs_f64()),
                ("render", m.render.as_secs_f64()),
            ];
            let total: f64 = phases.iter().map(|(_, v)| v).sum();
            (
                m.label.clone(),
                phases
                    .iter()
                    .map(|(n, v)| (n.to_string(), *v, if total > 0.0 { v / total } else { 0.0 }))
                    .collect(),
            )
        })
        .collect()
}

/// Fig. 9 (a, b, c): nine-node cluster.
pub fn fig9() -> [FigureSeries; 3] {
    let p = Platform::cluster9();
    let g = grid(&p, &Scenario::ALL, &fig9_frames());
    [
        figure(
            "Fig. 9a",
            "Cluster: raw data retrieval time",
            "s",
            &g,
            |m| (m.retrieval + m.indexer).as_secs_f64(),
        ),
        figure(
            "Fig. 9b",
            "Cluster: data processing turnaround time",
            "s",
            &g,
            |m| m.turnaround().as_secs_f64(),
        ),
        figure("Fig. 9c", "Cluster: memory usage", "MB", &g, |m| {
            m.mem_peak_bytes as f64 / MB
        }),
    ]
}

/// The three fat-node scenarios of Fig. 10.
pub const FIG10_SCENARIOS: [Scenario; 3] = [
    Scenario::CTraditional,
    Scenario::AdaAll,
    Scenario::AdaProtein,
];

/// Fig. 10 (a, b, c, d): fat node.
pub fn fig10() -> [FigureSeries; 4] {
    let p = Platform::fatnode();
    let g = grid(&p, &FIG10_SCENARIOS, &fig10_frames());
    [
        figure(
            "Fig. 10a",
            "Fat node: raw data retrieval time",
            "s",
            &g,
            |m| (m.retrieval + m.indexer).as_secs_f64(),
        ),
        figure(
            "Fig. 10b",
            "Fat node: data processing turnaround time",
            "min",
            &g,
            |m| m.turnaround().as_secs_f64() / 60.0,
        ),
        figure("Fig. 10c", "Fat node: memory usage", "GB", &g, |m| {
            m.mem_peak_bytes as f64 / 1e9
        }),
        figure("Fig. 10d", "Fat node: energy consumption", "kJ", &g, |m| {
            m.energy_kj
        }),
    ]
}

/// A Table 1 comparison row: paper vs model.
#[derive(Debug, Clone)]
pub struct Table1Cmp {
    /// Published row.
    pub paper: Table1Row,
    /// Model compressed size (MB).
    pub model_complete_mb: f64,
    /// Model protein share of the compressed file (MB), assuming the
    /// byte share tracks the atom share.
    pub model_protein_mb: f64,
}

/// Table 1: data components of three .xtc files.
pub fn table1() -> Vec<Table1Cmp> {
    PAPER_TABLE1
        .iter()
        .map(|&paper| {
            let d = DatasetSpec::paper(paper.frames);
            let complete = d.compressed_bytes() as f64 / MB;
            let frac = d.cal.protein_fraction();
            Table1Cmp {
                paper,
                model_complete_mb: complete,
                model_protein_mb: complete * frac,
            }
        })
        .collect()
}

/// A Table 2/6 comparison row: paper vs model (MB).
#[derive(Debug, Clone)]
pub struct SizeCmp {
    /// Published row.
    pub paper: SizeRow,
    /// Model compressed MB.
    pub model_compressed_mb: f64,
    /// Model decompressed-protein MB.
    pub model_protein_mb: f64,
    /// Model raw MB.
    pub model_raw_mb: f64,
}

fn size_cmp(rows: &[SizeRow]) -> Vec<SizeCmp> {
    rows.iter()
        .map(|&paper| {
            let d = DatasetSpec::paper(paper.frames);
            SizeCmp {
                paper,
                model_compressed_mb: d.compressed_bytes() as f64 / MB,
                model_protein_mb: d.protein_bytes() as f64 / MB,
                model_raw_mb: d.raw_bytes() as f64 / MB,
            }
        })
        .collect()
}

/// Table 2: ext4 vs ADA data sizes (SSD server).
pub fn table2() -> Vec<SizeCmp> {
    size_cmp(&PAPER_TABLE2)
}

/// Table 6: XFS vs ADA data sizes (fat node).
pub fn table6() -> Vec<SizeCmp> {
    size_cmp(&PAPER_TABLE6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_series_complete() {
        let [a, b, c] = fig7();
        for f in [&a, &b, &c] {
            assert_eq!(f.series.len(), 4);
            for (_, pts) in &f.series {
                assert_eq!(pts.len(), 8);
            }
        }
        // Headline: turnaround speedup at 5,006 frames.
        let c_t = b.value("C-ext4", 5006).unwrap();
        let p_t = b.value("D-ADA (protein)", 5006).unwrap();
        assert!(c_t / p_t > 11.0, "speedup {}", c_t / p_t);
        // Memory: ext4 ≥ 2x ADA(protein).
        let mem_c = c.value("C-ext4", 5006).unwrap();
        let mem_p = c.value("D-ADA (protein)", 5006).unwrap();
        assert!(mem_c / mem_p > 2.0);
        drop(a);
    }

    #[test]
    fn fig8_decompress_over_half() {
        let rows = fig8();
        let (label, phases) = &rows[0];
        assert_eq!(label, "C-ext4");
        let decompress_share = phases
            .iter()
            .find(|(n, _, _)| n == "decompress")
            .map(|(_, _, s)| *s)
            .unwrap();
        assert!(decompress_share > 0.5, "share {}", decompress_share);
        // ADA(protein) spends nothing on decompression.
        let (_, ada_phases) = &rows[1];
        let ada_dec = ada_phases
            .iter()
            .find(|(n, _, _)| n == "decompress")
            .map(|(_, v, _)| *v)
            .unwrap();
        assert_eq!(ada_dec, 0.0);
    }

    #[test]
    fn fig10_kills_visible_in_series() {
        let [_a, b, c, _d] = fig10();
        // XFS has killed points from 1,876,800 on.
        let xfs = &b.series.iter().find(|(l, _)| l == "XFS").unwrap().1;
        let killed_from: Vec<bool> = xfs.iter().map(|p| p.killed).collect();
        let idx_1876800 = fig10_frames().iter().position(|&f| f == 1_876_800).unwrap();
        assert!(!killed_from[idx_1876800 - 1]);
        assert!(killed_from[idx_1876800]);
        // ADA(protein) survives past 2x the XFS kill point.
        let prot = &c
            .series
            .iter()
            .find(|(l, _)| l == "ADA (protein)")
            .unwrap()
            .1;
        let idx_4379200 = fig10_frames().iter().position(|&f| f == 4_379_200).unwrap();
        assert!(!prot[idx_4379200].killed);
        assert!(prot[idx_4379200 + 1].killed);
    }

    #[test]
    fn tables_within_tolerance_of_paper() {
        for row in table2() {
            assert!((row.model_raw_mb - row.paper.raw_mb).abs() / row.paper.raw_mb < 0.03);
            assert!(
                (row.model_protein_mb - row.paper.ada_protein_mb).abs() / row.paper.ada_protein_mb
                    < 0.03
            );
        }
        for row in table6() {
            assert!((row.model_raw_mb - row.paper.raw_mb).abs() / row.paper.raw_mb < 0.03);
        }
        for row in table1() {
            assert!(
                (row.model_complete_mb - row.paper.complete_mb).abs() / row.paper.complete_mb
                    < 0.03
            );
        }
    }
}
