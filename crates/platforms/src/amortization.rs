//! Ingest-cost amortization — an analysis the paper does not show.
//!
//! ADA's pre-processing is not free: at ingest it decompresses, splits and
//! rewrites the whole dataset on the storage node. The paper's §3.2 argues
//! this "repeated effort" moves off the critical path because biologists
//! "repeatedly study the behaviors of proteins"; this experiment makes the
//! break-even explicit: after how many protein queries has ADA's ingest
//! investment paid for itself against the traditional
//! decompress-on-every-read flow?

use crate::config::Platform;
use crate::runner::run_scenario;
use crate::scenario::Scenario;
use ada_core::{Ada, AdaConfig, DispatchPolicy, IngestInput, SyntheticDataset};
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use std::sync::Arc;

/// Amortization analysis result.
#[derive(Debug, Clone)]
pub struct Amortization {
    /// Frames in the dataset.
    pub frames: u64,
    /// One-time ADA ingest cost (storage-node seconds).
    pub ingest_s: f64,
    /// Per-query turnaround via ADA(protein), seconds.
    pub ada_query_s: f64,
    /// Per-query turnaround via the traditional compressed flow, seconds.
    pub traditional_query_s: f64,
    /// Queries after which cumulative ADA cost (ingest + n×query) drops
    /// below n× the traditional per-query cost. `1` means ADA wins from
    /// the very first read.
    pub break_even_queries: u64,
}

/// Compute the break-even point on the SSD server for a dataset of
/// `frames` frames.
pub fn ingest_amortization(frames: u64) -> Amortization {
    // One-time ingest cost through the real middleware.
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let cs = Arc::new(ContainerSet::new(vec![("ssd".into(), ssd.clone())]));
    let cfg = AdaConfig {
        policy: DispatchPolicy::all_to("ssd"),
        ..AdaConfig::paper_prototype("ssd", "ssd")
    };
    let ada = Ada::new(cfg, cs, ssd);
    let report = ada
        .ingest(
            "bar",
            IngestInput::Synthetic(SyntheticDataset::gpcr_paper(frames)),
        )
        // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
        .expect("ingest");
    let ingest_s = report.total().as_secs_f64();

    let platform = Platform::ssd_server();
    let ada_query_s = run_scenario(&platform, Scenario::AdaProtein, frames)
        .turnaround()
        .as_secs_f64();
    let traditional_query_s = run_scenario(&platform, Scenario::CTraditional, frames)
        .turnaround()
        .as_secs_f64();

    let per_query_saving = traditional_query_s - ada_query_s;
    let break_even_queries = if per_query_saving <= 0.0 {
        u64::MAX
    } else {
        (ingest_s / per_query_saving).ceil().max(1.0) as u64
    };
    Amortization {
        frames,
        ingest_s,
        ada_query_s,
        traditional_query_s,
        break_even_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_is_small() {
        // Ingest ≈ one decompression pass + writes; each query saves ≈ one
        // decompression pass — so ADA pays off within a handful of reads.
        let a = ingest_amortization(5006);
        assert!(a.ingest_s > 0.0);
        assert!(a.traditional_query_s > a.ada_query_s);
        assert!(
            a.break_even_queries >= 1 && a.break_even_queries <= 3,
            "break-even {} (ingest {:.1}s, saving {:.1}s/query)",
            a.break_even_queries,
            a.ingest_s,
            a.traditional_query_s - a.ada_query_s
        );
    }

    #[test]
    fn break_even_stable_across_sizes() {
        let small = ingest_amortization(626);
        let large = ingest_amortization(5006);
        // Both costs scale ~linearly with volume, so the break-even query
        // count is size-independent (±1).
        assert!(small.break_even_queries.abs_diff(large.break_even_queries) <= 1);
    }
}
