//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Four sweeps:
//!
//! 1. **Dispatch policy** — hybrid (protein→SSD) vs all-SSD vs all-HDD vs
//!    inverted, on the cluster: what does placement buy on top of
//!    pre-decompression?
//! 2. **Decompression rate** — the single calibrated constant behind the
//!    13.4× headline: how does the speedup decay as CPUs (or codecs) get
//!    faster?
//! 3. **Render working set** — the OOM-kill boundary's sensitivity to the
//!    memory-overhead fraction on the fat node.
//! 4. **Indexer cost** — the Fig. 7a "D-ADA(all) slightly slower than
//!    D-ext4" penalty as a function of droppings per dataset.

use crate::config::Platform;
use crate::runner::run_scenario;
use crate::scenario::Scenario;
use ada_core::{Ada, AdaConfig, DispatchPolicy, IngestInput, SyntheticDataset};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{SimFileSystem, StripedFs};
use std::sync::Arc;

/// One row of the dispatch-policy ablation.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: String,
    /// Protein-query read time, seconds.
    pub protein_read_s: f64,
    /// Full-dataset read time, seconds.
    pub all_read_s: f64,
    /// Bytes placed on the SSD backend.
    pub ssd_bytes: u64,
}

/// Dispatch-policy ablation on the §4.2 cluster at `frames` frames.
pub fn dispatch_policy_ablation(frames: u64) -> Vec<PolicyRow> {
    let policies: Vec<(&str, DispatchPolicy)> = vec![
        (
            "hybrid (p->SSD, rest->HDD)",
            DispatchPolicy::hybrid_gpcr("pvfs-ssd", "pvfs-hdd"),
        ),
        ("all-SSD", DispatchPolicy::all_to("pvfs-ssd")),
        ("all-HDD", DispatchPolicy::all_to("pvfs-hdd")),
        (
            "inverted (p->HDD, rest->SSD)",
            DispatchPolicy::new(vec![(Tag::protein(), "pvfs-hdd".into())], "pvfs-ssd"),
        ),
    ];
    policies
        .into_iter()
        .map(|(label, policy)| {
            let ssd: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_ssd_3nodes());
            let hdd: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_hdd_3nodes());
            let cs = Arc::new(ContainerSet::new(vec![
                ("pvfs-ssd".into(), ssd.clone()),
                ("pvfs-hdd".into(), hdd),
            ]));
            let cfg = AdaConfig {
                policy,
                ..AdaConfig::paper_prototype("pvfs-ssd", "pvfs-hdd")
            };
            let ada = Ada::new(cfg, cs, ssd);
            ada.ingest(
                "bar",
                IngestInput::Synthetic(SyntheticDataset::gpcr_paper(frames)),
            )
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            .expect("ingest");
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let qp = ada.query("bar", Some(&Tag::protein())).expect("query p");
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let qa = ada.query("bar", None).expect("query all");
            let ssd_bytes = ada
                .containers()
                .bytes_by_backend("bar")
                // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
                .expect("placement")
                .get("pvfs-ssd")
                .copied()
                .unwrap_or(0);
            PolicyRow {
                policy: label.to_string(),
                protein_read_s: qp.read.as_secs_f64(),
                all_read_s: qa.read.as_secs_f64(),
                ssd_bytes,
            }
        })
        .collect()
}

/// One row of the decompression-rate sensitivity sweep.
#[derive(Debug, Clone)]
pub struct DecompressRow {
    /// Decompression rate, MB/s of output.
    pub rate_mbps: f64,
    /// C-ext4 turnaround at 5,006 frames, seconds.
    pub c_ext4_s: f64,
    /// D-ADA(protein) turnaround, seconds.
    pub ada_protein_s: f64,
    /// Headline speedup.
    pub speedup: f64,
}

/// Sweep the single-thread decompression rate on the SSD server.
pub fn decompress_rate_sweep(rates_mbps: &[f64]) -> Vec<DecompressRow> {
    rates_mbps
        .iter()
        .map(|&rate| {
            let mut platform = Platform::ssd_server();
            platform.cpu.decompress_output_bps = rate * 1e6;
            let c = run_scenario(&platform, Scenario::CTraditional, 5006);
            let p = run_scenario(&platform, Scenario::AdaProtein, 5006);
            let cs = c.turnaround().as_secs_f64();
            let ps = p.turnaround().as_secs_f64();
            DecompressRow {
                rate_mbps: rate,
                c_ext4_s: cs,
                ada_protein_s: ps,
                speedup: cs / ps,
            }
        })
        .collect()
}

/// One row of the render-overhead sensitivity sweep.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Render working-set fraction.
    pub fraction: f64,
    /// First Table 6 frame count at which XFS is killed (None = survives
    /// everything the paper tried).
    pub xfs_kill_frames: Option<u64>,
    /// First kill point for ADA(protein).
    pub ada_protein_kill_frames: Option<u64>,
}

/// Sweep the render working-set fraction on the fat node.
pub fn render_overhead_sweep(fractions: &[f64]) -> Vec<OverheadRow> {
    let frames = crate::figures::fig10_frames();
    fractions
        .iter()
        .map(|&fraction| {
            let mut platform = Platform::fatnode();
            platform.render_overhead_fraction = fraction;
            let first_kill = |scenario: Scenario| -> Option<u64> {
                frames
                    .iter()
                    .find(|&&f| run_scenario(&platform, scenario, f).killed.is_some())
                    .copied()
            };
            OverheadRow {
                fraction,
                xfs_kill_frames: first_kill(Scenario::CTraditional),
                ada_protein_kill_frames: first_kill(Scenario::AdaProtein),
            }
        })
        .collect()
}

/// One row of the indexer-cost ablation.
#[derive(Debug, Clone)]
pub struct IndexerRow {
    /// Droppings in the dataset's container.
    pub droppings: usize,
    /// Indexer search time, seconds.
    pub indexer_s: f64,
    /// Relative retrieval penalty of D-ADA(all) vs a dropping-free read.
    pub penalty_pct: f64,
}

/// Indexer overhead as the container's dropping count grows (one dropping
/// per tag per chunk; the paper stores whole subsets, we sweep chunking).
pub fn indexer_cost_ablation(dropping_counts: &[usize]) -> Vec<IndexerRow> {
    use ada_simfs::Content;
    dropping_counts
        .iter()
        .map(|&n| {
            let ssd: Arc<dyn SimFileSystem> = Arc::new(ada_simfs::LocalFs::ext4_on_nvme());
            let cs = Arc::new(ContainerSet::new(vec![("ssd".into(), ssd.clone())]));
            let cfg = AdaConfig {
                policy: DispatchPolicy::all_to("ssd"),
                ..AdaConfig::paper_prototype("ssd", "ssd")
            };
            let ada = Ada::new(cfg, cs, ssd);
            // Hand-build a container with n droppings per tag.
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            ada.containers().create_logical("bar").unwrap();
            let spec = SyntheticDataset::gpcr_paper(5006);
            let per = spec.raw_bytes() / (2 * n as u64);
            for tag in ["p", "m"] {
                for _ in 0..n {
                    ada.containers()
                        .append_tagged("bar", tag, "ssd", Content::synthetic(per))
                        // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
                        .unwrap();
                }
            }
            // Indexer + read through the determinator layer.
            let det = ada_core::Determinator::new(
                ada.containers().clone(),
                DispatchPolicy::all_to("ssd"),
            );
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let (_, indexer) = det.index_lookup("bar", None).unwrap();
            // ada-lint: allow(no-panic-in-lib) paper-figure harness over fixed synthetic inputs; a failure is a harness bug and aborting one repro run is acceptable
            let (_, read) = det.retrieve("bar", None).unwrap();
            IndexerRow {
                droppings: 2 * n,
                indexer_s: indexer.as_secs_f64(),
                penalty_pct: indexer.as_secs_f64() / read.as_secs_f64() * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ablation_shape() {
        let rows = dispatch_policy_ablation(5006);
        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.policy.starts_with(name)).unwrap();
        let hybrid = get("hybrid");
        let all_ssd = get("all-SSD");
        let all_hdd = get("all-HDD");
        let inverted = get("inverted");
        // Protein reads: hybrid matches all-SSD (protein is on SSD either
        // way) and beats all-HDD and inverted.
        assert!((hybrid.protein_read_s - all_ssd.protein_read_s).abs() < 0.05);
        assert!(hybrid.protein_read_s < all_hdd.protein_read_s);
        assert!(hybrid.protein_read_s < inverted.protein_read_s);
        // But hybrid stores ~2.4x less on the expensive tier than all-SSD.
        assert!(all_ssd.ssd_bytes as f64 / hybrid.ssd_bytes as f64 > 2.0);
        // Full reads: all-HDD worst.
        assert!(all_hdd.all_read_s >= hybrid.all_read_s);
    }

    #[test]
    fn decompress_sweep_monotone() {
        let rows = decompress_rate_sweep(&[14.3, 28.6, 57.2, 114.4]);
        // Speedup decays as decompression gets faster, and the paper's
        // calibrated point lands at ~13.4x.
        for w in rows.windows(2) {
            assert!(w[0].speedup > w[1].speedup);
        }
        assert!((rows[1].speedup - 13.4).abs() < 1.0, "{}", rows[1].speedup);
        // Even at 4x faster decompression ADA keeps winning.
        assert!(rows[3].speedup > 3.0);
    }

    #[test]
    fn overhead_sweep_moves_kill_boundary() {
        let rows = render_overhead_sweep(&[0.0, 0.032, 0.25]);
        // With no render overhead, XFS survives until the raw data alone
        // exceeds DRAM (2,502,400 frames: 1,306 GB).
        assert_eq!(rows[0].xfs_kill_frames, Some(2_502_400));
        // Paper calibration: kill at 1,876,800.
        assert_eq!(rows[1].xfs_kill_frames, Some(1_876_800));
        // Huge overhead kills earlier.
        assert!(rows[2].xfs_kill_frames.unwrap() < 1_876_800);
        // ADA(protein) always survives at least as long as XFS.
        for r in &rows {
            assert!(r.ada_protein_kill_frames.unwrap() >= r.xfs_kill_frames.unwrap());
        }
    }

    #[test]
    fn indexer_cost_grows_with_droppings() {
        let rows = indexer_cost_ablation(&[1, 64, 4096]);
        assert!(rows[0].indexer_s < rows[2].indexer_s);
        // Even at 8192 droppings the penalty stays in single-digit percent
        // of an NVMe full read (the "slightly longer" observation).
        assert!(rows[2].penalty_pct < 10.0, "{}", rows[2].penalty_pct);
    }
}
