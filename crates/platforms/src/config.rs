//! Platform definitions: the three testbeds of §4.

use ada_storagesim::CpuProfile;

/// Which testbed a run executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// §4.1: single server, Xeon E5-2603 v4, 16 GB DRAM, 2 × 256 GB NVMe,
    /// ext4.
    SsdServer,
    /// §4.2: nine nodes — 3 compute (E5-2603 v4), 3 HDD storage, 3 SSD
    /// storage; two OrangeFS instances; Table 4.
    Cluster9,
    /// §4.3: fat node — 4 × Xeon E7-4820 v3 (40 cores), 1,007 GB DDR4,
    /// XFS on RAID-50 of 10 × 1 TB WD HDD; Table 5.
    FatNode,
}

/// A concrete platform: compute-node resources plus the power model used
/// for the Fig. 10d energy accounting.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Which testbed.
    pub kind: PlatformKind,
    /// Display name.
    pub name: String,
    /// Base file-system label used in scenario names.
    pub base_fs: String,
    /// Compute-node CPU.
    pub cpu: CpuProfile,
    /// Compute-node DRAM in bytes.
    pub memory_bytes: u64,
    /// Chassis + DRAM + fans baseline power (watts) on the measured node,
    /// excluding CPU and disks (those come from their own models).
    pub base_power_w: f64,
    /// Storage active/idle power (watts) of the measured node's disks.
    pub storage_active_w: f64,
    /// Storage idle power.
    pub storage_idle_w: f64,
    /// Render working-set fraction (see [`RENDER_OVERHEAD_FRACTION`]);
    /// a field so the ablation suite can sweep it.
    pub render_overhead_fraction: f64,
}

/// Bytes in one decimal gigabyte.
pub const GB: u64 = 1_000_000_000;

impl Platform {
    /// The §4.1 SSD server.
    pub fn ssd_server() -> Platform {
        Platform {
            kind: PlatformKind::SsdServer,
            name: "SSD server (ext4, 2x NVMe, 16 GB)".into(),
            base_fs: "ext4".into(),
            cpu: CpuProfile::xeon_e5_2603_v4(),
            memory_bytes: 16 * GB,
            base_power_w: 60.0,
            storage_active_w: 12.0, // two NVMe drives
            storage_idle_w: 1.0,
            render_overhead_fraction: RENDER_OVERHEAD_FRACTION,
        }
    }

    /// The §4.2 nine-node cluster (metrics are taken at one compute node;
    /// Table 4's 400 W/node average drives cluster-level energy).
    pub fn cluster9() -> Platform {
        Platform {
            kind: PlatformKind::Cluster9,
            name: "9-node OrangeFS cluster (3 compute + 3 HDD + 3 SSD)".into(),
            base_fs: "PVFS".into(),
            cpu: CpuProfile::xeon_e5_2603_v4(),
            memory_bytes: 16 * GB,
            base_power_w: 60.0,
            storage_active_w: 6.8 * 6.0, // six storage-node HDD pairs, amortized
            storage_idle_w: 3.7 * 6.0,
            render_overhead_fraction: RENDER_OVERHEAD_FRACTION,
        }
    }

    /// The §4.3 fat node.
    pub fn fatnode() -> Platform {
        Platform {
            kind: PlatformKind::FatNode,
            name: "fat node (XFS on RAID-50, 1,007 GB)".into(),
            base_fs: "XFS".into(),
            cpu: CpuProfile::xeon_e7_4820_v3_quad(),
            memory_bytes: 1007 * GB,
            base_power_w: 100.0,    // chassis + 1 TB DDR4
            storage_active_w: 68.0, // 10 HDDs active
            storage_idle_w: 37.0,
            render_overhead_fraction: RENDER_OVERHEAD_FRACTION,
        }
    }

    /// Table 4's published per-node average power (used for whole-cluster
    /// energy estimates).
    pub const CLUSTER_NODE_AVG_POWER_W: f64 = 400.0;

    /// Number of cluster nodes (Table 4).
    pub const CLUSTER_NODES: usize = 9;
}

/// The render-time working set as a fraction of resident frame data.
///
/// Calibrated against the paper's own OOM boundaries: XFS/ADA(all) die at
/// 1,876,800 frames (979.8 GB raw) but XFS survives 1,564,000 (816.5 GB),
/// and ADA(protein) survives 4,379,200 (970.2 GB) but dies at 5,004,800
/// (1,108.8 GB) on the 1,007 GB node — which brackets the factor into
/// (1,007/979.8 − 1, 1,007/970.2 − 1) ≈ (2.8 %, 3.8 %).
pub const RENDER_OVERHEAD_FRACTION: f64 = 0.032;

/// Streaming read buffer for compressed input (C scenarios decompress
/// frame-by-frame; the whole .xtc is never resident).
pub const STREAM_BUFFER_BYTES: u64 = 256 * 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_parameters_match_tables() {
        let ssd = Platform::ssd_server();
        assert_eq!(ssd.memory_bytes, 16 * GB);
        assert_eq!(ssd.cpu.cores, 6);
        let fat = Platform::fatnode();
        assert_eq!(fat.memory_bytes, 1007 * GB);
        assert_eq!(fat.cpu.cores, 40);
        let cl = Platform::cluster9();
        assert_eq!(cl.cpu.name, CpuProfile::xeon_e5_2603_v4().name);
    }

    #[test]
    fn render_overhead_brackets_paper_kill_points() {
        // 1,007 GB capacity: must kill at 979.8 GB raw but not at 970.2 GB.
        let cap = 1007.0;
        assert!(979.8 * (1.0 + RENDER_OVERHEAD_FRACTION) > cap);
        assert!(970.2 * (1.0 + RENDER_OVERHEAD_FRACTION) < cap);
        assert!(816.5 * (1.0 + RENDER_OVERHEAD_FRACTION) < cap);
        assert!(1108.8 > cap); // protein at 5,004,800 dies outright
    }
}
