//! Multi-client contention — scaling the §4.2 cluster beyond one reader.
//!
//! The paper measures a single VMD client. A visualization cluster serves
//! many: every concurrent client shares the storage nodes' bandwidth,
//! while CPU phases run on the client's own compute node (of which the
//! cluster has three). This experiment scales the scenario model to `K`
//! clients under fair sharing:
//!
//! * storage/retrieval time per client × `K` (shared backends),
//! * CPU phases × `ceil(K / compute_nodes)` (time-sliced compute nodes).
//!
//! ADA's advantage *grows* with K: it ships 2.4× less data through the
//! shared storage, so the contended component stays small.

use crate::config::Platform;
use crate::runner::{run_scenario, RunMetrics};
use crate::scenario::Scenario;
use ada_storagesim::SimDuration;

/// Per-client turnaround of one scenario under `clients` concurrent
/// readers.
#[derive(Debug, Clone)]
pub struct ContendedRun {
    /// Scenario label.
    pub label: String,
    /// Concurrent clients.
    pub clients: usize,
    /// Per-client turnaround, seconds.
    pub turnaround_s: f64,
}

fn scale(d: SimDuration, k: f64) -> f64 {
    d.as_secs_f64() * k
}

/// Scale a single-client run to `clients` concurrent readers.
pub fn contended_turnaround(m: &RunMetrics, clients: usize, compute_nodes: usize) -> f64 {
    let storage_k = clients as f64;
    let cpu_k = clients.div_ceil(compute_nodes) as f64;
    scale(m.retrieval + m.indexer, storage_k) + scale(m.decompress + m.scan + m.render, cpu_k)
}

/// Run the four cluster scenarios at `frames` for each client count.
pub fn cluster_contention(frames: u64, client_counts: &[usize]) -> Vec<ContendedRun> {
    let platform = Platform::cluster9();
    let compute_nodes = 3usize;
    let mut out = Vec::new();
    for &scenario in &Scenario::ALL {
        let m = run_scenario(&platform, scenario, frames);
        for &clients in client_counts {
            out.push(ContendedRun {
                label: m.label.clone(),
                clients,
                turnaround_s: contended_turnaround(&m, clients, compute_nodes),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(runs: &'a [ContendedRun], label: &str, clients: usize) -> &'a ContendedRun {
        runs.iter()
            .find(|r| r.label == label && r.clients == clients)
            .unwrap()
    }

    #[test]
    fn ada_advantage_grows_with_clients() {
        let runs = cluster_contention(5006, &[1, 3, 9]);
        let gap = |clients: usize| -> f64 {
            lookup(&runs, "D-PVFS", clients).turnaround_s
                / lookup(&runs, "D-ADA (protein)", clients).turnaround_s
        };
        assert!(gap(9) > gap(1), "gap@9 {} vs gap@1 {}", gap(9), gap(1));
    }

    #[test]
    fn turnaround_monotone_in_clients() {
        let runs = cluster_contention(3129, &[1, 2, 4, 8]);
        for label in ["C-PVFS", "D-PVFS", "D-ADA (all)", "D-ADA (protein)"] {
            let mut prev = 0.0;
            for &c in &[1usize, 2, 4, 8] {
                let t = lookup(&runs, label, c).turnaround_s;
                assert!(t >= prev, "{} at {} clients regressed", label, c);
                prev = t;
            }
        }
    }

    #[test]
    fn single_client_matches_runner() {
        let platform = Platform::cluster9();
        let m = run_scenario(&platform, Scenario::AdaProtein, 5006);
        let contended = contended_turnaround(&m, 1, 3);
        assert!((contended - m.turnaround().as_secs_f64()).abs() < 1e-9);
    }
}
