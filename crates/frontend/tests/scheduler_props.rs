//! Property suite over [`SchedulerCore`]: random arrival / completion
//! interleavings, driven on a logical clock with no threads, must
//!
//! * never exceed the configured slot limits,
//! * preserve FIFO order within a class (admission ids start in order),
//! * account every request exactly once
//!   (`admitted + rejected + expired == submitted`, `completed == admitted`
//!   at quiescence),
//! * never observe a queue deeper than its capacity.
//!
//! The core is deterministic given the op sequence, so every failure here
//! replays exactly — this is the "deterministic concurrency test suite"
//! half of the front-end's trust story; `tests/concurrent_clients.rs` at
//! the workspace root covers the genuinely-threaded half.

use ada_frontend::{Class, Popped, SchedulerCore};
use proptest::prelude::*;

/// One step of the driver. Ops are interpreted against whichever class
/// the step selects, and completions only apply when something runs.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Submit a job (deadline in logical ns, 0 = none).
    Submit { query: bool, deadline: u64 },
    /// Try to start (or expire) the oldest queued job.
    Pop { query: bool },
    /// Finish one running job, releasing its slot.
    Complete { query: bool, service_ns: u64 },
    /// Advance the logical clock.
    Tick { ns: u64 },
}

fn class_of(query: bool) -> Class {
    if query {
        Class::Query
    } else {
        Class::Ingest
    }
}

/// Decode a `(code, a, b)` triple into an [`Op`]; proptest generates the
/// triples, this keeps the strategy primitive-only (the vendored proptest
/// has no `prop_oneof`).
fn decode(code: u8, a: u64, b: u64) -> Op {
    let query = a % 2 == 0;
    match code % 4 {
        0 => Op::Submit {
            query,
            deadline: if b % 3 == 0 { b % 5_000 } else { 0 },
        },
        1 => Op::Pop { query },
        2 => Op::Complete {
            query,
            service_ns: b % 10_000,
        },
        _ => Op::Tick { ns: b % 2_000 },
    }
}

/// Drive `core` through the decoded op list, checking stepwise invariants
/// and returning the logical end time.
fn drive(core: &mut SchedulerCore<u64>, ops: &[(u8, u64, u64)]) -> Result<u64, TestCaseError> {
    let mut now = 0u64;
    let mut next_job = 0u64;
    // Per class: ids handed out by `Start`, to check FIFO.
    let mut last_started: [Option<u64>; 2] = [None, None];
    for &(code, a, b) in ops {
        match decode(code, a, b) {
            Op::Submit { query, deadline } => {
                let class = class_of(query);
                let before = core.queue_depth(class);
                let res = core.submit(class, next_job, now, (deadline > 0).then_some(deadline));
                next_job += 1;
                match res {
                    Ok(_) => prop_assert!(core.queue_depth(class) == before + 1),
                    Err(rej) => {
                        prop_assert_eq!(rej.queue_depth, before);
                        prop_assert!(rej.retry_after_ns > 0, "retry hint must be usable");
                    }
                }
            }
            Op::Pop { query } => {
                let class = class_of(query);
                if let Some(Popped::Start { id, .. }) = core.pop(class, now) {
                    let slot = if query { 1 } else { 0 };
                    if let Some(prev) = last_started[slot] {
                        prop_assert!(id > prev, "FIFO violated: started {} after {}", id, prev);
                    }
                    last_started[slot] = Some(id);
                }
            }
            Op::Complete { query, service_ns } => {
                let class = class_of(query);
                if core.running(class) > 0 {
                    core.complete(class, service_ns);
                }
            }
            Op::Tick { ns } => now += ns,
        }
        for class in Class::ALL {
            prop_assert!(
                core.running(class) <= core.slots(class),
                "slot limit exceeded for {}",
                class.name()
            );
        }
    }
    Ok(now)
}

/// Finish everything still queued or running so the lifetime counters can
/// be balanced: pop (far in the future, so stragglers with deadlines
/// expire) until the queue is dry, completing as needed to free slots.
fn quiesce(core: &mut SchedulerCore<u64>, mut now: u64) {
    for class in Class::ALL {
        loop {
            now += 1;
            match core.pop(class, now) {
                Some(Popped::Start { .. }) => core.complete(class, 1),
                Some(Popped::Expired { .. }) => {}
                None => {
                    if core.running(class) > 0 {
                        core.complete(class, 1);
                        continue;
                    }
                    if core.queue_depth(class) == 0 {
                        break;
                    }
                    // Queue non-empty with free slots: next pop drains it.
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings over small slot/queue shapes.
    #[test]
    fn interleavings_respect_slots_fifo_and_accounting(
        ingest_slots in 1usize..4,
        query_slots in 1usize..4,
        ingest_queue in 1usize..6,
        query_queue in 1usize..6,
        ops in prop::collection::vec((0u8..8, 0u64..100, 0u64..10_000), 1..200),
    ) {
        let mut core: SchedulerCore<u64> = SchedulerCore::new(
            (ingest_slots, ingest_queue),
            (query_slots, query_queue),
            1_000,
        );
        let end = drive(&mut core, &ops)?;
        for class in Class::ALL {
            prop_assert!(core.queue_hwm(class) <= match class {
                Class::Ingest => ingest_queue,
                Class::Query => query_queue,
            });
        }
        quiesce(&mut core, end);
        for class in Class::ALL {
            let n = core.counters(class);
            prop_assert_eq!(
                n.submitted,
                n.admitted + n.rejected + n.expired,
                "{} accounting broken: {:?}",
                class.name(),
                n
            );
            prop_assert_eq!(n.completed, n.admitted);
            prop_assert_eq!(core.queue_depth(class), 0);
            prop_assert_eq!(core.running(class), 0);
        }
    }

    /// Saturating a class never lets the queue grow past capacity, and
    /// every overflow is a typed rejection carrying the true depth.
    #[test]
    fn saturation_rejects_exactly_past_capacity(
        capacity in 1usize..8,
        extra in 1usize..8,
    ) {
        let mut core: SchedulerCore<u64> = SchedulerCore::new((1, capacity), (1, capacity), 500);
        let mut rejected = 0u64;
        for j in 0..(capacity + extra) as u64 {
            if let Err(rej) = core.submit(Class::Query, j, 0, None) {
                prop_assert_eq!(rej.queue_depth, capacity);
                rejected += 1;
            }
        }
        prop_assert_eq!(rejected, extra as u64);
        prop_assert_eq!(core.queue_hwm(Class::Query), capacity);
    }
}
