#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

//! # ada-frontend — multi-client admission control over a shared `Ada`
//!
//! The paper's Fig. 9 measures ADA under *concurrent* VMD clients, where
//! the storage node's fixed CPU and bandwidth are the bottleneck. The
//! core [`Ada`](ada_core::Ada) object is already shareable (`&self` with
//! internal `parking_lot` locks) but unguarded: any number of clients can
//! pile onto it and the node degrades unboundedly. This crate adds the
//! arbitration layer:
//!
//! * [`FrontendConfig`] — per-class (ingest vs. query) concurrency slots
//!   and bounded queue capacities;
//! * [`SchedulerCore`] — a deterministic, lock-free-of-time state machine
//!   implementing FIFO-within-class scheduling, deadline expiry and typed
//!   load shedding (`AdaError::Overloaded { queue_depth, retry_after }`);
//!   all timestamps are supplied by the caller, so the proptest suite can
//!   replay arbitrary interleavings exactly;
//! * [`Frontend`] — the threaded layer: one worker pool per class woken
//!   by unit tokens on bounded channels, clients blocking on rendezvous
//!   reply channels, full `ada-telemetry` integration (queue-depth HWM
//!   gauges, admission-wait histograms, per-client accepted / rejected /
//!   deadline-exceeded counters).
//!
//! Shedding is graceful: a rejected request carries the current queue
//! depth and a retry-after hint derived from the observed mean service
//! time, so clients can back off proportionally to the overload instead
//! of retrying blindly.

pub mod config;
pub mod frontend;
pub mod request;
pub mod scheduler;
pub mod stats;

pub use config::FrontendConfig;
pub use frontend::Frontend;
pub use request::{Class, Reply, Request};
pub use scheduler::{ClassCounters, Popped, Rejection, SchedulerCore};
pub use stats::{ClassStats, FrontendStats};
