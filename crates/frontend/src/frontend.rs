//! The threaded front-end: worker pools per class over a shared [`Ada`],
//! driven by the deterministic [`SchedulerCore`].
//!
//! ## Concurrency shape
//!
//! All scheduling state lives in one `parking_lot::Mutex<SchedulerCore>`;
//! workers are woken through bounded *token* channels (one unit token per
//! admitted request, buffer sized `queue + slots` so a send never blocks).
//! Tokens are interchangeable — FIFO order comes from the core's queue,
//! not from token arrival order — which keeps admission (under the lock)
//! and wake-up (after the lock) free of ordering races. The vendored
//! `parking_lot` has no `Condvar`, and the workspace lint bans unbounded
//! channels, so this token design is also the only shape that satisfies
//! both constraints.
//!
//! A client blocks on a rendezvous reply channel; it never holds the
//! scheduler lock while waiting, and workers never hold it while touching
//! storage, so the lock guards only O(1) queue operations.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ada_core::{Ada, AdaError, IngestInput, IngestReport, QueryReport};
use ada_mdmodel::Tag;
use ada_telemetry::trace::{self, TraceContext};
use ada_telemetry::{Counter, Gauge, Histogram};
use parking_lot::Mutex;

use crate::config::FrontendConfig;
use crate::request::{Class, Reply, Request};
use crate::scheduler::{Popped, SchedulerCore};
use crate::stats::{ClassStats, FrontendStats};

/// One admitted request plus the channel its client is blocked on. The
/// trace context rides along so the worker's spans (queue wait, slot-held
/// execution, everything the middleware adds) join the tree rooted at
/// admission; the root guard itself stays with the blocked client in
/// [`Frontend::submit`], which seals the trace before returning.
#[derive(Debug)]
struct Job {
    client: String,
    request: Request,
    reply: SyncSender<Result<Reply, AdaError>>,
    ctx: TraceContext,
}

/// Global-registry handles, registered once at construction so every
/// admission metric appears in snapshots even while still zero.
struct Metrics {
    queue: [Arc<Gauge>; 2],
    wait: [Arc<Histogram>; 2],
    accepted: [Arc<Counter>; 2],
    rejected: [Arc<Counter>; 2],
    deadline: [Arc<Counter>; 2],
}

impl Metrics {
    fn register() -> Metrics {
        let reg = ada_telemetry::global();
        let per_class = |what: &str| {
            [Class::Ingest, Class::Query]
                .map(|c| reg.counter(&format!("frontend.{}.{}", c.name(), what)))
        };
        Metrics {
            queue: [Class::Ingest, Class::Query]
                .map(|c| reg.gauge(&format!("frontend.queue.{}", c.name()))),
            wait: [Class::Ingest, Class::Query]
                .map(|c| reg.histogram(&format!("frontend.wait_ns.{}", c.name()))),
            accepted: per_class("accepted"),
            rejected: per_class("rejected"),
            deadline: per_class("deadline_exceeded"),
        }
    }

    fn client_counter(client: &str, what: &str) -> Arc<Counter> {
        ada_telemetry::global().counter(&format!("frontend.client.{}.{}", client, what))
    }
}

struct Shared {
    ada: Arc<Ada>,
    core: Mutex<SchedulerCore<Job>>,
    start: Instant,
    metrics: Option<Metrics>,
    default_deadline: Option<Duration>,
}

impl Shared {
    /// Monotonic nanoseconds since the front-end was built — the queue's
    /// clock (enqueue stamps, deadline expiry).
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn note_enqueue(&self, class: Class) {
        if let Some(m) = &self.metrics {
            m.queue[class.idx()].inc();
        }
    }

    fn note_dequeue(&self, class: Class, waited_ns: u64) {
        if let Some(m) = &self.metrics {
            m.queue[class.idx()].dec();
            m.wait[class.idx()].record(waited_ns);
        }
    }

    fn note_accepted(&self, class: Class, client: &str) {
        if let Some(m) = &self.metrics {
            m.accepted[class.idx()].inc();
            Metrics::client_counter(client, "accepted").inc();
        }
    }

    fn note_rejected(&self, class: Class, client: &str) {
        if let Some(m) = &self.metrics {
            m.rejected[class.idx()].inc();
            Metrics::client_counter(client, "rejected").inc();
        }
    }

    fn note_deadline_exceeded(&self, class: Class, client: &str) {
        if let Some(m) = &self.metrics {
            m.deadline[class.idx()].inc();
            Metrics::client_counter(client, "deadline_exceeded").inc();
        }
    }
}

/// Multi-client admission front-end over one shared [`Ada`].
///
/// Owns `ingest_slots + query_slots` worker threads; requests are
/// submitted from any number of client threads via [`Frontend::submit`]
/// (or the typed [`Frontend::ingest`] / [`Frontend::query`] wrappers),
/// which block until the request completes, is shed with
/// [`AdaError::Overloaded`], or dies in the queue with
/// [`AdaError::DeadlineExceeded`]. Dropping the front-end drains every
/// admitted request before the workers exit, so no client is left hanging.
pub struct Frontend {
    shared: Arc<Shared>,
    tokens: [Option<SyncSender<()>>; 2],
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Frontend")
            .field("workers", &self.workers.len())
            .field("stats", &stats)
            .finish_non_exhaustive()
    }
}

impl Frontend {
    /// Spawn the per-class worker pools over `ada`.
    pub fn new(ada: Arc<Ada>, config: FrontendConfig) -> Frontend {
        let config = config.normalized();
        let retry_floor = config.retry_after_floor.as_nanos().min(u64::MAX as u128) as u64;
        let shared = Arc::new(Shared {
            ada,
            core: Mutex::new(SchedulerCore::new(
                (config.ingest_slots, config.ingest_queue),
                (config.query_slots, config.query_queue),
                retry_floor,
            )),
            start: Instant::now(),
            metrics: ada_telemetry::enabled().then(Metrics::register),
            default_deadline: config.default_deadline,
        });
        let mut tokens = [None, None];
        let mut workers = Vec::with_capacity(config.ingest_slots + config.query_slots);
        for class in Class::ALL {
            let (slots, cap) = match class {
                Class::Ingest => (config.ingest_slots, config.ingest_queue),
                Class::Query => (config.query_slots, config.query_queue),
            };
            // Tokens outstanding never exceed the number of queued jobs
            // (send happens after a successful admit, recv before the
            // pop), so `cap + slots` of buffer means a send cannot block.
            let (tx, rx) = sync_channel::<()>(cap + slots);
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..slots {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                workers.push(std::thread::spawn(move || worker_loop(&shared, class, &rx)));
            }
            tokens[class.idx()] = Some(tx);
        }
        Frontend {
            shared,
            tokens,
            workers,
        }
    }

    /// Submit a request and block until it resolves. `deadline` bounds
    /// only the queue wait (a request that started executing runs to
    /// completion); `None` waits indefinitely.
    pub fn submit(
        &self,
        client: &str,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Reply, AdaError> {
        // Every request — including one about to be shed — gets a trace
        // root here at admission. The guard stays on this (client) thread;
        // it seals the trace when this function returns, by which point
        // the worker has already sent the reply and therefore finished
        // every child span.
        let (ctx, mut root) = trace::root("frontend.request");
        self.submit_rooted(client, request, deadline, &ctx, &mut root)
    }

    /// [`Frontend::submit`] under a caller-minted trace root. The
    /// networked server uses this with a root minted from the wire-carried
    /// trace id ([`trace::root_remote`]), so the admission queue wait,
    /// slot execution, and every middleware span seal into the *client's*
    /// trace instead of a disconnected local one. The caller keeps the
    /// root guard alive until this returns (the guard seals the tree).
    pub fn submit_rooted(
        &self,
        client: &str,
        request: Request,
        deadline: Option<Duration>,
        ctx: &TraceContext,
        root: &mut trace::TraceSpanGuard,
    ) -> Result<Reply, AdaError> {
        let class = request.class();
        root.arg("op", request.op_name());
        root.arg("client", client);
        let (reply_tx, reply_rx) = sync_channel::<Result<Reply, AdaError>>(1);
        let job = Job {
            client: client.to_string(),
            request,
            reply: reply_tx,
            ctx: ctx.clone(),
        };
        let now = self.shared.now_ns();
        let deadline_ns = deadline.map(|d| d.as_nanos().min(u64::MAX as u128) as u64);
        let admitted = self.shared.core.lock().submit(class, job, now, deadline_ns);
        match admitted {
            Err(rej) => {
                self.shared.note_rejected(class, client);
                // A shed request keeps a debuggable (flagged) trace: the
                // queue depth that triggered the shed and the retry hint
                // handed to the client.
                root.set_error("overloaded");
                root.arg("queue_depth", rej.queue_depth);
                root.arg("retry_after_ns", rej.retry_after_ns);
                Err(AdaError::Overloaded {
                    queue_depth: rej.queue_depth,
                    retry_after: Duration::from_nanos(rej.retry_after_ns),
                })
            }
            Ok(_id) => {
                self.shared.note_enqueue(class);
                if let Some(tx) = &self.tokens[class.idx()] {
                    if tx.send(()).is_err() {
                        root.set_error("internal");
                        return Err(AdaError::Internal(
                            "frontend worker pool is gone".to_string(),
                        ));
                    }
                }
                let res = match reply_rx.recv() {
                    Ok(r) => r,
                    Err(_) => {
                        root.set_error("internal");
                        return Err(AdaError::Internal(
                            "frontend worker dropped the reply channel".to_string(),
                        ));
                    }
                };
                if let Err(e) = &res {
                    root.set_error(e.kind());
                }
                res
            }
        }
    }

    /// Whole-buffer ingest through admission control, with the
    /// configured default deadline.
    pub fn ingest(
        &self,
        client: &str,
        dataset: &str,
        input: IngestInput,
    ) -> Result<IngestReport, AdaError> {
        let request = Request::Ingest {
            dataset: dataset.to_string(),
            input,
        };
        self.submit(client, request, self.shared.default_deadline)?
            .into_ingest()
            .ok_or_else(|| AdaError::Internal("ingest reply carried a query report".to_string()))
    }

    /// Streaming ingest through admission control.
    pub fn ingest_streaming(
        &self,
        client: &str,
        dataset: &str,
        pdb_text: &str,
        xtc_bytes: &[u8],
        batch_frames: usize,
    ) -> Result<IngestReport, AdaError> {
        let request = Request::IngestStreaming {
            dataset: dataset.to_string(),
            pdb_text: pdb_text.to_string(),
            xtc_bytes: xtc_bytes.to_vec(),
            batch_frames,
        };
        self.submit(client, request, self.shared.default_deadline)?
            .into_ingest()
            .ok_or_else(|| AdaError::Internal("ingest reply carried a query report".to_string()))
    }

    /// Tag-aware (or full-frame) query through admission control.
    pub fn query(
        &self,
        client: &str,
        dataset: &str,
        tag: Option<&Tag>,
    ) -> Result<QueryReport, AdaError> {
        let request = Request::Query {
            dataset: dataset.to_string(),
            tag: tag.cloned(),
        };
        self.submit(client, request, self.shared.default_deadline)?
            .into_query()
            .ok_or_else(|| AdaError::Internal("query reply carried an ingest report".to_string()))
    }

    /// Strided frame-range query (the ML-sampling read path) through
    /// admission control; competes in the query class.
    pub fn query_range(
        &self,
        client: &str,
        dataset: &str,
        tag: &Tag,
        window: std::ops::Range<usize>,
        stride: usize,
    ) -> Result<QueryReport, AdaError> {
        let request = Request::QueryRange {
            dataset: dataset.to_string(),
            tag: tag.clone(),
            start: window.start,
            end: window.end,
            stride,
        };
        self.submit(client, request, self.shared.default_deadline)?
            .into_query()
            .ok_or_else(|| AdaError::Internal("query reply carried an ingest report".to_string()))
    }

    /// Point-in-time admission statistics (process-local, not the global
    /// telemetry registry — safe for concurrent tests in one binary).
    pub fn stats(&self) -> FrontendStats {
        let core = self.shared.core.lock();
        let class_stats = |class: Class| ClassStats {
            counters: core.counters(class),
            queue_depth: core.queue_depth(class),
            queue_hwm: core.queue_hwm(class),
            running: core.running(class),
            slots: core.slots(class),
        };
        FrontendStats {
            ingest: class_stats(Class::Ingest),
            query: class_stats(Class::Query),
        }
    }

    /// The shared middleware this front-end guards.
    pub fn ada(&self) -> &Ada {
        &self.shared.ada
    }

    /// The process-wide flight recorder of completed request traces
    /// (passthrough of [`Ada::flight_recorder`]): every admitted request
    /// leaves a recent trace; shed, expired, errored, and
    /// over-latency-threshold requests are retained.
    pub fn flight_recorder(&self) -> &'static ada_telemetry::trace::FlightRecorder {
        self.shared.ada.flight_recorder()
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        // Dropping the token senders lets workers drain the remaining
        // buffered tokens (each one an admitted request) and then exit on
        // the channel hangup, so no client blocks forever.
        for tx in &mut self.tokens {
            *tx = None;
        }
        for handle in self.workers.drain(..) {
            // A panicked worker already failed its own client via the
            // dropped reply channel; teardown has nothing left to fix.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, class: Class, rx: &Mutex<Receiver<()>>) {
    loop {
        // Holding the receiver lock while blocked is fine: the other
        // workers of this class are either executing or waiting their
        // turn on this same lock.
        // ada-lint: allow(no-blocking-under-lock) the mutex exists only to share the consumer end; senders never take it, and peer workers just wait their turn on this same lock
        if rx.lock().recv().is_err() {
            return; // front-end dropped and the queue is drained
        }
        let now = shared.now_ns();
        // Queue depth observed at pop time rides along as a span arg, so
        // an expired request's trace says how deep the line it died in was.
        let (popped, depth) = {
            let mut core = shared.core.lock();
            let p = core.pop(class, now);
            (p, core.queue_depth(class))
        };
        match popped {
            // Unreachable by construction (tokens are 1:1 with queued
            // jobs and worker count equals the slot limit), but a lost
            // token must not kill the worker.
            None => continue,
            Some(Popped::Expired {
                job,
                waited_ns,
                deadline_ns,
                ..
            }) => {
                shared.note_dequeue(class, waited_ns);
                shared.note_deadline_exceeded(class, &job.client);
                let end = trace::now_ns();
                job.ctx.record(
                    "frontend.queue_wait",
                    end.saturating_sub(waited_ns),
                    end,
                    vec![
                        ("waited_ns", waited_ns.into()),
                        ("deadline_ns", deadline_ns.into()),
                        ("queue_depth", depth.into()),
                    ],
                );
                let _ = job.reply.send(Err(AdaError::DeadlineExceeded {
                    waited: Duration::from_nanos(waited_ns),
                    deadline: Duration::from_nanos(deadline_ns),
                }));
            }
            Some(Popped::Start { job, waited_ns, .. }) => {
                shared.note_dequeue(class, waited_ns);
                shared.note_accepted(class, &job.client);
                let end = trace::now_ns();
                job.ctx.record(
                    "frontend.queue_wait",
                    end.saturating_sub(waited_ns),
                    end,
                    vec![("waited_ns", waited_ns.into())],
                );
                let t = Instant::now();
                let res = {
                    // Slot-held span: everything the middleware does for
                    // this request nests under it.
                    let exec = job.ctx.span("frontend.execute");
                    let ectx = exec.ctx();
                    job.request.execute(&shared.ada, &ectx)
                };
                let service_ns = t.elapsed().as_nanos() as u64;
                // Release the slot before replying so a client that saw
                // its request finish also sees balanced stats.
                shared.core.lock().complete(class, service_ns);
                let _ = job.reply.send(res);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_core::AdaConfig;
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};

    fn make_ada() -> Arc<Ada> {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let cs = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        Arc::new(Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd))
    }

    fn real_input(natoms: usize, nframes: usize) -> IngestInput {
        let w = ada_workload::gpcr_workload(natoms, nframes, 77);
        IngestInput::Real {
            pdb_text: ada_mdformats::write_pdb(&w.system),
            xtc_bytes: ada_mdformats::xtc::write_xtc(
                &w.trajectory,
                ada_mdformats::xtc::DEFAULT_PRECISION,
            )
            .unwrap(),
        }
    }

    #[test]
    fn frontend_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frontend>();
        assert_send_sync::<Ada>();
    }

    #[test]
    fn single_client_roundtrip() {
        let fe = Frontend::new(make_ada(), FrontendConfig::default());
        fe.ingest("c0", "bar", real_input(300, 2)).unwrap();
        let q = fe.query("c0", "bar", Some(&Tag::protein())).unwrap();
        match q.data {
            ada_core::RetrievedData::Real(traj) => assert_eq!(traj.len(), 2),
            other => panic!("expected real data, got {:?}", other),
        }
        let s = fe.stats();
        assert!(s.is_quiescent(), "stats must balance: {:?}", s);
        assert_eq!(s.ingest.counters.completed, 1);
        assert_eq!(s.query.counters.completed, 1);
    }

    #[test]
    fn unknown_dataset_error_passes_through_typed() {
        let fe = Frontend::new(make_ada(), FrontendConfig::default());
        let err = fe.query("c0", "nope", None).unwrap_err();
        assert_eq!(err.kind(), "unknown_dataset");
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let fe = Frontend::new(make_ada(), FrontendConfig::default());
        fe.ingest("c0", "bar", real_input(300, 2)).unwrap();
        let req = Request::Query {
            dataset: "bar".into(),
            tag: None,
        };
        // A 0 ns deadline is always in the past by the time a worker
        // picks the request up.
        let err = fe
            .submit("c0", req, Some(Duration::from_nanos(0)))
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        let s = fe.stats();
        assert_eq!(s.query.counters.expired, 1);
        assert!(s.is_quiescent());
    }

    #[test]
    fn drop_with_empty_queue_joins_workers() {
        let fe = Frontend::new(make_ada(), FrontendConfig::default());
        drop(fe); // must not hang
    }
}
