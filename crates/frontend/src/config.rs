//! Front-end tuning knobs: per-class slots, queue capacities, deadlines.

use std::time::Duration;

/// Configuration for [`crate::Frontend`]: per-class concurrency limits and
/// bounded queue capacities, mirroring the storage node's fixed resources
/// in the paper's Fig. 9 contention experiment.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Ingest requests executing concurrently (ingest is write-heavy and
    /// CPU-bound on the storage node, so it gets fewer slots by default).
    pub ingest_slots: usize,
    /// Query requests executing concurrently.
    pub query_slots: usize,
    /// Ingest requests allowed to wait; one more is shed with
    /// [`ada_core::AdaError::Overloaded`].
    pub ingest_queue: usize,
    /// Query requests allowed to wait.
    pub query_queue: usize,
    /// Deadline attached to requests submitted through the convenience
    /// methods ([`crate::Frontend::ingest`] / [`crate::Frontend::query`]);
    /// `None` means wait indefinitely.
    pub default_deadline: Option<Duration>,
    /// Floor for the `retry_after` hint carried by `Overloaded` rejections,
    /// used until enough completions exist to estimate service time.
    pub retry_after_floor: Duration,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            ingest_slots: 2,
            query_slots: 4,
            ingest_queue: 16,
            query_queue: 32,
            default_deadline: None,
            retry_after_floor: Duration::from_millis(1),
        }
    }
}

impl FrontendConfig {
    /// Clamp degenerate values: at least one slot and a queue of at least
    /// one per class, so the front-end can always make progress.
    pub fn normalized(mut self) -> FrontendConfig {
        self.ingest_slots = self.ingest_slots.max(1);
        self.query_slots = self.query_slots.max(1);
        self.ingest_queue = self.ingest_queue.max(1);
        self.query_queue = self.query_queue.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_already_normalized() {
        let d = FrontendConfig::default();
        let n = d.clone().normalized();
        assert_eq!(d.ingest_slots, n.ingest_slots);
        assert_eq!(d.query_queue, n.query_queue);
    }

    #[test]
    fn normalized_clamps_zeros() {
        let c = FrontendConfig {
            ingest_slots: 0,
            query_slots: 0,
            ingest_queue: 0,
            query_queue: 0,
            ..FrontendConfig::default()
        }
        .normalized();
        assert_eq!(c.ingest_slots, 1);
        assert_eq!(c.query_slots, 1);
        assert_eq!(c.ingest_queue, 1);
        assert_eq!(c.query_queue, 1);
    }
}
