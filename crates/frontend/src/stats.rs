//! Point-in-time front-end statistics, independent of the global
//! telemetry registry so concurrent tests in one process don't share
//! counters.

use crate::request::Class;
use crate::scheduler::ClassCounters;

/// Snapshot of one class's admission state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Lifetime request accounting.
    pub counters: ClassCounters,
    /// Requests waiting right now.
    pub queue_depth: usize,
    /// Highest queue depth ever observed.
    pub queue_hwm: usize,
    /// Requests executing right now.
    pub running: usize,
    /// Configured slot limit.
    pub slots: usize,
}

/// Snapshot of both classes, from [`crate::Frontend::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontendStats {
    /// Write-path admission state.
    pub ingest: ClassStats,
    /// Read-path admission state.
    pub query: ClassStats,
}

impl FrontendStats {
    /// The stats for `class`.
    pub fn class(&self, class: Class) -> &ClassStats {
        match class {
            Class::Ingest => &self.ingest,
            Class::Query => &self.query,
        }
    }

    /// True when every submitted request has been fully accounted for:
    /// nothing queued, nothing running, and the lifetime counters balance
    /// (`submitted == admitted + rejected + expired`, `completed ==
    /// admitted`).
    pub fn is_quiescent(&self) -> bool {
        [self.ingest, self.query].iter().all(|c| {
            let n = c.counters;
            c.queue_depth == 0
                && c.running == 0
                && n.submitted == n.admitted + n.rejected + n.expired
                && n.completed == n.admitted
        })
    }
}
