//! The request/reply vocabulary clients speak to the front-end.

use ada_core::{Ada, AdaError, IngestInput, IngestReport, QueryReport};
use ada_mdmodel::Tag;
use ada_telemetry::trace::TraceContext;

/// Admission class a request competes in. Ingest and query contend for
/// different storage-node resources (write bandwidth + split CPU vs. read
/// bandwidth + decode CPU), so each class has its own slots and queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Write path: `ingest` / `ingest_streaming`.
    Ingest,
    /// Read path: `query`.
    Query,
}

impl Class {
    /// Both classes, in stable order (used to size per-class state).
    pub const ALL: [Class; 2] = [Class::Ingest, Class::Query];

    /// Stable lowercase name used in telemetry metric names.
    pub fn name(self) -> &'static str {
        match self {
            Class::Ingest => "ingest",
            Class::Query => "query",
        }
    }

    pub(crate) fn idx(self) -> usize {
        match self {
            Class::Ingest => 0,
            Class::Query => 1,
        }
    }
}

/// One client request, self-contained so a worker thread can execute it
/// against the shared [`Ada`] without further input from the client.
#[derive(Debug)]
pub enum Request {
    /// Whole-buffer ingest of a `(pdb, xtc)` pair or a synthetic spec.
    Ingest {
        /// Logical dataset name to create.
        dataset: String,
        /// The data to ingest.
        input: IngestInput,
    },
    /// Streaming (batched, memory-bounded) ingest of real bytes.
    IngestStreaming {
        /// Logical dataset name to create.
        dataset: String,
        /// `.pdb` contents.
        pdb_text: String,
        /// `.xtc` contents.
        xtc_bytes: Vec<u8>,
        /// Frames per pipeline batch.
        batch_frames: usize,
    },
    /// Tag-aware (or full-frame, when `tag` is `None`) retrieval.
    Query {
        /// Logical dataset to read.
        dataset: String,
        /// Active-data tag, or `None` for the full-frame baseline path.
        tag: Option<Tag>,
    },
    /// Strided frame-range retrieval of one tag (the ML-sampling read
    /// path); served through the decoded-dropping cache when enabled.
    QueryRange {
        /// Logical dataset to read.
        dataset: String,
        /// Active-data tag the range is drawn from.
        tag: Tag,
        /// First frame (inclusive).
        start: usize,
        /// End of the window (exclusive).
        end: usize,
        /// Keep every `stride`-th frame of the window.
        stride: usize,
    },
}

impl Request {
    /// Which admission class this request competes in.
    pub fn class(&self) -> Class {
        match self {
            Request::Ingest { .. } | Request::IngestStreaming { .. } => Class::Ingest,
            Request::Query { .. } | Request::QueryRange { .. } => Class::Query,
        }
    }

    /// Stable lowercase operation name (trace/metric vocabulary).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ingest { .. } => "ingest",
            Request::IngestStreaming { .. } => "ingest_streaming",
            Request::Query { .. } => "query",
            Request::QueryRange { .. } => "query_range",
        }
    }

    /// Execute against the shared middleware. Runs on a worker thread
    /// after the scheduler granted a slot; `ctx` is the request's trace
    /// context, so the middleware's spans join the admission root's tree.
    pub(crate) fn execute(self, ada: &Ada, ctx: &TraceContext) -> Result<Reply, AdaError> {
        match self {
            Request::Ingest { dataset, input } => {
                ada.ingest_traced(&dataset, input, ctx).map(Reply::Ingest)
            }
            Request::IngestStreaming {
                dataset,
                pdb_text,
                xtc_bytes,
                batch_frames,
            } => ada
                .ingest_streaming_traced(&dataset, &pdb_text, &xtc_bytes, batch_frames, ctx)
                .map(Reply::Ingest),
            Request::Query { dataset, tag } => ada
                .query_traced(&dataset, tag.as_ref(), ctx)
                .map(Reply::Query),
            Request::QueryRange {
                dataset,
                tag,
                start,
                end,
                stride,
            } => ada
                .query_range_traced(&dataset, &tag, start..end, stride, ctx)
                .map(Reply::Query),
        }
    }
}

/// Successful response to a [`Request`].
#[derive(Debug)]
pub enum Reply {
    /// Report from either ingest flavor.
    Ingest(IngestReport),
    /// Report (with retrieved data) from a query.
    Query(QueryReport),
}

impl Reply {
    /// The query report, if this reply came from a query.
    pub fn into_query(self) -> Option<QueryReport> {
        match self {
            Reply::Query(r) => Some(r),
            Reply::Ingest(_) => None,
        }
    }

    /// The ingest report, if this reply came from an ingest.
    pub fn into_ingest(self) -> Option<IngestReport> {
        match self {
            Reply::Ingest(r) => Some(r),
            Reply::Query(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_stable() {
        assert_eq!(Class::Ingest.name(), "ingest");
        assert_eq!(Class::Query.name(), "query");
        assert_eq!(Class::ALL.len(), 2);
    }

    #[test]
    fn requests_map_to_classes() {
        let q = Request::Query {
            dataset: "d".into(),
            tag: None,
        };
        assert_eq!(q.class(), Class::Query);
        let r = Request::QueryRange {
            dataset: "d".into(),
            tag: Tag::protein(),
            start: 0,
            end: 8,
            stride: 2,
        };
        assert_eq!(r.class(), Class::Query);
        let i = Request::IngestStreaming {
            dataset: "d".into(),
            pdb_text: String::new(),
            xtc_bytes: Vec::new(),
            batch_frames: 4,
        };
        assert_eq!(i.class(), Class::Ingest);
    }
}
