//! Deterministic admission scheduler: the single-threaded state machine
//! under the front-end's lock.
//!
//! All policy lives here — bounded FIFO queues per class, slot limits,
//! deadline expiry, rejection accounting, retry-after estimation — and the
//! caller supplies every timestamp, so the whole machine is replayable:
//! the proptest suite drives it through random interleavings without any
//! real threads or clocks and checks the invariants exactly.

use std::collections::VecDeque;

use crate::request::Class;

/// Per-class lifetime counters. At quiescence (empty queue, nothing
/// running) they satisfy `submitted == admitted + rejected + expired` and
/// `completed == admitted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Requests offered to `submit`.
    pub submitted: u64,
    /// Requests that reached a slot and started executing.
    pub admitted: u64,
    /// Requests shed at submit time because the queue was full.
    pub rejected: u64,
    /// Requests whose deadline elapsed while queued.
    pub expired: u64,
    /// Requests that finished executing.
    pub completed: u64,
}

/// Why a submission was refused, with the data the typed error carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Requests already waiting when this one arrived.
    pub queue_depth: usize,
    /// Suggested back-off in nanoseconds.
    pub retry_after_ns: u64,
}

/// Outcome of a `pop`: either a job to run or one that died in the queue.
#[derive(Debug)]
pub enum Popped<T> {
    /// A slot was taken. Run the job, then call [`SchedulerCore::complete`].
    Start {
        /// Monotonic per-core admission id (FIFO within a class).
        id: u64,
        /// The queued payload.
        job: T,
        /// Nanoseconds the job waited in the queue.
        waited_ns: u64,
    },
    /// The deadline elapsed while the job waited; no slot was consumed.
    Expired {
        /// Monotonic per-core admission id.
        id: u64,
        /// The queued payload (so the caller can answer its client).
        job: T,
        /// Nanoseconds the job waited before being declared dead.
        waited_ns: u64,
        /// The relative deadline the job carried, in nanoseconds.
        deadline_ns: u64,
    },
}

#[derive(Debug)]
struct Queued<T> {
    id: u64,
    job: T,
    enqueued_ns: u64,
    /// Absolute expiry instant (queue-relative clock), if any.
    expires_ns: Option<u64>,
    /// The relative deadline, kept for the typed error.
    deadline_ns: u64,
}

#[derive(Debug)]
struct ClassState<T> {
    slots: usize,
    capacity: usize,
    queue: VecDeque<Queued<T>>,
    running: usize,
    queue_hwm: usize,
    counters: ClassCounters,
    service_ns_total: u64,
}

impl<T> ClassState<T> {
    fn new(slots: usize, capacity: usize) -> ClassState<T> {
        ClassState {
            slots: slots.max(1),
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            running: 0,
            queue_hwm: 0,
            counters: ClassCounters::default(),
            service_ns_total: 0,
        }
    }
}

/// The admission state machine. `T` is the queued payload; the threaded
/// front-end uses a job struct with a reply channel, the tests use plain
/// ids.
#[derive(Debug)]
pub struct SchedulerCore<T> {
    classes: [ClassState<T>; 2],
    retry_floor_ns: u64,
    next_id: u64,
}

impl<T> SchedulerCore<T> {
    /// Build a core with `(slots, queue capacity)` per class and a floor
    /// for the retry-after estimate.
    pub fn new(
        ingest: (usize, usize),
        query: (usize, usize),
        retry_floor_ns: u64,
    ) -> SchedulerCore<T> {
        SchedulerCore {
            classes: [
                ClassState::new(ingest.0, ingest.1),
                ClassState::new(query.0, query.1),
            ],
            retry_floor_ns: retry_floor_ns.max(1),
            next_id: 0,
        }
    }

    /// Offer a job. `deadline_ns` is relative to `now_ns`. Returns the
    /// admission id, or a [`Rejection`] if the class queue is full.
    pub fn submit(
        &mut self,
        class: Class,
        job: T,
        now_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<u64, Rejection> {
        let retry = self.retry_after_ns(class);
        let st = &mut self.classes[class.idx()];
        st.counters.submitted += 1;
        if st.queue.len() >= st.capacity {
            st.counters.rejected += 1;
            return Err(Rejection {
                queue_depth: st.queue.len(),
                retry_after_ns: retry,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let st = &mut self.classes[class.idx()];
        st.queue.push_back(Queued {
            id,
            job,
            enqueued_ns: now_ns,
            expires_ns: deadline_ns.map(|d| now_ns.saturating_add(d)),
            deadline_ns: deadline_ns.unwrap_or(0),
        });
        st.queue_hwm = st.queue_hwm.max(st.queue.len());
        Ok(id)
    }

    /// Take the oldest queued job of `class` if a slot is free. Expired
    /// jobs are reported (oldest first) without consuming a slot; a
    /// `Start` consumes a slot that [`SchedulerCore::complete`] releases.
    pub fn pop(&mut self, class: Class, now_ns: u64) -> Option<Popped<T>> {
        let st = &mut self.classes[class.idx()];
        if st.running >= st.slots {
            return None;
        }
        let q = st.queue.pop_front()?;
        let waited_ns = now_ns.saturating_sub(q.enqueued_ns);
        if q.expires_ns.is_some_and(|t| now_ns > t) {
            st.counters.expired += 1;
            return Some(Popped::Expired {
                id: q.id,
                job: q.job,
                waited_ns,
                deadline_ns: q.deadline_ns,
            });
        }
        st.running += 1;
        st.counters.admitted += 1;
        Some(Popped::Start {
            id: q.id,
            job: q.job,
            waited_ns,
        })
    }

    /// Release the slot a `Start` consumed and record its service time,
    /// which feeds the retry-after estimate.
    pub fn complete(&mut self, class: Class, service_ns: u64) {
        let st = &mut self.classes[class.idx()];
        st.running = st.running.saturating_sub(1);
        st.counters.completed += 1;
        st.service_ns_total = st.service_ns_total.saturating_add(service_ns);
    }

    /// Back-off hint for a rejected client: mean observed service time ×
    /// (queue depth / slots), floored so early rejections (no completions
    /// yet) still carry a usable hint.
    pub fn retry_after_ns(&self, class: Class) -> u64 {
        let st = &self.classes[class.idx()];
        let mean = st
            .service_ns_total
            .checked_div(st.counters.completed)
            .unwrap_or(0);
        let backlog = (st.queue.len() as u64 / st.slots as u64).max(1);
        mean.saturating_mul(backlog).max(self.retry_floor_ns)
    }

    /// Current queue depth for `class`.
    pub fn queue_depth(&self, class: Class) -> usize {
        self.classes[class.idx()].queue.len()
    }

    /// Highest queue depth ever observed for `class`.
    pub fn queue_hwm(&self, class: Class) -> usize {
        self.classes[class.idx()].queue_hwm
    }

    /// Jobs of `class` currently holding a slot.
    pub fn running(&self, class: Class) -> usize {
        self.classes[class.idx()].running
    }

    /// Configured slot limit for `class`.
    pub fn slots(&self, class: Class) -> usize {
        self.classes[class.idx()].slots
    }

    /// Lifetime counters for `class`.
    pub fn counters(&self, class: Class) -> ClassCounters {
        self.classes[class.idx()].counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> SchedulerCore<u32> {
        SchedulerCore::new((1, 2), (2, 3), 1_000)
    }

    #[test]
    fn fifo_within_class_and_slot_limit() {
        let mut c = core();
        for i in 0..3 {
            c.submit(Class::Query, i, 0, None).unwrap();
        }
        let a = c.pop(Class::Query, 10).unwrap();
        let b = c.pop(Class::Query, 10).unwrap();
        let (ia, ib) = match (a, b) {
            (Popped::Start { id: ia, .. }, Popped::Start { id: ib, .. }) => (ia, ib),
            _ => panic!("expected two starts"),
        };
        assert!(ia < ib, "FIFO violated");
        assert_eq!(c.running(Class::Query), 2);
        // Both slots taken: third job must wait.
        assert!(c.pop(Class::Query, 10).is_none());
        c.complete(Class::Query, 5);
        assert!(matches!(
            c.pop(Class::Query, 20),
            Some(Popped::Start { .. })
        ));
    }

    #[test]
    fn full_queue_rejects_with_depth_and_retry_hint() {
        let mut c = core();
        c.submit(Class::Ingest, 0, 0, None).unwrap();
        c.submit(Class::Ingest, 1, 0, None).unwrap();
        let rej = c.submit(Class::Ingest, 2, 0, None).unwrap_err();
        assert_eq!(rej.queue_depth, 2);
        assert!(rej.retry_after_ns >= 1_000, "floor applies pre-completion");
        let n = c.counters(Class::Ingest);
        assert_eq!((n.submitted, n.rejected), (3, 1));
    }

    #[test]
    fn deadline_expires_in_queue_without_consuming_a_slot() {
        let mut c = core();
        c.submit(Class::Query, 7, 100, Some(50)).unwrap();
        match c.pop(Class::Query, 200) {
            Some(Popped::Expired {
                job,
                waited_ns,
                deadline_ns,
                ..
            }) => {
                assert_eq!(job, 7);
                assert_eq!(waited_ns, 100);
                assert_eq!(deadline_ns, 50);
            }
            other => panic!("expected expiry, got {:?}", other),
        }
        assert_eq!(c.running(Class::Query), 0);
        assert_eq!(c.counters(Class::Query).expired, 1);
    }

    #[test]
    fn deadline_met_when_popped_in_time() {
        let mut c = core();
        c.submit(Class::Query, 7, 100, Some(50)).unwrap();
        assert!(matches!(
            c.pop(Class::Query, 140),
            Some(Popped::Start { .. })
        ));
    }

    #[test]
    fn retry_after_tracks_mean_service_time() {
        let mut c = core();
        c.submit(Class::Query, 0, 0, None).unwrap();
        assert!(matches!(c.pop(Class::Query, 0), Some(Popped::Start { .. })));
        c.complete(Class::Query, 80_000);
        assert_eq!(c.retry_after_ns(Class::Query), 80_000);
    }

    #[test]
    fn classes_are_independent() {
        let mut c = core();
        c.submit(Class::Ingest, 0, 0, None).unwrap();
        c.submit(Class::Query, 1, 0, None).unwrap();
        assert!(matches!(
            c.pop(Class::Ingest, 1),
            Some(Popped::Start { .. })
        ));
        assert_eq!(c.running(Class::Query), 0);
        assert_eq!(c.queue_depth(Class::Query), 1);
    }
}
