//! Integrating power meter.
//!
//! The paper measures wall power with a Modbus PDU and reports total energy
//! per VMD process window (Fig. 10d). This meter integrates the same way:
//! each phase contributes `watts × virtual seconds`, attributed to a named
//! component so reports can break energy down.

use crate::SimDuration;
use std::collections::BTreeMap;

/// Accumulating energy meter.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    joules_by_component: BTreeMap<String, f64>,
}

impl EnergyMeter {
    /// New meter at zero.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Accumulate `watts` drawn by `component` for `duration`.
    pub fn accumulate(&mut self, component: &str, watts: f64, duration: SimDuration) {
        assert!(watts >= 0.0, "negative power");
        *self
            .joules_by_component
            .entry(component.to_string())
            .or_insert(0.0) += watts * duration.as_secs_f64();
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.joules_by_component.values().sum()
    }

    /// Total energy in kilojoules (the unit of Fig. 10d).
    pub fn total_kilojoules(&self) -> f64 {
        self.total_joules() / 1e3
    }

    /// Joules attributed to one component.
    pub fn joules_of(&self, component: &str) -> f64 {
        self.joules_by_component
            .get(component)
            .copied()
            .unwrap_or(0.0)
    }

    /// Component → joules breakdown.
    pub fn breakdown(&self) -> &BTreeMap<String, f64> {
        &self.joules_by_component
    }

    /// Merge another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (k, v) in &other.joules_by_component {
            *self.joules_by_component.entry(k.clone()).or_insert(0.0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_breakdown() {
        let mut m = EnergyMeter::new();
        m.accumulate("cpu", 100.0, SimDuration::from_secs_f64(10.0));
        m.accumulate("disk", 7.0, SimDuration::from_secs_f64(10.0));
        m.accumulate("cpu", 50.0, SimDuration::from_secs_f64(2.0));
        assert!((m.total_joules() - 1170.0).abs() < 1e-9);
        assert!((m.joules_of("cpu") - 1100.0).abs() < 1e-9);
        assert!((m.total_kilojoules() - 1.17).abs() < 1e-12);
        assert_eq!(m.joules_of("nonesuch"), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyMeter::new();
        a.accumulate("cpu", 10.0, SimDuration::from_secs_f64(1.0));
        let mut b = EnergyMeter::new();
        b.accumulate("cpu", 5.0, SimDuration::from_secs_f64(2.0));
        b.accumulate("net", 1.0, SimDuration::from_secs_f64(1.0));
        a.merge(&b);
        assert!((a.joules_of("cpu") - 20.0).abs() < 1e-9);
        assert!((a.joules_of("net") - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn negative_power_rejected() {
        EnergyMeter::new().accumulate("x", -1.0, SimDuration::from_secs_f64(1.0));
    }
}
