//! Block device models.
//!
//! A device is characterized by an access (seek/queue) latency, sequential
//! read/write bandwidth, and power draw per state. Operation costs are
//! `latency + bytes/bandwidth`; callers aggregate durations onto the shared
//! [`SimClock`](crate::SimClock) as serial or parallel composition demands.

use crate::SimDuration;

/// Static parameters of a device class.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable model name.
    pub name: String,
    /// Per-operation access latency in seconds (seek + controller).
    pub access_latency_s: f64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Power while reading/writing, watts.
    pub active_power_w: f64,
    /// Idle power, watts.
    pub idle_power_w: f64,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl DeviceProfile {
    /// Western Digital 1 TB SATA HDD (Table 4: 126 MB/s max transfer).
    pub fn wd_hdd_1tb() -> DeviceProfile {
        DeviceProfile {
            name: "WD 1TB HDD (SATA)".into(),
            access_latency_s: 8.5e-3,
            read_bw: 126.0e6,
            write_bw: 120.0e6,
            active_power_w: 6.8,
            idle_power_w: 3.7,
            capacity: 1_000_000_000_000,
        }
    }

    /// Plextor 256 GB PCIe SSD (Table 4: 3000 MB/s read, 1000 MB/s write).
    pub fn plextor_ssd_256gb() -> DeviceProfile {
        DeviceProfile {
            name: "Plextor 256GB SSD (PCI-e)".into(),
            access_latency_s: 60.0e-6,
            read_bw: 3_000.0e6,
            write_bw: 1_000.0e6,
            active_power_w: 5.5,
            idle_power_w: 0.6,
            capacity: 256_000_000_000,
        }
    }

    /// 256 GB NVMe SSD of the §4.1 SSD server (same class as the Plextor).
    pub fn nvme_ssd_256gb() -> DeviceProfile {
        DeviceProfile {
            name: "256GB NVMe SSD".into(),
            access_latency_s: 20.0e-6,
            read_bw: 3_000.0e6,
            write_bw: 1_000.0e6,
            active_power_w: 6.0,
            idle_power_w: 0.5,
            capacity: 256_000_000_000,
        }
    }

    /// Time to read `bytes` sequentially.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.access_latency_s + bytes as f64 / self.read_bw)
    }

    /// Time to write `bytes` sequentially.
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.access_latency_s + bytes as f64 / self.write_bw)
    }
}

/// A stateful device: a profile plus usage counters for utilization and
/// energy reporting.
#[derive(Debug, Clone)]
pub struct Device {
    /// Device class parameters.
    pub profile: DeviceProfile,
    bytes_read: u64,
    bytes_written: u64,
    busy: SimDuration,
}

impl Device {
    /// New idle device.
    pub fn new(profile: DeviceProfile) -> Device {
        Device {
            profile,
            bytes_read: 0,
            bytes_written: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Charge a sequential read; returns its duration.
    pub fn read(&mut self, bytes: u64) -> SimDuration {
        let d = self.profile.read_time(bytes);
        self.bytes_read += bytes;
        self.busy += d;
        d
    }

    /// Charge a sequential write; returns its duration.
    pub fn write(&mut self, bytes: u64) -> SimDuration {
        let d = self.profile.write_time(bytes);
        self.bytes_written += bytes;
        self.busy += d;
        d
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Energy consumed over a window of `wall` virtual time, assuming the
    /// device was active for its busy time and idle otherwise.
    pub fn energy_joules(&self, wall: SimDuration) -> f64 {
        let busy = self.busy.as_secs_f64().min(wall.as_secs_f64());
        let idle = (wall.as_secs_f64() - busy).max(0.0);
        busy * self.profile.active_power_w + idle * self.profile.idle_power_w
    }
}

/// A RAID-50 array: striped groups of RAID-5 sets (Table 5: ten 1 TB WD
/// HDDs). Reads stripe across all data disks; writes pay a parity factor.
#[derive(Debug, Clone)]
pub struct Raid50 {
    /// Member-disk profile.
    pub member: DeviceProfile,
    /// Number of RAID-5 groups.
    pub groups: usize,
    /// Disks per group (including one parity disk each).
    pub disks_per_group: usize,
    bytes_read: u64,
    bytes_written: u64,
    busy: SimDuration,
}

impl Raid50 {
    /// The paper's fat-node array: 10 × WD 1 TB in RAID 50 (2 groups × 5).
    pub fn fatnode_array() -> Raid50 {
        Raid50::new(DeviceProfile::wd_hdd_1tb(), 2, 5)
    }

    /// Array of `groups` RAID-5 groups of `disks_per_group` member disks.
    pub fn new(member: DeviceProfile, groups: usize, disks_per_group: usize) -> Raid50 {
        assert!(groups >= 1 && disks_per_group >= 3);
        Raid50 {
            member,
            groups,
            disks_per_group,
            bytes_read: 0,
            bytes_written: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Total member disks.
    pub fn disks(&self) -> usize {
        self.groups * self.disks_per_group
    }

    /// Data-bearing disks (one parity per group).
    pub fn data_disks(&self) -> usize {
        self.groups * (self.disks_per_group - 1)
    }

    /// Aggregate sequential read bandwidth.
    pub fn read_bw(&self) -> f64 {
        self.member.read_bw * self.data_disks() as f64
    }

    /// Aggregate sequential write bandwidth (RAID-5 streaming writes keep
    /// parity generation off the critical path but still lose the parity
    /// disk's bandwidth).
    pub fn write_bw(&self) -> f64 {
        self.member.write_bw * self.data_disks() as f64 * 0.85
    }

    /// Charge a striped read.
    pub fn read(&mut self, bytes: u64) -> SimDuration {
        let d = SimDuration::from_secs_f64(
            self.member.access_latency_s + bytes as f64 / self.read_bw(),
        );
        self.bytes_read += bytes;
        self.busy += d;
        d
    }

    /// Charge a striped write.
    pub fn write(&mut self, bytes: u64) -> SimDuration {
        let d = SimDuration::from_secs_f64(
            self.member.access_latency_s + bytes as f64 / self.write_bw(),
        );
        self.bytes_written += bytes;
        self.busy += d;
        d
    }

    /// Array power while active (all member disks spinning + seeking).
    pub fn active_power_w(&self) -> f64 {
        self.member.active_power_w * self.disks() as f64
    }

    /// Array idle power.
    pub fn idle_power_w(&self) -> f64 {
        self.member.idle_power_w * self.disks() as f64
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_read_time_dominated_by_bandwidth() {
        let hdd = DeviceProfile::wd_hdd_1tb();
        // 126 MB at 126 MB/s ≈ 1 s + seek.
        let t = hdd.read_time(126_000_000).as_secs_f64();
        assert!((t - 1.0085).abs() < 1e-3, "t = {}", t);
    }

    #[test]
    fn ssd_much_faster_than_hdd() {
        let hdd = DeviceProfile::wd_hdd_1tb();
        let ssd = DeviceProfile::plextor_ssd_256gb();
        let bytes = 1_000_000_000;
        let ratio = hdd.read_time(bytes).as_secs_f64() / ssd.read_time(bytes).as_secs_f64();
        // 3000/126 ≈ 23.8x on pure bandwidth.
        assert!(ratio > 20.0 && ratio < 26.0, "ratio {}", ratio);
    }

    #[test]
    fn device_counters() {
        let mut d = Device::new(DeviceProfile::nvme_ssd_256gb());
        let r = d.read(3_000_000_000);
        assert!((r.as_secs_f64() - 1.0).abs() < 0.01);
        d.write(1_000_000_000);
        assert_eq!(d.bytes_read(), 3_000_000_000);
        assert_eq!(d.bytes_written(), 1_000_000_000);
        assert!(d.busy_time().as_secs_f64() > 1.9);
    }

    #[test]
    fn device_energy_split() {
        let mut d = Device::new(DeviceProfile::wd_hdd_1tb());
        d.read(126_000_000); // ~1 s busy
        let e = d.energy_joules(SimDuration::from_secs_f64(10.0));
        // ~1 s × 6.8 W + ~9 s × 3.7 W ≈ 40.2 J.
        assert!((e - 40.2).abs() < 0.5, "energy {}", e);
    }

    #[test]
    fn raid50_geometry() {
        let arr = Raid50::fatnode_array();
        assert_eq!(arr.disks(), 10);
        assert_eq!(arr.data_disks(), 8);
        // 8 × 126 MB/s ≈ 1 GB/s aggregate read.
        assert!((arr.read_bw() - 1_008.0e6).abs() < 1.0);
    }

    #[test]
    fn raid50_read_beats_single_disk() {
        let mut arr = Raid50::fatnode_array();
        let mut disk = Device::new(DeviceProfile::wd_hdd_1tb());
        let bytes = 10_000_000_000;
        let ratio = disk.read(bytes).as_secs_f64() / arr.read(bytes).as_secs_f64();
        assert!(ratio > 7.5 && ratio < 8.5, "ratio {}", ratio);
    }

    #[test]
    #[should_panic]
    fn raid_needs_three_disks_per_group() {
        Raid50::new(DeviceProfile::wd_hdd_1tb(), 2, 2);
    }
}
