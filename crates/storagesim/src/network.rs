//! Network links between nodes.
//!
//! The paper's cluster moves data over "a high-performance network
//! architecture like InfiniBand" (§2.2). A link is latency + bandwidth;
//! transfers cost `latency + bytes/bandwidth`.

use crate::SimDuration;

/// A point-to-point network link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Name for reports.
    pub name: String,
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl Link {
    /// InfiniBand FDR-class fabric (~56 Gb/s, ~1.5 µs).
    pub fn infiniband() -> Link {
        Link {
            name: "InfiniBand FDR".into(),
            latency_s: 1.5e-6,
            bandwidth: 7.0e9,
        }
    }

    /// Gigabit Ethernet.
    pub fn gige() -> Link {
        Link {
            name: "1 GbE".into(),
            latency_s: 50.0e-6,
            bandwidth: 125.0e6,
        }
    }

    /// 10-Gigabit Ethernet.
    pub fn tenge() -> Link {
        Link {
            name: "10 GbE".into(),
            latency_s: 10.0e-6,
            bandwidth: 1.25e9,
        }
    }

    /// A loop-back "link" for single-node platforms (no network cost).
    pub fn local() -> Link {
        Link {
            name: "local".into(),
            latency_s: 0.0,
            bandwidth: f64::INFINITY,
        }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth.is_infinite() {
            return SimDuration::from_secs_f64(self.latency_s);
        }
        SimDuration::from_secs_f64(self.latency_s + bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infiniband_fast() {
        let l = Link::infiniband();
        // 7 GB over 7 GB/s ≈ 1 s.
        let t = l.transfer_time(7_000_000_000).as_secs_f64();
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn local_link_is_free() {
        let l = Link::local();
        assert_eq!(l.transfer_time(u64::MAX), SimDuration::ZERO);
    }

    #[test]
    fn gige_much_slower_than_ib() {
        let bytes = 1_000_000_000;
        let ratio = Link::gige().transfer_time(bytes).as_secs_f64()
            / Link::infiniband().transfer_time(bytes).as_secs_f64();
        assert!(ratio > 40.0, "ratio {}", ratio);
    }

    #[test]
    fn latency_only_for_zero_bytes() {
        let l = Link::tenge();
        assert!((l.transfer_time(0).as_secs_f64() - 10.0e-6).abs() < 1e-12);
    }
}
