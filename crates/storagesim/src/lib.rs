#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-storagesim — virtual-time storage / CPU / memory / energy simulator
//!
//! The paper evaluates ADA on three physical platforms (an NVMe SSD server,
//! a nine-node OrangeFS cluster with WD HDDs and Plextor SSDs, and a 1 TB
//! fat-node with a RAID-50 HDD array). This crate provides the device-level
//! substrate those platforms are assembled from:
//!
//! * a [`SimClock`] — shared virtual nanosecond counter; every modelled
//!   operation *charges* time to it instead of sleeping;
//! * [`device`] — block devices parameterized by seek latency and
//!   sequential bandwidth, with presets for the exact hardware in Tables 4
//!   and 5 (WD 1 TB HDD @126 MB/s, Plextor 256 GB SSD @3000/1000 MB/s,
//!   RAID-50 of ten HDDs);
//! * [`network`] — links with latency + bandwidth (InfiniBand-class and
//!   GigE presets);
//! * [`cpu`] — a throughput CPU model (decompression, scanning, rendering
//!   rates per core) with presets for the two Xeons the paper uses;
//! * [`memory`] — a capacity-limited tracker that reproduces the paper's
//!   OOM kills ("both XFS and ADA (all) are killed by the system due to
//!   memory shortage");
//! * [`energy`] — an integrating power meter (component watts × virtual
//!   seconds → joules), the Fig. 10d instrument.
//!
//! Everything is deterministic: same inputs → same virtual timings.

pub mod cpu;
pub mod device;
pub mod energy;
pub mod memory;
pub mod network;

pub use cpu::{CpuProfile, CpuWork};
pub use device::{Device, DeviceProfile, Raid50};
pub use energy::EnergyMeter;
pub use memory::{MemoryTracker, OomKilled};
pub use network::Link;

use parking_lot::Mutex;
use std::sync::Arc;

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u128);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From fractional seconds (rounds to whole nanoseconds).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {}", s);
        SimDuration((s * 1e9).round() as u128)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating sum.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Element-wise max (parallel composition: overlapping operations cost
    /// the longest one).
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// An instant of virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimInstant(pub u128);

impl SimInstant {
    /// Duration since an earlier instant (panics if `earlier` is later).
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

/// Shared virtual clock. Cloning shares the underlying counter.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<Mutex<u128>>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant(*self.now_ns.lock())
    }

    /// Advance by `d`, returning the new now.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let mut g = self.now_ns.lock();
        *g += d.0;
        SimInstant(*g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.0, 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration(100);
        let b = SimDuration(250);
        assert_eq!(a + b, SimDuration(350));
        assert_eq!(a.max(b), b);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total, SimDuration(450));
    }

    #[test]
    fn clock_advances_and_is_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        let t0 = c.now();
        c.advance(SimDuration::from_secs_f64(2.0));
        assert_eq!(c2.now().since(t0).as_secs_f64(), 2.0);
    }
}
