//! Throughput CPU model.
//!
//! The simulator charges CPU phases by calibrated throughputs rather than
//! executing the real kernels at TB scale. The decompression rate is the
//! load-bearing constant: the paper's own numbers (≈400 minutes to retrieve
//! and render 1,564,000 frames ≈ 816 GB of raw data on the fat node, with
//! retrieval under 10 % of it) put VMD's effective single-threaded
//! xdr3dfcoord decompression near **30 MB/s of decompressed output** on
//! these Xeons — decompression dominates, which is exactly Fig. 8's claim.
//! `ada-bench` measures this repo's real codec throughput separately; the
//! simulator intentionally uses the paper-calibrated figure so the
//! reproduced curves match the published hardware.

use crate::SimDuration;

/// CPU parameters of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuProfile {
    /// Marketing name.
    pub name: String,
    /// Physical cores.
    pub cores: usize,
    /// Base clock in GHz (reporting only).
    pub clock_ghz: f64,
    /// Single-thread XTC decompression rate, bytes of *output* per second.
    pub decompress_output_bps: f64,
    /// Single-thread scan/filter rate (bytes inspected per second).
    pub scan_bps: f64,
    /// Aggregate rendering rate (bytes of delivered frame data turned into
    /// 3D geometry per second; VMD's rendering pipeline saturates well
    /// below memory bandwidth).
    pub render_bps: f64,
    /// Single-thread categorizer rate for PDB analysis (bytes/second).
    pub categorize_bps: f64,
    /// Idle power of the whole node, watts.
    pub idle_power_w: f64,
    /// Additional power per busy core, watts.
    pub core_active_w: f64,
}

impl CpuProfile {
    /// Intel Xeon E5-2603 v4 @1.70 GHz (SSD server and cluster nodes,
    /// Tables in §4.1/§4.2).
    pub fn xeon_e5_2603_v4() -> CpuProfile {
        CpuProfile {
            name: "Intel Xeon E5-2603 v4 @1.70GHz".into(),
            cores: 6,
            clock_ghz: 1.7,
            decompress_output_bps: 28.6e6,
            scan_bps: 500.0e6,
            render_bps: 150.0e6,
            categorize_bps: 200.0e6,
            idle_power_w: 80.0,
            core_active_w: 12.0,
        }
    }

    /// 4 × Intel Xeon E7-4820 v3 @1.90 GHz, 40 cores (fat node, Table 5).
    pub fn xeon_e7_4820_v3_quad() -> CpuProfile {
        CpuProfile {
            name: "4x Intel Xeon E7-4820 v3 @1.90GHz".into(),
            cores: 40,
            clock_ghz: 1.9,
            decompress_output_bps: 28.6e6,
            scan_bps: 500.0e6,
            render_bps: 150.0e6,
            categorize_bps: 200.0e6,
            idle_power_w: 250.0,
            core_active_w: 6.0,
        }
    }

    /// Power draw with `busy_cores` cores active.
    pub fn power_w(&self, busy_cores: usize) -> f64 {
        self.idle_power_w + self.core_active_w * busy_cores.min(self.cores) as f64
    }
}

/// A unit of CPU work charged to the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuWork {
    /// XTC decompression producing `out_bytes` of raw data (single thread —
    /// VMD's reader is sequential, and so is the format).
    Decompress {
        /// Decompressed output volume.
        out_bytes: u64,
    },
    /// Linear scan / filtering over `bytes` (single thread).
    Scan {
        /// Bytes inspected.
        bytes: u64,
    },
    /// Rendering `bytes` of delivered frame data into geometry
    /// (node-aggregate rate; all cores considered busy for power).
    Render {
        /// Frame bytes rendered.
        bytes: u64,
    },
    /// Categorizer pass over a structure file of `bytes` (single thread).
    Categorize {
        /// Structure-file bytes analyzed.
        bytes: u64,
    },
}

impl CpuWork {
    /// Virtual time this work takes on `cpu`.
    pub fn duration(&self, cpu: &CpuProfile) -> SimDuration {
        let secs = match *self {
            CpuWork::Decompress { out_bytes } => out_bytes as f64 / cpu.decompress_output_bps,
            CpuWork::Scan { bytes } => bytes as f64 / cpu.scan_bps,
            CpuWork::Render { bytes } => bytes as f64 / cpu.render_bps,
            CpuWork::Categorize { bytes } => bytes as f64 / cpu.categorize_bps,
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Cores kept busy by this work (for power accounting).
    pub fn busy_cores(&self, cpu: &CpuProfile) -> usize {
        match self {
            CpuWork::Decompress { .. } | CpuWork::Scan { .. } | CpuWork::Categorize { .. } => 1,
            CpuWork::Render { .. } => cpu.cores,
        }
    }

    /// Power drawn while this work runs.
    pub fn power_w(&self, cpu: &CpuProfile) -> f64 {
        cpu.power_w(self.busy_cores(cpu))
    }

    /// Energy in joules for this work on `cpu`.
    pub fn energy_joules(&self, cpu: &CpuProfile) -> f64 {
        self.duration(cpu).as_secs_f64() * self.power_w(cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompression_dominates_render() {
        // The Fig. 8 structure: for the same delivered volume decompression
        // takes ~5x the render time.
        let cpu = CpuProfile::xeon_e5_2603_v4();
        let d = CpuWork::Decompress {
            out_bytes: 1_000_000_000,
        }
        .duration(&cpu);
        let r = CpuWork::Render {
            bytes: 1_000_000_000,
        }
        .duration(&cpu);
        let ratio = d.as_secs_f64() / r.as_secs_f64();
        assert!(ratio > 4.0 && ratio < 7.0, "ratio {}", ratio);
    }

    #[test]
    fn fat_node_400_minute_anchor() {
        // ~816.5 GB raw decompressed at the calibrated rate ≈ 7.9 h of CPU;
        // the paper reports "around 400 minutes" for the full turnaround of
        // 1,564,000 frames. Same order, decompression-dominated.
        let cpu = CpuProfile::xeon_e7_4820_v3_quad();
        let d = CpuWork::Decompress {
            out_bytes: 816_500_000_000,
        }
        .duration(&cpu)
        .as_secs_f64();
        let minutes = d / 60.0;
        assert!(minutes > 300.0 && minutes < 600.0, "{} min", minutes);
    }

    #[test]
    fn power_model() {
        let cpu = CpuProfile::xeon_e5_2603_v4();
        assert_eq!(cpu.power_w(0), 80.0);
        assert_eq!(cpu.power_w(1), 92.0);
        assert_eq!(cpu.power_w(6), 152.0);
        // Clamped at core count.
        assert_eq!(cpu.power_w(100), 152.0);
    }

    #[test]
    fn render_uses_all_cores_for_power() {
        let cpu = CpuProfile::xeon_e7_4820_v3_quad();
        let w = CpuWork::Render { bytes: 1 };
        assert_eq!(w.busy_cores(&cpu), 40);
        assert_eq!(w.power_w(&cpu), 250.0 + 240.0);
        let d = CpuWork::Decompress { out_bytes: 1 };
        assert_eq!(d.busy_cores(&cpu), 1);
    }

    #[test]
    fn energy_is_power_times_time() {
        let cpu = CpuProfile::xeon_e5_2603_v4();
        let w = CpuWork::Scan { bytes: 500_000_000 }; // 1 s
        let e = w.energy_joules(&cpu);
        assert!((e - 92.0).abs() < 0.5, "energy {}", e);
    }
}
