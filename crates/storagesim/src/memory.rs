//! Capacity-limited memory accounting with OOM kills.
//!
//! §4.3: "both XFS and ADA (all) are killed by the system due to memory
//! shortage when VMD is trying to render 1,876,800 frames" — the tracker
//! reproduces that behaviour: allocations are labelled, the peak is
//! recorded, and exceeding capacity returns [`OomKilled`] (the simulated
//! kernel OOM killer).

use std::collections::BTreeMap;

/// The simulated OOM killer fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomKilled {
    /// Allocation label that pushed usage over the limit.
    pub label: String,
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Usage at the time of the request.
    pub in_use: u64,
    /// Capacity of the node.
    pub capacity: u64,
}

impl std::fmt::Display for OomKilled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "killed by OOM: '{}' requested {} B with {} B in use of {} B",
            self.label, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomKilled {}

/// Byte-granular memory tracker for one node.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
    ledger: BTreeMap<String, u64>,
}

impl MemoryTracker {
    /// Tracker for a node with `capacity` bytes of DRAM.
    pub fn new(capacity: u64) -> MemoryTracker {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
            ledger: BTreeMap::new(),
        }
    }

    /// Node capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocate `bytes` under `label` (labels accumulate).
    pub fn alloc(&mut self, label: &str, bytes: u64) -> Result<(), OomKilled> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            return Err(OomKilled {
                label: label.to_string(),
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        *self.ledger.entry(label.to_string()).or_insert(0) += bytes;
        Ok(())
    }

    /// Free up to the allocated amount under `label`.
    pub fn free(&mut self, label: &str, bytes: u64) {
        let entry = self.ledger.entry(label.to_string()).or_insert(0);
        let freed = bytes.min(*entry);
        *entry -= freed;
        if *entry == 0 {
            self.ledger.remove(label);
        }
        self.in_use -= freed;
    }

    /// Free everything under `label`.
    pub fn free_all(&mut self, label: &str) {
        if let Some(bytes) = self.ledger.remove(label) {
            self.in_use -= bytes;
        }
    }

    /// Bytes currently held under `label`.
    pub fn held(&self, label: &str) -> u64 {
        self.ledger.get(label).copied().unwrap_or(0)
    }

    /// Snapshot of the ledger (label → bytes).
    pub fn ledger(&self) -> &BTreeMap<String, u64> {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_peak() {
        let mut m = MemoryTracker::new(1000);
        m.alloc("compressed", 300).unwrap();
        m.alloc("raw", 500).unwrap();
        assert_eq!(m.in_use(), 800);
        m.free("compressed", 300);
        assert_eq!(m.in_use(), 500);
        assert_eq!(m.peak(), 800);
        assert_eq!(m.held("raw"), 500);
        assert_eq!(m.held("compressed"), 0);
    }

    #[test]
    fn oom_kill_fires_at_capacity() {
        let mut m = MemoryTracker::new(1000);
        m.alloc("raw", 900).unwrap();
        let err = m.alloc("frames", 200).unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.in_use, 900);
        assert_eq!(err.capacity, 1000);
        // Failed allocation does not change usage.
        assert_eq!(m.in_use(), 900);
    }

    #[test]
    fn exact_fit_allowed() {
        let mut m = MemoryTracker::new(1000);
        assert!(m.alloc("x", 1000).is_ok());
        assert!(m.alloc("y", 1).is_err());
    }

    #[test]
    fn over_free_is_clamped() {
        let mut m = MemoryTracker::new(100);
        m.alloc("a", 50).unwrap();
        m.free("a", 80);
        assert_eq!(m.in_use(), 0);
        m.free("never-allocated", 10);
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn labels_accumulate() {
        let mut m = MemoryTracker::new(1000);
        m.alloc("frames", 100).unwrap();
        m.alloc("frames", 150).unwrap();
        assert_eq!(m.held("frames"), 250);
        m.free_all("frames");
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn fat_node_kill_points() {
        // The paper's 1,007 GB node: raw data of 1,876,800 frames (979.8 GB)
        // plus a ~3.2% render working set must die; 4,379,200-frame protein
        // subset (970.2 GB + 3.2%) must survive.
        let gb = 1_000_000_000u64;
        let mut m = MemoryTracker::new(1007 * gb);
        let raw = (979.8 * gb as f64) as u64;
        let overhead = (raw as f64 * 0.032) as u64;
        m.alloc("frames", raw).unwrap();
        assert!(m.alloc("render", overhead).is_err(), "XFS should be killed");

        let mut m2 = MemoryTracker::new(1007 * gb);
        let protein = (970.2 * gb as f64) as u64;
        let overhead2 = (protein as f64 * 0.032) as u64;
        m2.alloc("frames", protein).unwrap();
        assert!(
            m2.alloc("render", overhead2).is_ok(),
            "ADA(protein) at 4,379,200 frames should survive"
        );
    }
}
