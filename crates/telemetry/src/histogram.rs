//! Log-bucketed concurrent histogram.
//!
//! Values (latencies in ns, sizes in bytes) land in power-of-two buckets:
//! bucket 0 holds the value 0 and bucket `b ≥ 1` holds `[2^(b-1), 2^b)`.
//! Recording is one relaxed `fetch_add` into the bucket plus count/sum/
//! min/max updates — no locks, safe from any thread. Percentile readout
//! interpolates linearly inside the winning bucket, so uniform data read
//! back within one octave of error and data spanning octaves ranks
//! correctly.

use ada_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per `u64` octave.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket holding `v`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Exclusive upper bound of bucket `i` (saturating for the last octave).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 1,
        64 => u64::MAX,
        _ => 1u64 << i,
    }
}

/// A lock-free histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps beyond `u64::MAX`; irrelevant for the
    /// nanosecond/byte magnitudes this system records).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.min.load(Ordering::Relaxed)),
        }
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.max.load(Ordering::Relaxed)),
        }
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside the
    /// winning bucket and clamped to the observed min/max. Returns 0.0
    /// when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested sample, 1-based.
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                // Position of the rank inside this bucket, interpolated
                // as if samples were uniform across the octave (midpoint
                // rule, so a full bucket never reads back as its
                // exclusive upper bound).
                let frac = ((rank - cum) as f64 - 0.5) / c as f64;
                let v = lo + frac * (hi - lo);
                let min = self.min.load(Ordering::Relaxed) as f64;
                let max = self.max.load(Ordering::Relaxed) as f64;
                return v.clamp(min, max);
            }
            cum += c;
        }
        self.max.load(Ordering::Relaxed) as f64
    }

    /// Fold another histogram into this one (used when per-thread
    /// histograms merge into a shared one).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Point-in-time stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 90th percentile (interpolated).
    pub p90: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
}

impl HistogramSnapshot {
    /// JSON object with every stat.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("count", Value::num_u(self.count)),
            ("sum", Value::num_u(self.sum)),
            ("min", Value::num_u(self.min)),
            ("max", Value::num_u(self.max)),
            ("mean", Value::Num(self.mean)),
            ("p50", Value::Num(self.p50)),
            ("p90", Value::Num(self.p90)),
            ("p99", Value::Num(self.p99)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 is its own bucket; each octave [2^(b-1), 2^b) shares one.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..64 {
            // The lower bound of each bucket lands in it; one less lands
            // in the previous one.
            assert_eq!(bucket_index(bucket_lower(b)), b);
            assert_eq!(bucket_index(bucket_lower(b) - 1), b - 1);
            assert!(bucket_lower(b) < bucket_upper(b));
        }
    }

    #[test]
    fn count_sum_min_max_mean() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), 0.0);
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert!((h.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate_within_bucket() {
        // 512 samples uniformly covering one octave [512, 1024): the
        // interpolated median must sit near the middle of the octave.
        let h = Histogram::new();
        for v in 512u64..1024 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 768.0).abs() < 16.0, "p50 {}", p50);
        let p99 = h.quantile(0.99);
        assert!(p99 > 1000.0 && p99 <= 1024.0, "p99 {}", p99);
        // Quantiles are monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.9));
    }

    #[test]
    fn percentiles_rank_across_buckets() {
        // 90 fast samples and 10 slow ones: p50 stays in the fast octave,
        // p99 reports the slow one.
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert!(h.quantile(0.5) < 200.0);
        assert!(h.quantile(0.99) > 50_000.0);
        // Clamped to observations at the extremes.
        assert!(h.quantile(0.0) >= 100.0);
        assert!(h.quantile(1.0) <= 100_000.0);
    }

    #[test]
    fn zero_samples_have_their_own_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(1_000);
        assert_eq!(h.min(), Some(0));
        assert!(h.quantile(0.5) < 1.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [1_000u64, 2_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 3_006);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(2_000));
        assert!(a.quantile(0.99) > 900.0);
        // Merging an empty histogram changes nothing.
        let before = a.snapshot();
        a.merge_from(&Histogram::new());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn merge_matches_direct_recording() {
        // Merge-of-per-thread-buffers equivalence: recording values into
        // shards and merging equals recording them all into one.
        let direct = Histogram::new();
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for v in 0..1_000u64 {
            let v = v * 37 % 4096;
            direct.record(v);
            shards[(v % 4) as usize].record(v);
        }
        let merged = Histogram::new();
        for s in &shards {
            merged.merge_from(s);
        }
        assert_eq!(merged.snapshot(), direct.snapshot());
    }

    #[test]
    fn concurrent_records_none_lost() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }
}
