#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-telemetry — in-tree observability for the ADA middleware
//!
//! The ingest engine is a decoder→splitter→dispatcher pipeline, but until
//! now nothing could say *where* wall-time goes (the ROADMAP question: "is
//! decode, split, or dispatch the wall-clock ceiling?"). This crate is the
//! measurement substrate every layer shares, built so it can stay enabled
//! in hot loops:
//!
//! * a global, lock-free **metrics registry** ([`Registry`], [`global`]) of
//!   atomic [`Counter`]s, [`Gauge`]s (with high-water marks) and
//!   log-bucketed [`Histogram`]s with p50/p90/p99 readout. Registration
//!   takes a short lock once; the returned `Arc` handles touch only
//!   atomics, so per-event cost on the hot path is a relaxed
//!   `fetch_add`.
//! * a **span API** ([`span!`], [`span::SpanGuard`]) recording per-stage
//!   wall time, bytes, and frames into thread-local buffers that drain to
//!   the registry in batches (one registry lock per ~256 spans, not per
//!   span).
//! * **snapshot export**: [`Registry::snapshot`] → [`Snapshot::to_json`]
//!   via `ada-json`, consumed by `repro --metrics-out` and
//!   `repro profile-ingest`.
//! * **request tracing** ([`trace`]): per-request span *trees* with a
//!   propagatable [`TraceContext`], a bounded [`trace::FlightRecorder`]
//!   retaining slow/shed/errored traces, and Chrome trace-event export
//!   ([`trace::chrome_trace`]) for Perfetto — the per-request complement
//!   to the aggregate metrics above (DESIGN.md §13).
//!
//! Telemetry is on by default and globally switchable: [`set_enabled`]
//! flips an `AtomicBool` that span creation and the instrumented call
//! sites check first, so a disabled build path costs one relaxed load
//! (the `telemetry_overhead` bench in `ada-bench` guards the budget).
//!
//! Zero external dependencies — the container is offline; the only deps
//! are the in-tree `ada-json` (export) and the vendored `parking_lot`
//! stub (registration lock).

pub mod histogram;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use span::{flush, SpanGuard, SpanRecord};
pub use trace::{FlightRecorder, Trace, TraceContext, TraceSpan, TraceSpanGuard};

use ada_json::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable telemetry recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether telemetry is currently off (one relaxed atomic load — the
/// cost instrumented hot loops pay when recording is switched off).
pub fn disabled() -> bool {
    !enabled()
}

/// A monotonically increasing event/byte counter.
///
/// `add` is a single relaxed `fetch_add`; concurrent increments from any
/// number of threads are never lost (see the stress test below).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, resident bytes) that also tracks
/// its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    fn raise(&self, seen: i64) {
        self.high_water.fetch_max(seen, Ordering::Relaxed);
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.raise(v);
    }

    /// Move the level by `delta`; returns the new level.
    pub fn add(&self, delta: i64) -> i64 {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.raise(now);
        now
    }

    /// Level + 1.
    pub fn inc(&self) -> i64 {
        self.add(1)
    }

    /// Level − 1.
    pub fn dec(&self) -> i64 {
        self.add(-1)
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed (never decreases).
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Point-in-time view of a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: i64,
    /// High-water mark.
    pub high_water: i64,
}

/// The metric store. Handles returned by `counter`/`gauge`/`histogram`
/// are `Arc`s sharing the underlying atomics: keep them across a loop and
/// the loop never touches the registry lock.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Metric handles are atomics behind Arcs; summarize by name count
        // instead of locking all three maps for a full dump.
        f.debug_struct("Registry")
            .field("counters", &self.counters.lock().len())
            .field("gauges", &self.gauges.lock().len())
            .field("histograms", &self.histograms.lock().len())
            .finish()
    }
}

impl Registry {
    /// New empty registry (tests; production code uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-register a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.counters.lock();
        match g.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                g.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Get-or-register a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.gauges.lock();
        match g.get(name) {
            Some(v) => Arc::clone(v),
            None => {
                let v = Arc::new(Gauge::new());
                g.insert(name.to_string(), Arc::clone(&v));
                v
            }
        }
    }

    /// Get-or-register a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.histograms.lock();
        match g.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                g.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: v.get(),
                            high_water: v.high_water(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Drop every metric. Handles already held keep working but are
    /// detached from future snapshots — use between isolated profiling
    /// runs, not mid-flight.
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }
}

/// The process-wide registry all instrumented layers share.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// A point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge value + high-water mark by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram stats by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Machine-readable export:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    pub fn to_json(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::num_u(*v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, g)| {
                    (
                        k.clone(),
                        Value::obj(vec![
                            ("value", Value::Num(g.value as f64)),
                            ("high_water", Value::Num(g.high_water as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Value::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// [`global`] registry snapshot as JSON with the flight recorder's trace
/// summaries attached under `"traces"` — the full observability export
/// (`repro --metrics-out` writes this).
pub fn snapshot_with_traces() -> Value {
    let mut v = global().snapshot().to_json();
    if let Value::Obj(fields) = &mut v {
        fields.push(("traces".to_string(), trace::recorder().to_json()));
    }
    v
}

/// Serializes tests that observe or flip the global enable switch.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_concurrent_increments_none_lost() {
        // Satellite requirement: a multi-thread stress test asserting no
        // lost increments.
        let reg = Registry::new();
        let c = reg.counter("stress");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            reg.snapshot().counters["stress"],
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 3);
        g.set(10);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(reg.counter("x").get(), 5);
        // Distinct names are distinct metrics.
        reg.counter("y").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 5);
        assert_eq!(snap.counters["y"], 1);
    }

    #[test]
    fn snapshot_json_roundtrips_through_parser() {
        let reg = Registry::new();
        reg.counter("ops").add(7);
        reg.gauge("queue").set(3);
        reg.histogram("lat").record(100);
        let json = reg.snapshot().to_json();
        let parsed = ada_json::parse(&json.to_vec()).unwrap();
        assert_eq!(
            parsed
                .field("counters")
                .unwrap()
                .field("ops")
                .unwrap()
                .as_u64()
                .unwrap(),
            7
        );
        assert_eq!(
            parsed
                .field("gauges")
                .unwrap()
                .field("queue")
                .unwrap()
                .field("high_water")
                .unwrap()
                .as_u64()
                .unwrap(),
            3
        );
        assert_eq!(
            parsed
                .field("histograms")
                .unwrap()
                .field("lat")
                .unwrap()
                .field("count")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
    }

    #[test]
    fn reset_clears_metrics() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.reset();
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn enable_switch() {
        let _g = test_guard();
        assert!(enabled());
        set_enabled(false);
        assert!(disabled());
        set_enabled(true);
        assert!(enabled());
    }
}
