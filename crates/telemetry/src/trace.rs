//! Causal request tracing: span trees, a flight recorder, and Chrome
//! trace-event export.
//!
//! The metrics side of this crate answers *aggregate* questions (how many
//! queries, p99 decode time). This module answers the per-request one —
//! "why was **this** request slow" — by giving every request a
//! [`TraceContext`] minted at its entry point (`Frontend` admission, or
//! the `Ada` facade for direct callers) and carried **explicitly** across
//! every thread boundary of the pipelines: the scheduler queue wait, the
//! per-backend reader threads, the decode worker pool, and the cache
//! lookups. Each stage opens a child span; the spans of one request form
//! a single connected tree regardless of which threads executed them.
//!
//! ## Context propagation rules
//!
//! * A context is either **active** (it carries a shared handle to the
//!   request's span buffer) or **inactive** (tracing disabled — every
//!   operation is a no-op costing one branch).
//! * Crossing a channel or spawning a worker clones the context; the
//!   clone's spans land in the same tree. Nothing is implicit — there is
//!   no thread-local "current span", so a context in a message is the
//!   only way causality crosses a `sync_channel`.
//! * The **root** guard finishes the trace: when it drops, the span
//!   buffer is sealed into an immutable [`Trace`] and offered to the
//!   global [`FlightRecorder`]. Workers must therefore be joined before
//!   the root drops (the pipelines already do — they run under scoped
//!   threads); late spans from leaked clones are dropped on the floor.
//!
//! ## Flight recorder
//!
//! Completed traces go into a bounded ring of recent traces (any of which
//! `repro trace` can export), plus a second bounded ring that *retains*
//! flagged traces — errored, shed (`Overloaded`), deadline-expired, or
//! slower than a configurable latency bound — so the one bad request out
//! of thousands survives until someone looks. Both rings hold `Arc`s;
//! recording a trace is two short lock acquisitions, nothing more.
//!
//! ## Export
//!
//! [`chrome_trace`] renders traces as Chrome trace-event JSON (`ph:"X"`
//! complete events + thread-name metadata) loadable directly in Perfetto
//! or `chrome://tracing`; span args carry bytes, frames, tags, backends
//! and error kinds.

use ada_json::Value;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

static TRACING: AtomicBool = AtomicBool::new(true);

/// Enable or disable trace collection (metrics are governed separately by
/// [`crate::set_enabled`]; tracing requires both switches on).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether trace collection is currently on.
pub fn tracing_enabled() -> bool {
    crate::enabled() && TRACING.load(Ordering::Relaxed)
}

/// The process-wide monotonic epoch all span timestamps are relative to,
/// so spans recorded on different threads are directly comparable.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn next_trace_id() -> u128 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // The low 64 bits are a process-unique sequence; the high bits are
    // reserved for a node id once traces cross machines (the future RPC
    // protocol propagates the full 128 bits).
    NEXT.fetch_add(1, Ordering::Relaxed) as u128
}

/// Stable label for the calling thread: its name when it has one, else a
/// process-unique `t{n}` — the Chrome export's track name.
fn thread_label() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LABEL: String = match std::thread::current().name() {
            Some(n) => n.to_string(),
            None => format!("t{}", NEXT.fetch_add(1, Ordering::Relaxed)),
        };
    }
    LABEL.with(|l| l.clone())
}

/// One argument value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (bytes, frames, depths).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Free-form text (tags, backends).
    Str(String),
}

impl ArgValue {
    fn to_json(&self) -> Value {
        match self {
            ArgValue::U64(n) => Value::num_u(*n),
            ArgValue::I64(n) => Value::Num(*n as f64),
            ArgValue::Str(s) => Value::str(s.clone()),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(n: u64) -> ArgValue {
        ArgValue::U64(n)
    }
}
impl From<usize> for ArgValue {
    fn from(n: usize) -> ArgValue {
        ArgValue::U64(n as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(n: u32) -> ArgValue {
        ArgValue::U64(u64::from(n))
    }
}
impl From<i64> for ArgValue {
    fn from(n: i64) -> ArgValue {
        ArgValue::I64(n)
    }
}
impl From<&str> for ArgValue {
    fn from(s: &str) -> ArgValue {
        ArgValue::Str(s.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(s: String) -> ArgValue {
        ArgValue::Str(s)
    }
}

/// One finished span of a trace.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Span id, unique within the trace; the root is always id 1.
    pub id: u64,
    /// Parent span id (`None` only for the root).
    pub parent: Option<u64>,
    /// Stage name (catalogued in `METRICS.md`).
    pub name: &'static str,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// Label of the thread that recorded the span.
    pub thread: String,
    /// Key/value annotations (bytes, frames, tag, backend, …).
    pub args: Vec<(&'static str, ArgValue)>,
    /// `AdaError::kind()` of the failure this span observed, if any.
    pub error: Option<String>,
}

impl TraceSpan {
    /// Wall time of the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The in-flight, shared state of one request's trace.
struct ActiveTrace {
    id: u128,
    op: &'static str,
    next_span: AtomicU64,
    spans: Mutex<Vec<TraceSpan>>,
}

impl ActiveTrace {
    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, span: TraceSpan) {
        self.spans.lock().push(span);
    }
}

impl std::fmt::Debug for ActiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTrace")
            .field("id", &self.id)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

/// The propagatable trace context: which trace the caller is inside, and
/// which span is the current parent. Cloning is one `Arc` bump; an
/// inactive context (tracing off) clones for free and ignores every call.
#[derive(Debug, Clone)]
pub struct TraceContext {
    inner: Option<Arc<ActiveTrace>>,
    span: u64,
}

impl TraceContext {
    /// The inert context: every operation on it is a no-op. Direct `Ada`
    /// callers pass this implicitly (the facade mints its own root).
    pub const fn inactive() -> TraceContext {
        TraceContext {
            inner: None,
            span: 0,
        }
    }

    /// Whether this context belongs to a live trace.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, when active.
    pub fn trace_id(&self) -> Option<u128> {
        self.inner.as_ref().map(|t| t.id)
    }

    /// Open a child span of the current span. The guard records the span
    /// when dropped; use [`TraceSpanGuard::ctx`] to parent deeper work
    /// under the new span.
    pub fn span(&self, name: &'static str) -> TraceSpanGuard {
        let Some(trace) = &self.inner else {
            return TraceSpanGuard { live: None };
        };
        TraceSpanGuard {
            live: Some(GuardLive {
                trace: Arc::clone(trace),
                id: trace.alloc_span(),
                parent: Some(self.span),
                name,
                start_ns: now_ns(),
                args: Vec::new(),
                error: None,
                root: false,
            }),
        }
    }

    /// Record an already-measured child span (stages that time themselves
    /// to exclude channel-blocked time, or the queue wait reconstructed
    /// from the scheduler's `waited_ns`).
    pub fn record(
        &self,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let Some(trace) = &self.inner else { return };
        trace.push(TraceSpan {
            id: trace.alloc_span(),
            parent: Some(self.span),
            name,
            start_ns,
            end_ns: end_ns.max(start_ns),
            thread: thread_label(),
            args,
            error: None,
        });
    }
}

struct GuardLive {
    trace: Arc<ActiveTrace>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
    error: Option<String>,
    root: bool,
}

/// An open trace span; records itself (and, for the root, seals the whole
/// trace into the flight recorder) on drop.
pub struct TraceSpanGuard {
    live: Option<GuardLive>,
}

impl std::fmt::Debug for TraceSpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpanGuard")
            .field("name", &self.live.as_ref().map(|l| l.name))
            .finish_non_exhaustive()
    }
}

impl TraceSpanGuard {
    /// Attach a key/value annotation.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(l) = &mut self.live {
            l.args.push((key, value.into()));
        }
    }

    /// Mark the span failed with an error kind (`AdaError::kind()`).
    pub fn set_error(&mut self, kind: impl Into<String>) {
        if let Some(l) = &mut self.live {
            l.error = Some(kind.into());
        }
    }

    /// A context whose current span is this guard's span — hand it to
    /// workers and channels so their spans nest under this one.
    pub fn ctx(&self) -> TraceContext {
        match &self.live {
            Some(l) => TraceContext {
                inner: Some(Arc::clone(&l.trace)),
                span: l.id,
            },
            None => TraceContext::inactive(),
        }
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        let Some(l) = self.live.take() else { return };
        let end_ns = now_ns();
        l.trace.push(TraceSpan {
            id: l.id,
            parent: l.parent,
            name: l.name,
            start_ns: l.start_ns,
            end_ns,
            thread: thread_label(),
            args: l.args,
            error: l.error,
        });
        if l.root {
            finalize(&l.trace);
        }
    }
}

/// Mint a new trace rooted at `op` and return its context plus the root
/// guard. With tracing off, both are inert. The root guard must outlive
/// every worker of the request (drop it last).
pub fn root(op: &'static str) -> (TraceContext, TraceSpanGuard) {
    root_with_id(op, None)
}

/// Mint a new trace rooted at `op` that *continues* a trace id carried
/// over the wire (the networked RPC path): the server's span tree seals
/// under the same 128-bit id the client minted, so the flight recorder
/// holds one client-side and one server-side tree per request, joined by
/// id. `id == 0` (an untraced remote caller) falls back to a fresh id.
pub fn root_remote(op: &'static str, id: u128) -> (TraceContext, TraceSpanGuard) {
    root_with_id(op, (id != 0).then_some(id))
}

fn root_with_id(op: &'static str, id: Option<u128>) -> (TraceContext, TraceSpanGuard) {
    if !tracing_enabled() {
        return (TraceContext::inactive(), TraceSpanGuard { live: None });
    }
    let trace = Arc::new(ActiveTrace {
        id: id.unwrap_or_else(next_trace_id),
        op,
        next_span: AtomicU64::new(2),
        spans: Mutex::new(Vec::with_capacity(16)),
    });
    let guard = TraceSpanGuard {
        live: Some(GuardLive {
            trace: Arc::clone(&trace),
            id: 1,
            parent: None,
            name: op,
            start_ns: now_ns(),
            args: Vec::new(),
            error: None,
            root: true,
        }),
    };
    let ctx = TraceContext {
        inner: Some(trace),
        span: 1,
    };
    (ctx, guard)
}

/// One completed request's span tree, sealed and immutable.
#[derive(Debug)]
pub struct Trace {
    /// Trace id (process-unique; high bits reserved for a node id).
    pub id: u128,
    /// Root operation name (`frontend.request`, `ada.query`, …).
    pub op: &'static str,
    /// Root span wall time.
    pub duration_ns: u64,
    /// All spans, ordered by `(start_ns, id)`.
    pub spans: Vec<TraceSpan>,
    /// Why the flight recorder retained this trace (`error:{kind}` or
    /// `slow`), `None` for an ordinary fast success.
    pub flag: Option<String>,
}

impl Trace {
    /// The root span (id 1).
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.id == 1)
    }

    /// Whether the recorder retained this trace.
    pub fn is_flagged(&self) -> bool {
        self.flag.is_some()
    }

    fn summary_json(&self) -> Value {
        let mut fields = vec![
            ("trace", Value::str(format!("{:032x}", self.id))),
            ("op", Value::str(self.op)),
            ("duration_ns", Value::num_u(self.duration_ns)),
            ("spans", Value::num_u(self.spans.len() as u64)),
        ];
        if let Some(flag) = &self.flag {
            fields.push(("flag", Value::str(flag.clone())));
        }
        Value::obj(fields)
    }
}

fn finalize(trace: &Arc<ActiveTrace>) {
    let mut spans = std::mem::take(&mut *trace.spans.lock());
    spans.sort_by_key(|s| (s.start_ns, s.id));
    let (duration_ns, error) = spans
        .iter()
        .find(|s| s.id == 1)
        .map(|r| (r.duration_ns(), r.error.clone()))
        .unwrap_or((0, None));
    let rec = recorder();
    let flag = match error {
        Some(kind) => Some(format!("error:{}", kind)),
        None if duration_ns >= rec.threshold_ns.load(Ordering::Relaxed) => Some("slow".to_string()),
        None => None,
    };
    rec.push(Arc::new(Trace {
        id: trace.id,
        op: trace.op,
        duration_ns,
        spans,
        flag,
    }));
}

/// Bounded, lock-cheap store of recently completed traces. One global
/// instance ([`recorder`]) is shared by every `Ada`/`Frontend` in the
/// process — recording is two short `Mutex` acquisitions per *request*
/// (not per span), far off any hot loop.
pub struct FlightRecorder {
    /// Latency bound above which a successful trace is retained
    /// (`u64::MAX` disables the threshold).
    threshold_ns: AtomicU64,
    recent_cap: AtomicUsize,
    retained_cap: AtomicUsize,
    recent: Mutex<VecDeque<Arc<Trace>>>,
    retained: Mutex<VecDeque<Arc<Trace>>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("recent", &self.recent.lock().len())
            .field("retained", &self.retained.lock().len())
            .finish_non_exhaustive()
    }
}

/// Default capacity of the recent-traces ring.
pub const RECENT_CAPACITY: usize = 256;
/// Default capacity of the retained (flagged) ring.
pub const RETAINED_CAPACITY: usize = 128;

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder {
        threshold_ns: AtomicU64::new(u64::MAX),
        recent_cap: AtomicUsize::new(RECENT_CAPACITY),
        retained_cap: AtomicUsize::new(RETAINED_CAPACITY),
        recent: Mutex::new(VecDeque::new()),
        retained: Mutex::new(VecDeque::new()),
    })
}

impl FlightRecorder {
    /// Retain any successful trace at least this slow; `None` disables
    /// the latency trigger (errored/shed traces are always retained).
    pub fn set_latency_threshold(&self, bound: Option<Duration>) {
        let ns = bound.map_or(u64::MAX, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Resize both rings (existing overflow is evicted oldest-first).
    pub fn set_capacity(&self, recent: usize, retained: usize) {
        self.recent_cap.store(recent.max(1), Ordering::Relaxed);
        self.retained_cap.store(retained.max(1), Ordering::Relaxed);
        Self::trim(&mut self.recent.lock(), recent.max(1));
        Self::trim(&mut self.retained.lock(), retained.max(1));
    }

    fn trim(ring: &mut VecDeque<Arc<Trace>>, cap: usize) {
        while ring.len() > cap {
            ring.pop_front();
        }
    }

    fn push(&self, trace: Arc<Trace>) {
        {
            let mut recent = self.recent.lock();
            recent.push_back(Arc::clone(&trace));
            Self::trim(&mut recent, self.recent_cap.load(Ordering::Relaxed));
        }
        if trace.is_flagged() {
            let mut retained = self.retained.lock();
            retained.push_back(trace);
            Self::trim(&mut retained, self.retained_cap.load(Ordering::Relaxed));
        }
    }

    /// The recent completed traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        self.recent.lock().iter().cloned().collect()
    }

    /// The retained (flagged) traces, oldest first.
    pub fn retained(&self) -> Vec<Arc<Trace>> {
        self.retained.lock().iter().cloned().collect()
    }

    /// Every held trace exactly once (retained traces may have already
    /// rotated out of the recent ring), ordered by trace id.
    pub fn all(&self) -> Vec<Arc<Trace>> {
        let mut out = self.recent();
        out.extend(self.retained());
        out.sort_by_key(|t| t.id);
        out.dedup_by_key(|t| t.id);
        out
    }

    /// Drop every held trace (profiling runs isolate themselves with
    /// this, like [`crate::Registry::reset`]).
    pub fn clear(&self) {
        self.recent.lock().clear();
        self.retained.lock().clear();
    }

    /// Summaries of held traces:
    /// `{"recent": [...], "retained": [...]}` — the piece registry
    /// snapshots embed.
    pub fn to_json(&self) -> Value {
        let summarize =
            |ts: Vec<Arc<Trace>>| Value::Arr(ts.iter().map(|t| t.summary_json()).collect());
        Value::obj(vec![
            ("recent", summarize(self.recent())),
            ("retained", summarize(self.retained())),
        ])
    }

    /// Chrome trace-event export of everything held (see [`chrome_trace`]).
    pub fn export_chrome(&self) -> Value {
        chrome_trace(&self.all())
    }
}

/// Render traces as Chrome trace-event JSON: an object with a
/// `traceEvents` array of `ph:"X"` complete events (timestamps in
/// microseconds relative to the process trace epoch) plus `ph:"M"`
/// process/thread-name metadata, loadable directly in Perfetto or
/// `chrome://tracing`. Spans keep their trace/span/parent ids, error
/// kinds, and annotations in `args`.
pub fn chrome_trace(traces: &[Arc<Trace>]) -> Value {
    let mut tids: Vec<String> = Vec::new();
    let mut events: Vec<Value> = Vec::new();
    events.push(Value::obj(vec![
        ("name", Value::str("process_name")),
        ("ph", Value::str("M")),
        ("pid", Value::num_u(1)),
        ("tid", Value::num_u(0)),
        (
            "args",
            Value::obj(vec![("name", Value::str("ada-storage-node"))]),
        ),
    ]));
    for trace in traces {
        for span in &trace.spans {
            let tid = match tids.iter().position(|t| *t == span.thread) {
                Some(i) => i + 1,
                None => {
                    tids.push(span.thread.clone());
                    events.push(Value::obj(vec![
                        ("name", Value::str("thread_name")),
                        ("ph", Value::str("M")),
                        ("pid", Value::num_u(1)),
                        ("tid", Value::num_u(tids.len() as u64)),
                        (
                            "args",
                            Value::obj(vec![("name", Value::str(span.thread.clone()))]),
                        ),
                    ]));
                    tids.len()
                }
            };
            let mut args = vec![
                ("trace", Value::str(format!("{:032x}", trace.id))),
                ("span", Value::num_u(span.id)),
            ];
            if let Some(parent) = span.parent {
                args.push(("parent", Value::num_u(parent)));
            }
            if let Some(kind) = &span.error {
                args.push(("error", Value::str(kind.clone())));
            }
            for (k, v) in &span.args {
                args.push((k, v.to_json()));
            }
            events.push(Value::obj(vec![
                ("name", Value::str(span.name)),
                ("cat", Value::str(trace.op)),
                ("ph", Value::str("X")),
                ("ts", Value::Num(span.start_ns as f64 / 1000.0)),
                ("dur", Value::Num(span.duration_ns() as f64 / 1000.0)),
                ("pid", Value::num_u(1)),
                ("tid", Value::num_u(tid as u64)),
                (
                    "args",
                    Value::Obj(args.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
                ),
            ]));
        }
    }
    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace tests share the global recorder and the enable switches with
    // every other test in this binary; they serialize on the crate's
    // test_guard and match on their own ids instead of assuming an empty
    // recorder.

    #[test]
    fn root_span_tree_crosses_threads_connected() {
        let _g = crate::test_guard();
        let (ctx, mut guard) = root("test.trace_op");
        guard.arg("client", "c0");
        let id = ctx.trace_id().expect("tracing is on");
        {
            let stage = ctx.span("test.trace_stage");
            let worker_ctx = stage.ctx();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut inner = worker_ctx.span("test.trace_worker");
                    inner.arg("bytes", 128u64);
                });
            });
        }
        drop(guard);
        let trace = recorder()
            .recent()
            .into_iter()
            .find(|t| t.id == id)
            .expect("trace recorded");
        assert_eq!(trace.op, "test.trace_op");
        assert_eq!(trace.spans.len(), 3);
        let root = trace.root().unwrap();
        assert!(root.parent.is_none());
        let stage = trace
            .spans
            .iter()
            .find(|s| s.name == "test.trace_stage")
            .unwrap();
        let worker = trace
            .spans
            .iter()
            .find(|s| s.name == "test.trace_worker")
            .unwrap();
        assert_eq!(stage.parent, Some(root.id));
        assert_eq!(worker.parent, Some(stage.id));
        // Children nest within their parents' wall time.
        assert!(stage.start_ns >= root.start_ns && stage.end_ns <= root.end_ns);
        assert!(worker.start_ns >= stage.start_ns && worker.end_ns <= stage.end_ns);
        assert_eq!(worker.args, vec![("bytes", ArgValue::U64(128))]);
        assert!(!trace.is_flagged());
    }

    #[test]
    fn errored_trace_is_retained_with_kind() {
        let _g = crate::test_guard();
        let (_ctx, mut guard) = root("test.trace_err");
        guard.set_error("unknown_dataset");
        drop(guard);
        let t = recorder()
            .retained()
            .into_iter()
            .rev()
            .find(|t| t.op == "test.trace_err")
            .expect("flagged trace retained");
        assert_eq!(t.flag.as_deref(), Some("error:unknown_dataset"));
        assert_eq!(t.root().unwrap().error.as_deref(), Some("unknown_dataset"));
    }

    #[test]
    fn latency_threshold_retains_slow_traces() {
        let _g = crate::test_guard();
        recorder().set_latency_threshold(Some(Duration::from_nanos(1)));
        let (_ctx, guard) = root("test.trace_slow");
        std::thread::sleep(Duration::from_millis(1));
        drop(guard);
        recorder().set_latency_threshold(None);
        let t = recorder()
            .retained()
            .into_iter()
            .rev()
            .find(|t| t.op == "test.trace_slow")
            .expect("slow trace retained");
        assert_eq!(t.flag.as_deref(), Some("slow"));
    }

    #[test]
    fn disabled_tracing_costs_nothing_and_records_nothing() {
        let _g = crate::test_guard();
        set_tracing(false);
        let (ctx, guard) = root("test.trace_off");
        assert!(!ctx.is_active());
        let child = ctx.span("test.trace_off_child");
        assert!(!child.ctx().is_active());
        drop(child);
        drop(guard);
        set_tracing(true);
        assert!(recorder().recent().iter().all(|t| t.op != "test.trace_off"));
    }

    #[test]
    fn rings_stay_bounded() {
        let _g = crate::test_guard();
        let rec = recorder();
        for _ in 0..RECENT_CAPACITY + 16 {
            let (_ctx, guard) = root("test.trace_fill");
            drop(guard);
        }
        assert!(rec.recent.lock().len() <= RECENT_CAPACITY);
        assert!(rec.retained.lock().len() <= RETAINED_CAPACITY);
    }

    #[test]
    fn chrome_export_parses_and_has_schema() {
        let _g = crate::test_guard();
        let (ctx, _guard) = root("test.trace_export");
        {
            let mut s = ctx.span("test.trace_export_child");
            s.arg("backend", "ssd");
        }
        drop(_guard);
        let json = recorder().export_chrome();
        let parsed = ada_json::parse(&json.to_vec()).unwrap();
        let events = parsed.field("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            let ph = ev.field("ph").unwrap().as_str().unwrap();
            assert!(ph == "X" || ph == "M", "unexpected phase {}", ph);
            ev.field("name").unwrap().as_str().unwrap();
            ev.field("pid").unwrap().as_u64().unwrap();
            ev.field("tid").unwrap().as_u64().unwrap();
            if ph == "X" {
                assert!(matches!(ev.field("ts").unwrap(), Value::Num(n) if *n >= 0.0));
                assert!(matches!(ev.field("dur").unwrap(), Value::Num(n) if *n >= 0.0));
                ev.field("args").unwrap().field("trace").unwrap();
            }
        }
    }
}
