//! Pipeline-stage spans.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop
//! and can carry bytes/frames/tag annotations. Finished spans are pushed
//! into a **thread-local buffer** and drained to the global registry in
//! batches, so a hot loop's per-span cost is an `Instant::now` pair and a
//! `Vec` push — the registry lock is touched once per
//! [`FLUSH_THRESHOLD`] spans (and when a thread exits).
//!
//! Per span named `stage` (with optional tag `t`), draining feeds:
//!
//! * histogram `span.stage[.t].ns` — wall-time distribution,
//! * counter `span.stage[.t].calls`,
//! * counter `span.stage[.t].bytes` (when annotated),
//! * counter `span.stage[.t].frames` (when annotated).
//!
//! ```
//! {
//!     let mut s = ada_telemetry::span!("split", tag = "p");
//!     s.add_bytes(4096);
//! } // drop records the span
//! ada_telemetry::flush();
//! let snap = ada_telemetry::global().snapshot();
//! assert!(snap.counters["span.split.p.bytes"] >= 4096);
//! ```

use parking_lot::Mutex;
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Spans buffered per thread before a drain to the registry.
pub const FLUSH_THRESHOLD: usize = 256;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (`"decode"`, `"split"`, ...).
    pub name: &'static str,
    /// Optional tag discriminator (metric name suffix).
    pub tag: Option<String>,
    /// Wall time in nanoseconds.
    pub ns: u64,
    /// Bytes processed (0 when not annotated).
    pub bytes: u64,
    /// Frames processed (0 when not annotated).
    pub frames: u64,
}

/// A thread's span buffer. The owning thread is the only frequent locker
/// (uncontended parking_lot lock ≈ one CAS); [`flush`] on another thread
/// contends only at snapshot time.
type SharedBuf = Arc<Mutex<Vec<SpanRecord>>>;

/// Weak handles to every live thread's buffer, so [`flush`] can drain
/// workers that are still running (threads that exited drained themselves
/// and their entries lazily prune here).
static LIVE: Mutex<Vec<Weak<Mutex<Vec<SpanRecord>>>>> = Mutex::new(Vec::new());

struct LocalBuf {
    shared: SharedBuf,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // A worker thread exiting drains whatever it still holds.
        drain(&mut self.shared.lock());
    }
}

thread_local! {
    static BUF: LocalBuf = {
        let shared: SharedBuf = Arc::new(Mutex::new(Vec::with_capacity(FLUSH_THRESHOLD)));
        LIVE.lock().push(Arc::downgrade(&shared));
        LocalBuf { shared }
    };
}

fn push(rec: SpanRecord) {
    BUF.with(|b| {
        let mut buf = b.shared.lock();
        buf.push(rec);
        if buf.len() >= FLUSH_THRESHOLD {
            drain(&mut buf);
        }
    });
}

fn drain(records: &mut Vec<SpanRecord>) {
    if records.is_empty() {
        return;
    }
    let reg = crate::global();
    let mut name_buf = String::new();
    for r in records.drain(..) {
        name_buf.clear();
        name_buf.push_str("span.");
        name_buf.push_str(r.name);
        if let Some(tag) = &r.tag {
            name_buf.push('.');
            name_buf.push_str(tag);
        }
        let base_len = name_buf.len();
        name_buf.push_str(".ns");
        reg.histogram(&name_buf).record(r.ns);
        name_buf.truncate(base_len);
        name_buf.push_str(".calls");
        reg.counter(&name_buf).inc();
        if r.bytes > 0 {
            name_buf.truncate(base_len);
            name_buf.push_str(".bytes");
            reg.counter(&name_buf).add(r.bytes);
        }
        if r.frames > 0 {
            name_buf.truncate(base_len);
            name_buf.push_str(".frames");
            reg.counter(&name_buf).add(r.frames);
        }
    }
}

/// Drain **every live thread's** buffered spans into the global
/// registry — including worker threads that are mid-pipeline and below
/// [`FLUSH_THRESHOLD`]. Call before taking a
/// [`crate::Registry::snapshot`] so the snapshot reflects all spans
/// recorded so far, not just the calling thread's.
pub fn flush() {
    // Collect strong handles under the LIVE lock, drain after releasing
    // it: the recording path never touches LIVE, so lock order is
    // LIVE → buffer → registry with no cycle.
    let bufs: Vec<SharedBuf> = {
        let mut live = LIVE.lock();
        live.retain(|w| w.strong_count() > 0);
        live.iter().filter_map(Weak::upgrade).collect()
    };
    for buf in bufs {
        drain(&mut buf.lock());
    }
}

/// Record an already-measured span — for pipeline stages that time
/// themselves (e.g. to exclude time blocked on a channel from their busy
/// time). Buffered like guard spans; no-op when telemetry is disabled.
pub fn record(name: &'static str, tag: Option<String>, ns: u64, bytes: u64, frames: u64) {
    if crate::disabled() {
        return;
    }
    push(SpanRecord {
        name,
        tag,
        ns,
        bytes,
        frames,
    });
}

/// An in-flight span; finishes (and records itself) on drop. Created via
/// [`crate::span!`] or [`SpanGuard::start`]. When telemetry is disabled
/// the guard is inert and costs one atomic load.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at creation.
    live: Option<(Instant, SpanRecord)>,
}

impl SpanGuard {
    /// Begin a span named `name`.
    pub fn start(name: &'static str) -> SpanGuard {
        if crate::disabled() {
            return SpanGuard { live: None };
        }
        SpanGuard {
            live: Some((
                Instant::now(),
                SpanRecord {
                    name,
                    tag: None,
                    ns: 0,
                    bytes: 0,
                    frames: 0,
                },
            )),
        }
    }

    /// Attach a tag; the metric names gain a `.{tag}` suffix.
    pub fn tag(mut self, tag: impl std::fmt::Display) -> SpanGuard {
        if let Some((_, r)) = &mut self.live {
            r.tag = Some(tag.to_string());
        }
        self
    }

    /// Accumulate processed bytes.
    pub fn add_bytes(&mut self, n: u64) {
        if let Some((_, r)) = &mut self.live {
            r.bytes += n;
        }
    }

    /// Accumulate processed frames.
    pub fn add_frames(&mut self, n: u64) {
        if let Some((_, r)) = &mut self.live {
            r.frames += n;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, mut rec)) = self.live.take() {
            rec.ns = start.elapsed().as_nanos() as u64;
            push(rec);
        }
    }
}

/// Open a [`SpanGuard`] for a pipeline stage:
/// `span!("split")` or `span!("split", tag = tag)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::start($name)
    };
    ($name:expr, tag = $tag:expr) => {
        $crate::span::SpanGuard::start($name).tag($tag)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the global registry (and the global enable flag)
    // with other tests in this binary, so they only assert on metric
    // names no other test produces and never flip telemetry off without
    // restoring it.

    #[test]
    fn span_records_time_bytes_frames() {
        let _g = crate::test_guard();
        {
            let mut s = crate::span!("test_stage_a");
            s.add_bytes(100);
            s.add_bytes(28);
            s.add_frames(2);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        flush();
        let snap = crate::global().snapshot();
        assert!(snap.counters["span.test_stage_a.calls"] >= 1);
        assert!(snap.counters["span.test_stage_a.bytes"] >= 128);
        assert!(snap.counters["span.test_stage_a.frames"] >= 2);
        let h = &snap.histograms["span.test_stage_a.ns"];
        assert!(h.count >= 1);
        assert!(h.max >= 1_000_000, "slept 1ms, saw {} ns", h.max);
    }

    #[test]
    fn tagged_spans_split_metric_names() {
        let _g = crate::test_guard();
        for tag in ["p", "m"] {
            let _s = crate::span!("test_stage_b", tag = tag);
        }
        flush();
        let snap = crate::global().snapshot();
        assert!(snap.counters.contains_key("span.test_stage_b.p.calls"));
        assert!(snap.counters.contains_key("span.test_stage_b.m.calls"));
    }

    #[test]
    fn worker_thread_spans_drain_on_exit() {
        let _g = crate::test_guard();
        std::thread::spawn(|| {
            let _s = crate::span!("test_stage_c");
        })
        .join()
        .unwrap();
        let snap = crate::global().snapshot();
        assert_eq!(snap.counters["span.test_stage_c.calls"], 1);
    }

    #[test]
    fn overflow_drains_mid_loop() {
        let _g = crate::test_guard();
        for _ in 0..(FLUSH_THRESHOLD + 10) {
            let _s = crate::span!("test_stage_d");
        }
        // The threshold crossing drained without an explicit flush().
        let snap = crate::global().snapshot();
        assert!(snap.counters["span.test_stage_d.calls"] >= FLUSH_THRESHOLD as u64);
    }

    #[test]
    fn flush_drains_live_worker_buffers() {
        let _g = crate::test_guard();
        let (ready_tx, ready_rx) = std::sync::mpsc::sync_channel::<()>(1);
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel::<()>(1);
        let worker = std::thread::spawn(move || {
            record("test_stage_f", None, 42, 7, 0);
            ready_tx.send(()).unwrap();
            done_rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();
        // The worker is still alive and far below FLUSH_THRESHOLD; before
        // the registry-side drain this span stayed invisible until the
        // thread exited.
        flush();
        let snap = crate::global().snapshot();
        assert!(snap.counters["span.test_stage_f.calls"] >= 1);
        assert!(snap.counters["span.test_stage_f.bytes"] >= 7);
        done_tx.send(()).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        {
            let mut s = crate::span!("test_stage_e", tag = "x");
            s.add_bytes(1);
        }
        flush();
        crate::set_enabled(true);
        let snap = crate::global().snapshot();
        assert!(!snap.counters.contains_key("span.test_stage_e.x.calls"));
    }
}
