//! Consistent-hash routing of datasets across a fleet of `ada-server`
//! instances.
//!
//! The [`Ring`] hashes ~64 virtual nodes per shard onto a 64-bit FNV-1a
//! circle; a dataset routes to the owner of the first point clockwise
//! from its own hash. Two properties matter and both are pinned by
//! property tests:
//!
//! - **spread**: with vnodes, no shard owns more than ~2× its uniform
//!   share of keys, and
//! - **minimal disruption**: adding or removing one shard only remaps
//!   keys that depart from (or arrive at) that shard — every other
//!   key keeps its assignment, so a resize does not stampede the
//!   remaining instances' caches.
//!
//! The [`Router`] pairs a ring with one lazy [`Client`] per shard.
//! Per-shard failures surface as typed errors (annotated with the shard
//! that failed) instead of being silently retried elsewhere: a dataset
//! lives on exactly one shard, so "failover" to another instance would
//! turn a network fault into a wrong `unknown_dataset` answer.

use std::collections::BTreeMap;

use ada_core::AdaError;
use ada_proto::{WireCacheStats, WireIngestReport, WireQueryReport};

use crate::{Client, ClientConfig};

/// Virtual nodes per shard: enough to keep the spread within 2× of
/// uniform for fleets up to dozens of shards, cheap enough to rebuild on
/// every resize.
const VNODES_PER_SHARD: usize = 64;

/// 64-bit FNV-1a with a splitmix64 finalizer. Raw FNV clumps badly on
/// short structured labels ("shard-3-vnode-17"), which skews the ring
/// far past 2× uniform; the avalanche pass fixes the low-entropy tail.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash circle over `shards` instances.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// A ring over `shards` instances (at least 1).
    pub fn new(shards: usize) -> Ring {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let label = format!("shard-{}-vnode-{}", shard, vnode);
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first vnode clockwise from the key's
    /// hash (wrapping to the first point past zero).
    pub fn shard_for(&self, key: &str) -> usize {
        let h = fnv1a(key.as_bytes());
        match self.points.iter().find(|(p, _)| *p >= h) {
            Some((_, shard)) => *shard,
            None => self.points[0].1,
        }
    }
}

/// Routes dataset-scoped operations to the owning shard's [`Client`].
#[derive(Debug)]
pub struct Router {
    ring: Ring,
    clients: Vec<Client>,
}

impl Router {
    /// A router over one server address per shard. Connections are
    /// dialed lazily on first use, so constructing a router is free.
    pub fn new(addrs: Vec<String>, config: ClientConfig) -> Router {
        let ring = Ring::new(addrs.len());
        let clients = addrs
            .into_iter()
            .map(|addr| Client::new(addr, config.clone()))
            .collect();
        Router { ring, clients }
    }

    /// Number of shards behind this router.
    pub fn shards(&self) -> usize {
        self.clients.len()
    }

    /// The shard index `dataset` routes to.
    pub fn shard_for(&self, dataset: &str) -> usize {
        self.ring.shard_for(dataset)
    }

    /// The client for one shard index (for shard-scoped operations like
    /// per-instance cache stats).
    pub fn client(&self, shard: usize) -> Option<&Client> {
        self.clients.get(shard)
    }

    /// Route an ingest to the dataset's owning shard.
    pub fn ingest(
        &self,
        dataset: &str,
        pdb_text: &str,
        xtc_bytes: &[u8],
        batch_frames: u32,
    ) -> Result<WireIngestReport, AdaError> {
        let shard = self.shard_for(dataset);
        self.route(shard, |c| {
            c.ingest(dataset, pdb_text, xtc_bytes, batch_frames)
        })
    }

    /// Route a query to the dataset's owning shard.
    pub fn query(&self, dataset: &str, tag: Option<&str>) -> Result<WireQueryReport, AdaError> {
        let shard = self.shard_for(dataset);
        self.route(shard, |c| c.query(dataset, tag))
    }

    /// Route a strided range query to the dataset's owning shard.
    pub fn query_range(
        &self,
        dataset: &str,
        tag: &str,
        start: u64,
        end: u64,
        stride: u64,
    ) -> Result<WireQueryReport, AdaError> {
        let shard = self.shard_for(dataset);
        self.route(shard, |c| c.query_range(dataset, tag, start, end, stride))
    }

    /// Cache counters of every shard, keyed by shard index. Dead shards
    /// are reported as typed errors alongside the live answers.
    pub fn cache_stats_all(&self) -> BTreeMap<usize, Result<WireCacheStats, AdaError>> {
        self.clients
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.cache_stats()))
            .collect()
    }

    /// Drive `op` against one shard, annotating failures with the shard
    /// index. Network faults are NOT failed over to another shard — the
    /// dataset only exists on its owner, so rerouting would masquerade a
    /// transport fault as `unknown_dataset`.
    fn route<T>(
        &self,
        shard: usize,
        op: impl FnOnce(&Client) -> Result<T, AdaError>,
    ) -> Result<T, AdaError> {
        let registry = ada_telemetry::global();
        registry.counter("router.requests").inc();
        let client = self.clients.get(shard).ok_or_else(|| {
            AdaError::Internal(format!(
                "ring routed to shard {} but only {} clients exist",
                shard,
                self.clients.len()
            ))
        })?;
        op(client).map_err(|e| {
            registry.counter("router.shard_errors").inc();
            match e {
                AdaError::Network { detail } => AdaError::Network {
                    detail: format!("shard {}: {}", shard, detail),
                },
                other => other,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_is_deterministic_and_total() {
        let ring = Ring::new(4);
        for i in 0..1000 {
            let key = format!("dataset-{}", i);
            let a = ring.shard_for(&key);
            let b = ring.shard_for(&key);
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new(1);
        for i in 0..100 {
            assert_eq!(ring.shard_for(&format!("k{}", i)), 0);
        }
    }

    fn spread(shards: usize, keys: usize) -> Vec<usize> {
        let ring = Ring::new(shards);
        let mut counts = vec![0usize; shards];
        for i in 0..keys {
            counts[ring.shard_for(&format!("dataset-{}", i))] += 1;
        }
        counts
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// No shard owns more than 2× its uniform share of a large key
        /// population, for every fleet size the bench sweeps.
        #[test]
        fn spread_within_twice_uniform(shards in 2usize..=16) {
            let keys = 4096usize;
            let counts = spread(shards, keys);
            let uniform = keys as f64 / shards as f64;
            for (shard, &count) in counts.iter().enumerate() {
                prop_assert!(
                    (count as f64) <= 2.0 * uniform,
                    "shard {} owns {} of {} keys (uniform share {:.0})",
                    shard, count, keys, uniform
                );
            }
        }

        /// Growing the fleet by one shard only moves keys *to* the new
        /// shard; every key not claimed by it keeps its old owner.
        #[test]
        fn adding_a_shard_only_remaps_arrivals(shards in 2usize..=15) {
            let before = Ring::new(shards);
            let after = Ring::new(shards + 1);
            for i in 0..2048 {
                let key = format!("dataset-{}", i);
                let old = before.shard_for(&key);
                let new = after.shard_for(&key);
                prop_assert!(
                    new == old || new == shards,
                    "key {} moved {} -> {} when shard {} joined",
                    key, old, new, shards
                );
            }
        }

        /// Removing the last shard only remaps the keys it owned; every
        /// other key keeps its owner.
        #[test]
        fn removing_a_shard_only_remaps_departures(shards in 3usize..=16) {
            let before = Ring::new(shards);
            let after = Ring::new(shards - 1);
            for i in 0..2048 {
                let key = format!("dataset-{}", i);
                let old = before.shard_for(&key);
                let new = after.shard_for(&key);
                if old != shards - 1 {
                    prop_assert_eq!(
                        new, old,
                        "key {} moved {} -> {} though shard {} departed",
                        key, old, new, shards - 1
                    );
                }
            }
        }
    }
}
