//! `ada-client`: a blocking TCP client for `ada-server`, plus a
//! consistent-hash [`Router`] that spreads datasets across a fleet of
//! server instances.
//!
//! The client is synchronous and self-healing: one request is in flight
//! per [`Client`] at a time, the socket is dialed lazily on first use,
//! and any transport or protocol failure poisons the connection so the
//! *next* call redials instead of reusing a desynchronized byte stream.
//! Every failure surfaces as a typed [`AdaError`] — transport and
//! framing problems as [`AdaError::Network`], and remote middleware
//! errors (`Overloaded`, `DeadlineExceeded`, `UnknownDataset`, …) with
//! exactly the kind the in-process path would have returned, courtesy
//! of the structural error codec in `ada-proto`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod router;

pub use router::{Ring, Router};

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ada_core::AdaError;
use ada_proto::{
    read_frame, write_frame, RequestBody, RequestEnvelope, ResponseBody, ResponseEnvelope,
    WireCacheStats, WireIngestReport, WireQueryReport, DEFAULT_MAX_FRAME,
};
use ada_telemetry::trace;
use parking_lot::Mutex;

/// Tuning knobs for one [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Client name sent with every request; the server's frontend
    /// accounts admission per client under this name.
    pub name: String,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout per blocking read (bounds how long a call can
    /// hang on a stalled or half-dead server).
    pub io_timeout: Duration,
    /// Receive-side frame payload limit.
    pub max_frame_len: u32,
    /// Queue-wait deadline attached to every request (`None` = wait
    /// indefinitely in the server's admission queue).
    pub default_deadline: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            name: "remote".to_string(),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            max_frame_len: DEFAULT_MAX_FRAME,
            default_deadline: None,
        }
    }
}

/// A blocking connection to one `ada-server`, dialed lazily and redialed
/// after any failure.
#[derive(Debug)]
pub struct Client {
    addr: String,
    config: ClientConfig,
    conn: Mutex<Option<TcpStream>>,
    next_id: AtomicU64,
}

impl Client {
    /// A client for the server at `addr` (e.g. `"127.0.0.1:7878"`). No
    /// connection is made until the first request.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Client {
        Client {
            addr: addr.into(),
            config,
            conn: Mutex::new(None),
            next_id: AtomicU64::new(1),
        }
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), AdaError> {
        match self.request(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(unexpected_body("pong", &other)),
        }
    }

    /// Ingest real bytes remotely. `batch_frames == 0` runs the server's
    /// whole-buffer path, anything else the streaming pipeline.
    pub fn ingest(
        &self,
        dataset: &str,
        pdb_text: &str,
        xtc_bytes: &[u8],
        batch_frames: u32,
    ) -> Result<WireIngestReport, AdaError> {
        let body = RequestBody::Ingest {
            dataset: dataset.to_string(),
            pdb_text: pdb_text.to_string(),
            xtc_bytes: xtc_bytes.to_vec(),
            batch_frames,
        };
        match self.request(body)? {
            ResponseBody::Ingest(rep) => Ok(rep),
            other => Err(unexpected_body("ingest report", &other)),
        }
    }

    /// Tag-aware (or full-frame, when `tag` is `None`) remote query.
    pub fn query(&self, dataset: &str, tag: Option<&str>) -> Result<WireQueryReport, AdaError> {
        let body = RequestBody::Query {
            dataset: dataset.to_string(),
            tag: tag.map(|t| t.to_string()),
        };
        match self.request(body)? {
            ResponseBody::Query(rep) => Ok(rep),
            other => Err(unexpected_body("query report", &other)),
        }
    }

    /// Strided frame-range remote query.
    pub fn query_range(
        &self,
        dataset: &str,
        tag: &str,
        start: u64,
        end: u64,
        stride: u64,
    ) -> Result<WireQueryReport, AdaError> {
        let body = RequestBody::QueryRange {
            dataset: dataset.to_string(),
            tag: tag.to_string(),
            start,
            end,
            stride,
        };
        match self.request(body)? {
            ResponseBody::Query(rep) => Ok(rep),
            other => Err(unexpected_body("query report", &other)),
        }
    }

    /// Snapshot of the server's decoded-dropping cache counters.
    pub fn cache_stats(&self) -> Result<WireCacheStats, AdaError> {
        match self.request(RequestBody::CacheStats)? {
            ResponseBody::CacheStats(s) => Ok(s),
            other => Err(unexpected_body("cache stats", &other)),
        }
    }

    /// Send one request and wait for its response. Serialized per client
    /// (the connection lock is held across the round trip).
    fn request(&self, body: RequestBody) -> Result<ResponseBody, AdaError> {
        let registry = ada_telemetry::global();
        registry.counter("client.requests").inc();
        let started = Instant::now();
        let (ctx, mut root) = trace::root("client.request");
        root.arg("op", body.op_name());
        root.arg("addr", self.addr.as_str());
        let env = RequestEnvelope {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            client: self.config.name.clone(),
            trace_id: ctx.trace_id().unwrap_or(0),
            deadline_ns: self
                .config
                .default_deadline
                .map(|d| d.as_nanos().clamp(1, u64::MAX as u128) as u64)
                .unwrap_or(0),
            body,
        };
        let mut conn = self.conn.lock();
        let result = self.round_trip(&mut conn, &env);
        if let Err(e) = &result {
            // Whatever the failure, the stream may hold a half-read
            // response; poison it so the next call redials.
            *conn = None;
            registry.counter("client.errors").inc();
            root.set_error(e.kind());
        }
        registry
            .histogram("client.request.ns")
            .record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        result
    }

    fn round_trip(
        &self,
        conn: &mut Option<TcpStream>,
        env: &RequestEnvelope,
    ) -> Result<ResponseBody, AdaError> {
        if conn.is_none() {
            *conn = Some(self.dial()?);
        }
        let stream = conn.as_mut().ok_or_else(|| AdaError::Network {
            detail: "connection vanished under the lock".to_string(),
        })?;
        write_frame(stream, &env.encode()).map_err(|e| self.net(e.to_string()))?;
        let payload = match read_frame(stream, self.config.max_frame_len) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return Err(self.net("server closed the connection mid-request".to_string()))
            }
            Err(e) => return Err(self.net(e.to_string())),
        };
        let resp = ResponseEnvelope::decode(&payload).map_err(|e| self.net(e.to_string()))?;
        // id 0 = connection-level error (protocol violation or overload
        // reject); anything else must match our request.
        if resp.id != 0 && resp.id != env.id {
            return Err(self.net(format!(
                "response id {} does not match request id {}",
                resp.id, env.id
            )));
        }
        match resp.body {
            ResponseBody::Error(e) => Err(e),
            other if resp.id == env.id => Ok(other),
            _ => Err(self.net("connection-level frame carried a non-error body".to_string())),
        }
    }

    fn dial(&self) -> Result<TcpStream, AdaError> {
        ada_telemetry::global().counter("client.connects").inc();
        let addr: std::net::SocketAddr = self
            .addr
            .parse()
            .map_err(|_| self.net("unparseable server address".to_string()))?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|e| self.net(format!("connect: {}", e)))?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .map_err(|e| self.net(format!("set_read_timeout: {}", e)))?;
        stream
            .set_write_timeout(Some(self.config.io_timeout))
            .map_err(|e| self.net(format!("set_write_timeout: {}", e)))?;
        Ok(stream)
    }

    fn net(&self, detail: String) -> AdaError {
        AdaError::Network {
            detail: format!("{} ({})", detail, self.addr),
        }
    }
}

fn unexpected_body(expected: &str, got: &ResponseBody) -> AdaError {
    AdaError::Network {
        detail: format!("expected {}, got {:?} response", expected, body_name(got)),
    }
}

fn body_name(body: &ResponseBody) -> &'static str {
    match body {
        ResponseBody::Pong => "pong",
        ResponseBody::Ingest(_) => "ingest",
        ResponseBody::Query(_) => "query",
        ResponseBody::CacheStats(_) => "cache_stats",
        ResponseBody::Error(_) => "error",
    }
}
