//! Periodic boundary conditions.
//!
//! Trajectories carry a 3×3 box matrix per frame (the XTC header stores it
//! row-major). MD boxes here are rectangular or triclinic; the workload
//! generator and the renderer only need wrapping and minimum-image
//! distances for rectangular boxes, but the type keeps the full matrix so
//! real triclinic XTC headers round-trip losslessly.

/// A periodic simulation box described by three box vectors (rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbcBox {
    /// Row-major box vectors in nanometres: `m[i]` is box vector *i*.
    pub m: [[f32; 3]; 3],
}

impl PbcBox {
    /// A rectangular (orthorhombic) box with edge lengths in nm.
    pub fn rectangular(lx: f32, ly: f32, lz: f32) -> PbcBox {
        PbcBox {
            m: [[lx, 0.0, 0.0], [0.0, ly, 0.0], [0.0, 0.0, lz]],
        }
    }

    /// The zero box (no PBC information), as written by some tools.
    pub fn zero() -> PbcBox {
        PbcBox { m: [[0.0; 3]; 3] }
    }

    /// Edge lengths of the bounding rectangle (diagonal entries).
    pub fn lengths(&self) -> [f32; 3] {
        [self.m[0][0], self.m[1][1], self.m[2][2]]
    }

    /// Box volume in nm³ (determinant of the matrix).
    pub fn volume(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// True when the box is rectangular (off-diagonals all zero).
    pub fn is_rectangular(&self) -> bool {
        let m = &self.m;
        m[0][1] == 0.0
            && m[0][2] == 0.0
            && m[1][0] == 0.0
            && m[1][2] == 0.0
            && m[2][0] == 0.0
            && m[2][1] == 0.0
    }

    /// True when every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.m.iter().flatten().all(|&x| x == 0.0)
    }

    /// Wrap a point into the primary cell `[0, L)³` (rectangular boxes only;
    /// returns the input unchanged for zero boxes).
    pub fn wrap(&self, p: [f32; 3]) -> [f32; 3] {
        if self.is_zero() {
            return p;
        }
        debug_assert!(self.is_rectangular(), "wrap() requires a rectangular box");
        let l = self.lengths();
        let mut out = p;
        for d in 0..3 {
            if l[d] > 0.0 {
                out[d] = p[d].rem_euclid(l[d]);
            }
        }
        out
    }

    /// Minimum-image displacement from `a` to `b` (rectangular boxes only).
    pub fn min_image(&self, a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
        let mut d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        if self.is_zero() {
            return d;
        }
        debug_assert!(self.is_rectangular());
        let l = self.lengths();
        for k in 0..3 {
            if l[k] > 0.0 {
                d[k] -= (d[k] / l[k]).round() * l[k];
            }
        }
        d
    }

    /// Minimum-image distance between two points.
    pub fn distance(&self, a: [f32; 3], b: [f32; 3]) -> f32 {
        let d = self.min_image(a, b);
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }
}

impl Default for PbcBox {
    fn default() -> PbcBox {
        PbcBox::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rectangular_volume() {
        let b = PbcBox::rectangular(2.0, 3.0, 4.0);
        assert!((b.volume() - 24.0).abs() < 1e-6);
        assert!(b.is_rectangular());
        assert!(!b.is_zero());
    }

    #[test]
    fn zero_box_passthrough() {
        let b = PbcBox::zero();
        assert!(b.is_zero());
        assert_eq!(b.wrap([5.0, -1.0, 2.0]), [5.0, -1.0, 2.0]);
        let d = b.min_image([0.0; 3], [9.0, 0.0, 0.0]);
        assert_eq!(d, [9.0, 0.0, 0.0]);
    }

    #[test]
    fn wrap_into_cell() {
        let b = PbcBox::rectangular(10.0, 10.0, 10.0);
        assert_eq!(b.wrap([12.5, -0.5, 10.0]), [2.5, 9.5, 0.0]);
    }

    #[test]
    fn min_image_near_boundary() {
        let b = PbcBox::rectangular(10.0, 10.0, 10.0);
        // Points at 0.5 and 9.5 are 1.0 apart through the boundary.
        assert!((b.distance([0.5, 0.0, 0.0], [9.5, 0.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_wrap_in_range(x in -100.0f32..100.0, y in -100.0f32..100.0, z in -100.0f32..100.0) {
            let b = PbcBox::rectangular(7.5, 12.0, 3.25);
            let w = b.wrap([x, y, z]);
            let l = b.lengths();
            for d in 0..3 {
                prop_assert!(w[d] >= 0.0 && w[d] < l[d] + 1e-4);
            }
        }

        #[test]
        fn prop_min_image_distance_bounded(
            a in prop::array::uniform3(-50.0f32..50.0),
            c in prop::array::uniform3(-50.0f32..50.0),
        ) {
            let b = PbcBox::rectangular(10.0, 10.0, 10.0);
            let d = b.min_image(a, c);
            for component in d {
                prop_assert!(component.abs() <= 5.0 + 1e-3);
            }
        }

        #[test]
        fn prop_distance_symmetric(
            a in prop::array::uniform3(-20.0f32..20.0),
            c in prop::array::uniform3(-20.0f32..20.0),
        ) {
            let b = PbcBox::rectangular(9.0, 9.0, 9.0);
            prop_assert!((b.distance(a, c) - b.distance(c, a)).abs() < 1e-5);
        }
    }
}
