//! Molecular topology: atoms, residues, and whole systems.

use crate::category::{Category, Tag, Taxonomy};
use crate::element::Element;
use crate::pbc::PbcBox;
use crate::ranges::IndexRanges;
use std::collections::BTreeMap;

/// One atom of the topology (coordinates live in trajectory frames, not
/// here; the PDB's reference coordinates are stored on [`MolecularSystem`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// PDB serial number (1-based in files; preserved verbatim).
    pub serial: u32,
    /// Atom name, e.g. `CA`, `N`, `OW`.
    pub name: String,
    /// Residue name, e.g. `ALA`, `SOL`, `POPC`.
    pub resname: String,
    /// Residue sequence number.
    pub resid: i32,
    /// Chain identifier.
    pub chain: char,
    /// Chemical element (derived from the name if the file lacks it).
    pub element: Element,
    /// Whether this atom came from a HETATM record.
    pub hetero: bool,
}

impl Atom {
    /// Category of this atom (decided by residue name, as in VMD).
    pub fn category(&self) -> Category {
        Category::of_residue(&self.resname)
    }
}

/// A contiguous run of atoms forming one residue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residue {
    /// Residue name.
    pub name: String,
    /// Residue sequence number.
    pub resid: i32,
    /// Chain identifier.
    pub chain: char,
    /// Atom index range `[start, end)` into the system's atom list.
    pub atom_start: usize,
    /// One past the last atom index.
    pub atom_end: usize,
}

impl Residue {
    /// Number of atoms in this residue.
    pub fn len(&self) -> usize {
        self.atom_end - self.atom_start
    }

    /// Whether the residue holds no atoms (never true for built systems).
    pub fn is_empty(&self) -> bool {
        self.atom_end == self.atom_start
    }

    /// Category of this residue.
    pub fn category(&self) -> Category {
        Category::of_residue(&self.name)
    }
}

/// A complete molecular system: topology plus the reference coordinates of
/// the structure file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MolecularSystem {
    /// Human-readable title (PDB TITLE/HEADER).
    pub title: String,
    /// All atoms in file order.
    pub atoms: Vec<Atom>,
    /// Residues (contiguous runs of atoms, in order).
    pub residues: Vec<Residue>,
    /// Reference coordinates in nanometres, one per atom.
    pub coords: Vec<[f32; 3]>,
    /// Periodic box (CRYST1), if present.
    pub pbc: PbcBox,
}

impl MolecularSystem {
    /// Build a system from atoms + coordinates, deriving the residue table
    /// from (chain, resid, resname) change points.
    pub fn from_atoms(
        title: impl Into<String>,
        atoms: Vec<Atom>,
        coords: Vec<[f32; 3]>,
        pbc: PbcBox,
    ) -> MolecularSystem {
        assert_eq!(atoms.len(), coords.len(), "atoms and coords must align");
        let residues = derive_residues(&atoms);
        MolecularSystem {
            title: title.into(),
            atoms,
            residues,
            coords,
            pbc,
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the system has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Index ranges of atoms in a given category.
    pub fn category_ranges(&self, category: Category) -> IndexRanges {
        let mut out = IndexRanges::new();
        for res in &self.residues {
            if res.category() == category {
                out.push(res.atom_start..res.atom_end);
            }
        }
        out
    }

    /// Count atoms per category.
    pub fn category_counts(&self) -> BTreeMap<Category, usize> {
        let mut map = BTreeMap::new();
        for res in &self.residues {
            *map.entry(res.category()).or_insert(0) += res.len();
        }
        map
    }

    /// Fraction of atoms that are protein (the paper's Table 1 metric is in
    /// bytes, but for uncompressed fixed-size-per-atom data the atom
    /// fraction equals the byte fraction).
    pub fn protein_fraction(&self) -> f64 {
        if self.atoms.is_empty() {
            return 0.0;
        }
        let protein = self
            .category_counts()
            .get(&Category::Protein)
            .copied()
            .unwrap_or(0);
        protein as f64 / self.atoms.len() as f64
    }

    /// Tag ranges under a taxonomy: the categorizer/labeler output of
    /// Algorithm 1, computed the straightforward way. `ada-core` implements
    /// the paper's literal algorithm and is tested for equivalence against
    /// this method.
    pub fn tag_ranges(&self, taxonomy: &Taxonomy) -> BTreeMap<Tag, IndexRanges> {
        let mut out: BTreeMap<Tag, IndexRanges> = BTreeMap::new();
        for res in &self.residues {
            let tag = taxonomy.tag_of(&res.name);
            out.entry(tag)
                .or_default()
                .push(res.atom_start..res.atom_end);
        }
        out
    }

    /// Total mass in Daltons.
    pub fn total_mass(&self) -> f64 {
        self.atoms.iter().map(|a| a.element.mass() as f64).sum()
    }

    /// Extract the sub-system covered by `ranges` (atoms, coords and residue
    /// table are all rebuilt; serials are preserved).
    pub fn subset(&self, ranges: &IndexRanges) -> MolecularSystem {
        let atoms: Vec<Atom> = ranges
            .iter_indices()
            .map(|i| self.atoms[i].clone())
            .collect();
        let coords = ranges.gather(&self.coords);
        MolecularSystem::from_atoms(self.title.clone(), atoms, coords, self.pbc)
    }
}

/// Derive contiguous residues from the atom list.
fn derive_residues(atoms: &[Atom]) -> Vec<Residue> {
    let mut residues = Vec::new();
    let mut start = 0usize;
    for i in 1..=atoms.len() {
        let boundary = i == atoms.len() || {
            let a = &atoms[i - 1];
            let b = &atoms[i];
            a.resid != b.resid || a.chain != b.chain || a.resname != b.resname
        };
        if boundary && i > start {
            let a = &atoms[start];
            residues.push(Residue {
                name: a.resname.clone(),
                resid: a.resid,
                chain: a.chain,
                atom_start: start,
                atom_end: i,
            });
            start = i;
        }
    }
    residues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(serial: u32, name: &str, resname: &str, resid: i32, chain: char) -> Atom {
        Atom {
            serial,
            name: name.to_string(),
            resname: resname.to_string(),
            resid,
            chain,
            element: Element::from_pdb_atom_name(name, resname),
            hetero: false,
        }
    }

    fn tiny_system() -> MolecularSystem {
        // 2 protein residues (3 + 2 atoms), 2 waters (3 atoms each), 1 ion.
        let atoms = vec![
            atom(1, "N", "ALA", 1, 'A'),
            atom(2, "CA", "ALA", 1, 'A'),
            atom(3, "C", "ALA", 1, 'A'),
            atom(4, "N", "GLY", 2, 'A'),
            atom(5, "CA", "GLY", 2, 'A'),
            atom(6, "OW", "SOL", 3, 'W'),
            atom(7, "HW1", "SOL", 3, 'W'),
            atom(8, "HW2", "SOL", 3, 'W'),
            atom(9, "OW", "SOL", 4, 'W'),
            atom(10, "HW1", "SOL", 4, 'W'),
            atom(11, "HW2", "SOL", 4, 'W'),
            atom(12, "NA", "SOD", 5, 'I'),
        ];
        let coords = vec![[0.0; 3]; 12];
        MolecularSystem::from_atoms("tiny", atoms, coords, PbcBox::rectangular(5.0, 5.0, 5.0))
    }

    #[test]
    fn residue_derivation() {
        let s = tiny_system();
        assert_eq!(s.residues.len(), 5);
        assert_eq!(s.residues[0].len(), 3);
        assert_eq!(s.residues[1].len(), 2);
        assert_eq!(s.residues[4].len(), 1);
        assert_eq!(s.residues[4].name, "SOD");
    }

    #[test]
    fn category_ranges_and_counts() {
        let s = tiny_system();
        let prot = s.category_ranges(Category::Protein);
        assert_eq!(prot, IndexRanges::single(0..5));
        let water = s.category_ranges(Category::Water);
        assert_eq!(water, IndexRanges::single(5..11));
        let counts = s.category_counts();
        assert_eq!(counts[&Category::Protein], 5);
        assert_eq!(counts[&Category::Water], 6);
        assert_eq!(counts[&Category::Ion], 1);
    }

    #[test]
    fn protein_fraction() {
        let s = tiny_system();
        assert!((s.protein_fraction() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn tag_ranges_paper_default() {
        let s = tiny_system();
        let tags = s.tag_ranges(&Taxonomy::paper_default());
        assert_eq!(tags[&Tag::protein()], IndexRanges::single(0..5));
        assert_eq!(tags[&Tag::misc()], IndexRanges::single(5..12));
    }

    #[test]
    fn subset_extraction() {
        let s = tiny_system();
        let prot = s.subset(&s.category_ranges(Category::Protein));
        assert_eq!(prot.len(), 5);
        assert_eq!(prot.residues.len(), 2);
        assert_eq!(prot.atoms[0].serial, 1);
        assert!((prot.protein_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residue_split_on_resid_change_same_name() {
        // Two SOL waters with different resids are distinct residues even if
        // adjacent — derive_residues must split on resid.
        let s = tiny_system();
        let waters: Vec<_> = s
            .residues
            .iter()
            .filter(|r| r.category() == Category::Water)
            .collect();
        assert_eq!(waters.len(), 2);
    }

    #[test]
    fn empty_system() {
        let s = MolecularSystem::from_atoms("empty", vec![], vec![], PbcBox::zero());
        assert!(s.is_empty());
        assert_eq!(s.protein_fraction(), 0.0);
        assert!(s.residues.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_coords_panic() {
        let atoms = vec![atom(1, "CA", "ALA", 1, 'A')];
        MolecularSystem::from_atoms("bad", atoms, vec![], PbcBox::zero());
    }
}
