#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-mdmodel — molecular system model
//!
//! Foundation types shared by the whole ADA reproduction:
//!
//! * [`Atom`], [`Residue`], [`MolecularSystem`] — a molecular topology as
//!   parsed from a PDB file or produced by the synthetic workload generator.
//! * [`Category`] / [`Tag`] — the *application-conscious* data taxonomy that
//!   ADA's categorizer (the paper's Algorithm 1) assigns to atoms. The paper
//!   uses "p" (protein, active) and "m" (MISC, inactive); we keep the full
//!   residue-class taxonomy so the finer-grained queries of Section 4.1's
//!   `mol addfile ... tag p` extension work too.
//! * [`IndexRanges`] — sorted disjoint half-open index ranges; the exact data
//!   structure the labeler stores per tag ("Data Subset Ranges" in Algo 1).
//! * [`select`] — a small selection mini-language (`protein`, `water`,
//!   `not protein`, `resname POPC`, ...) used by examples and tests.
//! * [`bonds`] — covalent-radius + cell-grid bond inference used by the
//!   VMD-like renderer.
//! * [`PbcBox`] — periodic box with wrapping and minimum-image distance.

pub mod bonds;
pub mod category;
pub mod element;
pub mod pbc;
pub mod ranges;
pub mod select;
pub mod system;

pub use bonds::{infer_bonds, Bond};
pub use category::{Category, Tag};
pub use element::Element;
pub use pbc::PbcBox;
pub use ranges::IndexRanges;
pub use select::{parse_selection, Selection};
pub use system::{Atom, MolecularSystem, Residue};
