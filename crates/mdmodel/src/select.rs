//! A small VMD-flavoured selection language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr   := or
//! or     := and ("or" and)*
//! and    := unary ("and" unary)*
//! unary  := "not" unary | primary
//! primary:= "protein" | "water" | "lipid" | "ion" | "nucleic" | "ligand"
//!         | "all" | "none" | "backbone" | "hydrogen" | "noh"
//!         | "resname" NAME+
//!         | "name" NAME+
//!         | "chain" CHAR+
//!         | "index" N ":" M        (half-open)
//!         | "resid" N ":" M        (inclusive, like VMD)
//!         | "within" FLOAT "of" unary   (distance in nm, reference coords)
//!         | "(" expr ")"
//! ```

use crate::category::Category;
use crate::ranges::IndexRanges;
use crate::system::MolecularSystem;

/// A parsed selection expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    All,
    None,
    Category(Category),
    ResName(Vec<String>),
    AtomName(Vec<String>),
    Chain(Vec<char>),
    /// Half-open atom index range.
    Index(usize, usize),
    /// Inclusive residue id range.
    Resid(i32, i32),
    /// Protein backbone atoms (N, CA, C, O of protein residues).
    Backbone,
    /// Hydrogen atoms.
    Hydrogen,
    /// Atoms within a distance (nm) of another selection, measured on the
    /// system's reference coordinates (includes the inner selection).
    Within(f32, Box<Selection>),
    Not(Box<Selection>),
    And(Box<Selection>, Box<Selection>),
    Or(Box<Selection>, Box<Selection>),
}

impl Selection {
    /// Evaluate against a system, producing the matching atom index ranges.
    pub fn evaluate(&self, system: &MolecularSystem) -> IndexRanges {
        match self {
            Selection::All => IndexRanges::single(0..system.len()),
            Selection::None => IndexRanges::new(),
            Selection::Category(c) => system.category_ranges(*c),
            Selection::ResName(names) => {
                IndexRanges::from_indices(system.atoms.iter().enumerate().filter_map(|(i, a)| {
                    let r = a.resname.trim().to_ascii_uppercase();
                    names.contains(&r).then_some(i)
                }))
            }
            Selection::AtomName(names) => {
                IndexRanges::from_indices(system.atoms.iter().enumerate().filter_map(|(i, a)| {
                    let n = a.name.trim().to_ascii_uppercase();
                    names.contains(&n).then_some(i)
                }))
            }
            Selection::Chain(chains) => IndexRanges::from_indices(
                system
                    .atoms
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| chains.contains(&a.chain).then_some(i)),
            ),
            Selection::Index(a, b) => {
                IndexRanges::single((*a).min(system.len())..(*b).min(system.len()))
            }
            Selection::Resid(lo, hi) => {
                let mut out = IndexRanges::new();
                for res in &system.residues {
                    if res.resid >= *lo && res.resid <= *hi {
                        out.push(res.atom_start..res.atom_end);
                    }
                }
                out
            }
            Selection::Backbone => {
                let protein = system.category_ranges(Category::Protein);
                IndexRanges::from_indices(
                    protein
                        .iter_indices()
                        .filter(|&i| matches!(system.atoms[i].name.trim(), "N" | "CA" | "C" | "O")),
                )
            }
            Selection::Hydrogen => IndexRanges::from_indices(
                system
                    .atoms
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| (a.element == crate::Element::H).then_some(i)),
            ),
            Selection::Within(dist, inner) => {
                let seed = inner.evaluate(system);
                if seed.is_empty() || system.is_empty() {
                    return seed;
                }
                let cell = dist.max(1e-3);
                let grid = crate::bonds::CellGrid::build(&system.coords, cell);
                let seed_coords: Vec<[f32; 3]> = seed.gather(&system.coords);
                let d2max = (*dist as f64 * *dist as f64) as f32;
                let mut hits: Vec<usize> = seed.iter_indices().collect();
                // For each atom, check distance to any seed atom via the
                // grid around the atom itself (seed lookup is O(cells)).
                let mut buffer = Vec::new();
                for (k, &sc) in seed_coords.iter().enumerate() {
                    let _ = k;
                    buffer.clear();
                    grid.neighbors_within(sc, *dist, &mut buffer);
                    for &j in &buffer {
                        let c = system.coords[j as usize];
                        let dx = c[0] - sc[0];
                        let dy = c[1] - sc[1];
                        let dz = c[2] - sc[2];
                        if dx * dx + dy * dy + dz * dz <= d2max {
                            hits.push(j as usize);
                        }
                    }
                }
                IndexRanges::from_indices(hits)
            }
            Selection::Not(inner) => inner.evaluate(system).complement(system.len()),
            Selection::And(a, b) => a.evaluate(system).intersect(&b.evaluate(system)),
            Selection::Or(a, b) => a.evaluate(system).union(&b.evaluate(system)),
        }
    }
}

/// Parse a selection string.
pub fn parse_selection(text: &str) -> Result<Selection, String> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(format!("trailing tokens at position {}", p.pos));
    }
    Ok(expr)
}

fn tokenize(text: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | ')' | ':' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c if c.is_ascii_alphanumeric()
                || c == '_'
                || c == '-'
                || c == '+'
                || c == '\''
                || c == '.' =>
            {
                cur.push(c)
            }
            other => return Err(format!("unexpected character '{}'", other)),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(|s| s.as_str())
    }

    fn next(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<Selection, String> {
        let mut left = self.parse_and()?;
        while self.peek() == Some("or") {
            self.next();
            let right = self.parse_and()?;
            left = Selection::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Selection, String> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some("and") {
            self.next();
            let right = self.parse_unary()?;
            left = Selection::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Selection, String> {
        if self.peek() == Some("not") {
            self.next();
            let inner = self.parse_unary()?;
            return Ok(Selection::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn is_keyword(word: &str) -> bool {
        matches!(
            word,
            "and"
                | "or"
                | "not"
                | "("
                | ")"
                | ":"
                | "protein"
                | "water"
                | "lipid"
                | "ion"
                | "nucleic"
                | "ligand"
                | "all"
                | "none"
                | "resname"
                | "name"
                | "chain"
                | "index"
                | "resid"
                | "backbone"
                | "hydrogen"
                | "noh"
                | "within"
                | "of"
        )
    }

    fn take_names(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        while let Some(t) = self.peek() {
            if Self::is_keyword(t) {
                break;
            }
            names.push(t.to_ascii_uppercase());
            self.next();
        }
        names
    }

    fn parse_range_int(&mut self) -> Result<(i64, i64), String> {
        let a: i64 = self
            .next()
            .ok_or("expected number")?
            .parse()
            .map_err(|e| format!("bad number: {}", e))?;
        if self.peek() == Some(":") {
            self.next();
            let b: i64 = self
                .next()
                .ok_or("expected number after ':'")?
                .parse()
                .map_err(|e| format!("bad number: {}", e))?;
            Ok((a, b))
        } else {
            Ok((a, a))
        }
    }

    fn parse_primary(&mut self) -> Result<Selection, String> {
        let tok = self.next().ok_or("unexpected end of selection")?;
        match tok.as_str() {
            "protein" => Ok(Selection::Category(Category::Protein)),
            "water" => Ok(Selection::Category(Category::Water)),
            "lipid" => Ok(Selection::Category(Category::Lipid)),
            "ion" => Ok(Selection::Category(Category::Ion)),
            "nucleic" => Ok(Selection::Category(Category::NucleicAcid)),
            "ligand" => Ok(Selection::Category(Category::Ligand)),
            "all" => Ok(Selection::All),
            "none" => Ok(Selection::None),
            "backbone" => Ok(Selection::Backbone),
            "hydrogen" => Ok(Selection::Hydrogen),
            "noh" => Ok(Selection::Not(Box::new(Selection::Hydrogen))),
            "within" => {
                let dist: f32 = self
                    .next()
                    .ok_or("within needs a distance")?
                    .parse()
                    .map_err(|e| format!("bad distance: {}", e))?;
                if !(dist.is_finite() && dist >= 0.0) {
                    return Err("within distance must be a finite non-negative number".into());
                }
                if self.next().as_deref() != Some("of") {
                    return Err("expected 'of' after within distance".into());
                }
                let inner = self.parse_unary()?;
                Ok(Selection::Within(dist, Box::new(inner)))
            }
            "resname" => {
                let names = self.take_names();
                if names.is_empty() {
                    return Err("resname needs at least one name".into());
                }
                Ok(Selection::ResName(names))
            }
            "name" => {
                let names = self.take_names();
                if names.is_empty() {
                    return Err("name needs at least one name".into());
                }
                Ok(Selection::AtomName(names))
            }
            "chain" => {
                let names = self.take_names();
                if names.is_empty() {
                    return Err("chain needs at least one id".into());
                }
                let chains = names
                    .iter()
                    .map(|n| {
                        let mut it = n.chars();
                        match (it.next(), it.next()) {
                            (Some(c), None) => Ok(c),
                            _ => Err(format!("chain id must be one character, got '{}'", n)),
                        }
                    })
                    .collect::<Result<Vec<char>, String>>()?;
                Ok(Selection::Chain(chains))
            }
            "index" => {
                let (a, b) = self.parse_range_int()?;
                if a < 0 || b < a {
                    return Err("index range must be 0 <= a <= b".into());
                }
                // Single index means one atom; ranged form is half-open.
                let end = if a == b { a as usize + 1 } else { b as usize };
                Ok(Selection::Index(a as usize, end))
            }
            "resid" => {
                let (a, b) = self.parse_range_int()?;
                if b < a {
                    return Err("resid range must be a <= b".into());
                }
                Ok(Selection::Resid(a as i32, b as i32))
            }
            "(" => {
                let inner = self.parse_or()?;
                if self.next().as_deref() != Some(")") {
                    return Err("missing ')'".into());
                }
                Ok(inner)
            }
            other => Err(format!("unexpected token '{}'", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::pbc::PbcBox;
    use crate::system::Atom;

    fn atom(serial: u32, name: &str, resname: &str, resid: i32, chain: char) -> Atom {
        Atom {
            serial,
            name: name.to_string(),
            resname: resname.to_string(),
            resid,
            chain,
            element: Element::from_pdb_atom_name(name, resname),
            hetero: false,
        }
    }

    fn system() -> MolecularSystem {
        let atoms = vec![
            atom(1, "N", "ALA", 1, 'A'),
            atom(2, "CA", "ALA", 1, 'A'),
            atom(3, "CA", "GLY", 2, 'A'),
            atom(4, "OW", "SOL", 3, 'W'),
            atom(5, "P", "POPC", 4, 'L'),
            atom(6, "NA", "SOD", 5, 'I'),
        ];
        let n = atoms.len();
        MolecularSystem::from_atoms("t", atoms, vec![[0.0; 3]; n], PbcBox::zero())
    }

    #[test]
    fn keywords() {
        let s = system();
        assert_eq!(parse_selection("protein").unwrap().evaluate(&s).count(), 3);
        assert_eq!(parse_selection("water").unwrap().evaluate(&s).count(), 1);
        assert_eq!(parse_selection("lipid").unwrap().evaluate(&s).count(), 1);
        assert_eq!(parse_selection("ion").unwrap().evaluate(&s).count(), 1);
        assert_eq!(parse_selection("all").unwrap().evaluate(&s).count(), 6);
        assert_eq!(parse_selection("none").unwrap().evaluate(&s).count(), 0);
    }

    #[test]
    fn boolean_ops() {
        let s = system();
        assert_eq!(
            parse_selection("not protein").unwrap().evaluate(&s).count(),
            3
        );
        assert_eq!(
            parse_selection("protein or water")
                .unwrap()
                .evaluate(&s)
                .count(),
            4
        );
        assert_eq!(
            parse_selection("protein and name CA")
                .unwrap()
                .evaluate(&s)
                .count(),
            2
        );
        assert_eq!(
            parse_selection("not (protein or water)")
                .unwrap()
                .evaluate(&s)
                .count(),
            2
        );
    }

    #[test]
    fn precedence_and_binds_tighter() {
        let s = system();
        // "water or protein and name CA" == water or (protein and name CA)
        let r = parse_selection("water or protein and name CA")
            .unwrap()
            .evaluate(&s);
        assert_eq!(r.count(), 3);
    }

    #[test]
    fn resname_and_chain() {
        let s = system();
        assert_eq!(
            parse_selection("resname ALA SOL")
                .unwrap()
                .evaluate(&s)
                .count(),
            3
        );
        assert_eq!(parse_selection("chain A").unwrap().evaluate(&s).count(), 3);
        assert_eq!(
            parse_selection("chain W I").unwrap().evaluate(&s).count(),
            2
        );
    }

    #[test]
    fn index_and_resid() {
        let s = system();
        assert_eq!(
            parse_selection("index 0:3").unwrap().evaluate(&s).count(),
            3
        );
        assert_eq!(parse_selection("index 5").unwrap().evaluate(&s).count(), 1);
        assert_eq!(
            parse_selection("resid 1:2").unwrap().evaluate(&s).count(),
            3
        );
        assert_eq!(parse_selection("resid 4").unwrap().evaluate(&s).count(), 1);
    }

    #[test]
    fn index_clamps_to_system() {
        let s = system();
        assert_eq!(
            parse_selection("index 0:999").unwrap().evaluate(&s).count(),
            6
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_selection("").is_err());
        assert!(parse_selection("resname").is_err());
        assert!(parse_selection("(protein").is_err());
        assert!(parse_selection("protein extra").is_err());
        assert!(parse_selection("index 5:2").is_err());
        assert!(parse_selection("chain AB").is_err());
        assert!(parse_selection("@#!").is_err());
    }

    fn system_with_coords() -> MolecularSystem {
        let atoms = vec![
            atom(1, "N", "ALA", 1, 'A'),
            atom(2, "CA", "ALA", 1, 'A'),
            atom(3, "CB1", "ALA", 1, 'A'),
            atom(4, "HB1", "ALA", 1, 'A'),
            atom(5, "OW", "SOL", 2, 'W'),
            atom(6, "OW", "SOL", 3, 'W'),
        ];
        let coords = vec![
            [0.0, 0.0, 0.0],
            [0.15, 0.0, 0.0],
            [0.3, 0.0, 0.0],
            [0.35, 0.0, 0.0],
            [0.5, 0.0, 0.0], // close water
            [5.0, 5.0, 5.0], // distant water
        ];
        MolecularSystem::from_atoms("t", atoms, coords, PbcBox::zero())
    }

    #[test]
    fn backbone_and_hydrogen() {
        let s = system_with_coords();
        let bb = parse_selection("backbone").unwrap().evaluate(&s);
        assert_eq!(bb.iter_indices().collect::<Vec<_>>(), vec![0, 1]);
        let h = parse_selection("hydrogen").unwrap().evaluate(&s);
        assert_eq!(h.iter_indices().collect::<Vec<_>>(), vec![3]);
        let noh = parse_selection("noh").unwrap().evaluate(&s);
        assert_eq!(noh.count(), 5);
        assert!(!noh.contains(3));
    }

    #[test]
    fn within_distance_selects_shell() {
        let s = system_with_coords();
        // Water within 0.25 nm of protein: the close water (0.5 vs CB1 at
        // 0.3 → 0.2 nm), not the distant one.
        let sel = parse_selection("water and within 0.25 of protein")
            .unwrap()
            .evaluate(&s);
        assert_eq!(sel.iter_indices().collect::<Vec<_>>(), vec![4]);
        // within includes the seed itself.
        let sel2 = parse_selection("within 0.01 of protein")
            .unwrap()
            .evaluate(&s);
        assert_eq!(sel2.count(), 4);
    }

    #[test]
    fn within_parse_errors() {
        assert!(parse_selection("within of protein").is_err());
        assert!(parse_selection("within 1.0 protein").is_err());
        assert!(parse_selection("within -1.0 of protein").is_err());
    }

    #[test]
    fn double_negation() {
        let s = system();
        let a = parse_selection("protein").unwrap().evaluate(&s);
        let b = parse_selection("not not protein").unwrap().evaluate(&s);
        assert_eq!(a, b);
    }
}
