//! The application-conscious taxonomy.
//!
//! ADA's data pre-processor "categorizes the molecules and then stores them
//! by classes" (§3.4). The class of an atom is decided by its residue name —
//! the same information VMD's own `protein` / `water` / `lipid` selection
//! keywords use. The paper's prototype collapses the classes into two tags,
//! `p` (protein, active) and `m` (MISC, inactive); the full [`Category`]
//! remains available for the fine-grained queries of §4.1 and for the
//! future-work configurable taxonomy (see [`crate::category::Taxonomy`]).

use std::collections::BTreeMap;
use std::fmt;

/// Coarse molecular class of a residue/atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Amino-acid residues — the paper's *active* data.
    Protein,
    /// Solvent water (SOL/HOH/TIP3/...).
    Water,
    /// Membrane lipids (POPC/POPE/DPPC/...).
    Lipid,
    /// Monatomic ions (NA/CL/K/...).
    Ion,
    /// DNA/RNA residues.
    NucleicAcid,
    /// Small-molecule ligands and other HETATM groups.
    Ligand,
    /// Anything unrecognized.
    Other,
}

impl Category {
    /// All categories in a stable order.
    pub const ALL: [Category; 7] = [
        Category::Protein,
        Category::Water,
        Category::Lipid,
        Category::Ion,
        Category::NucleicAcid,
        Category::Ligand,
        Category::Other,
    ];

    /// Classify a residue name. Matching is case-insensitive on the trimmed
    /// name and follows the residue vocabularies of the PDB, CHARMM and
    /// GROMACS force fields.
    pub fn of_residue(resname: &str) -> Category {
        let r = resname.trim().to_ascii_uppercase();
        if PROTEIN_RESIDUES.contains(&r.as_str()) {
            Category::Protein
        } else if WATER_RESIDUES.contains(&r.as_str()) {
            Category::Water
        } else if LIPID_RESIDUES.contains(&r.as_str()) {
            Category::Lipid
        } else if ION_RESIDUES.contains(&r.as_str()) {
            Category::Ion
        } else if NUCLEIC_RESIDUES.contains(&r.as_str()) {
            Category::NucleicAcid
        } else if r.is_empty() {
            Category::Other
        } else {
            Category::Ligand
        }
    }

    /// The single-character tag the paper's prototype assigns: protein atoms
    /// get `p`, everything else is MISC and gets `m`.
    pub fn paper_tag(self) -> Tag {
        match self {
            Category::Protein => Tag::protein(),
            _ => Tag::misc(),
        }
    }

    /// A distinct fine-grained tag per category (the §4.1 extension where a
    /// user can ask for subsets beyond protein/MISC).
    pub fn fine_tag(self) -> Tag {
        match self {
            Category::Protein => Tag::new("p"),
            Category::Water => Tag::new("w"),
            Category::Lipid => Tag::new("l"),
            Category::Ion => Tag::new("i"),
            Category::NucleicAcid => Tag::new("n"),
            Category::Ligand => Tag::new("g"),
            Category::Other => Tag::new("o"),
        }
    }

    /// Whether the paper considers this class *active* (frequently accessed,
    /// analysed by host CPUs) for the GPCR study.
    pub fn is_active_for_gpcr(self) -> bool {
        matches!(self, Category::Protein)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Protein => "protein",
            Category::Water => "water",
            Category::Lipid => "lipid",
            Category::Ion => "ion",
            Category::NucleicAcid => "nucleic",
            Category::Ligand => "ligand",
            Category::Other => "other",
        };
        f.write_str(s)
    }
}

/// The 20 standard amino acids plus common variants (protonation states,
/// terminal caps) seen in CHARMM/AMBER/GROMACS output.
pub const PROTEIN_RESIDUES: &[&str] = &[
    "ALA", "ARG", "ASN", "ASP", "CYS", "GLN", "GLU", "GLY", "HIS", "ILE", "LEU", "LYS", "MET",
    "PHE", "PRO", "SER", "THR", "TRP", "TYR", "VAL", // variants
    "HSD", "HSE", "HSP", "HID", "HIE", "HIP", "ASH", "GLH", "LYN", "CYX", "CYM", "ACE", "NME",
    "NMA", "MSE",
];

/// Water residue names across force fields.
pub const WATER_RESIDUES: &[&str] = &[
    "HOH", "SOL", "WAT", "TIP3", "TIP4", "TIP5", "SPC", "SPCE", "T3P", "T4P",
];

/// Common membrane lipid residue names.
pub const LIPID_RESIDUES: &[&str] = &[
    "POPC", "POPE", "POPS", "POPG", "DPPC", "DOPC", "DOPE", "DMPC", "DLPC", "DSPC", "CHL1", "CHOL",
    "PSM", "SDPC",
];

/// Monatomic ion residue names.
pub const ION_RESIDUES: &[&str] = &[
    "NA", "NA+", "SOD", "CL", "CL-", "CLA", "K", "K+", "POT", "MG", "MG2", "CAL", "CA2", "ZN",
    "ZN2", "CES", "LIT",
];

/// Nucleic-acid residue names (DNA/RNA).
pub const NUCLEIC_RESIDUES: &[&str] = &[
    "DA", "DC", "DG", "DT", "A", "C", "G", "U", "ADE", "CYT", "GUA", "THY", "URA",
];

/// A short label attached to a data subset by the labeler ("**p**" and
/// "**m**" in the paper). Tags are small ASCII strings; comparisons are
/// case-sensitive byte comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(String);

impl Tag {
    /// Create a tag from an arbitrary label.
    pub fn new(label: impl Into<String>) -> Tag {
        Tag(label.into())
    }

    /// The paper's active/protein tag.
    pub fn protein() -> Tag {
        Tag::new("p")
    }

    /// The paper's inactive/MISC tag.
    pub fn misc() -> Tag {
        Tag::new("m")
    }

    /// Tag label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Tag {
    fn from(s: &str) -> Tag {
        Tag::new(s)
    }
}

/// A user-configurable taxonomy: residue name → tag.
///
/// This implements the paper's stated future work ("a dynamic data
/// categorizing and labeling interface through which a user can describe the
/// structure of his raw data in a configuration file", §6). A taxonomy is a
/// list of rules evaluated in order; the first match wins, with a default
/// tag for everything unmatched.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    rules: Vec<TaxonomyRule>,
    default_tag: Tag,
}

/// One rule of a [`Taxonomy`].
#[derive(Debug, Clone)]
pub struct TaxonomyRule {
    /// Residue names this rule matches (uppercased).
    pub residues: Vec<String>,
    /// Built-in category this rule matches, if any.
    pub category: Option<Category>,
    /// Tag to assign.
    pub tag: Tag,
}

impl Taxonomy {
    /// The taxonomy the paper's prototype hard-wires: protein → `p`,
    /// everything else → `m`.
    pub fn paper_default() -> Taxonomy {
        Taxonomy {
            rules: vec![TaxonomyRule {
                residues: Vec::new(),
                category: Some(Category::Protein),
                tag: Tag::protein(),
            }],
            default_tag: Tag::misc(),
        }
    }

    /// A taxonomy with one distinct tag per built-in category.
    pub fn fine_grained() -> Taxonomy {
        Taxonomy {
            rules: Category::ALL
                .iter()
                .map(|&c| TaxonomyRule {
                    residues: Vec::new(),
                    category: Some(c),
                    tag: c.fine_tag(),
                })
                .collect(),
            default_tag: Tag::new("o"),
        }
    }

    /// Build a taxonomy from explicit rules.
    pub fn new(rules: Vec<TaxonomyRule>, default_tag: Tag) -> Taxonomy {
        Taxonomy { rules, default_tag }
    }

    /// Parse the configuration-file syntax of the future-work interface.
    ///
    /// ```
    /// use ada_mdmodel::category::Taxonomy;
    ///
    /// let taxonomy = Taxonomy::parse_config(
    ///     "# GPCR membrane study\n\
    ///      tag p = category protein\n\
    ///      tag l = resname POPC POPE\n\
    ///      default m\n",
    /// ).unwrap();
    /// assert_eq!(taxonomy.tag_of("ALA").as_str(), "p");
    /// assert_eq!(taxonomy.tag_of("POPC").as_str(), "l");
    /// assert_eq!(taxonomy.tag_of("SOL").as_str(), "m");
    /// ```
    pub fn parse_config(text: &str) -> Result<Taxonomy, String> {
        let mut rules = Vec::new();
        let mut default_tag = Tag::misc();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("default") => {
                    let tag = words
                        .next()
                        .ok_or_else(|| format!("line {}: default needs a tag", lineno + 1))?;
                    default_tag = Tag::new(tag);
                }
                Some("tag") => {
                    let tag = words
                        .next()
                        .ok_or_else(|| format!("line {}: tag needs a label", lineno + 1))?;
                    if words.next() != Some("=") {
                        return Err(format!("line {}: expected '='", lineno + 1));
                    }
                    match words.next() {
                        Some("category") => {
                            let name = words.next().ok_or_else(|| {
                                format!("line {}: category needs a name", lineno + 1)
                            })?;
                            let category = match name.to_ascii_lowercase().as_str() {
                                "protein" => Category::Protein,
                                "water" => Category::Water,
                                "lipid" => Category::Lipid,
                                "ion" => Category::Ion,
                                "nucleic" => Category::NucleicAcid,
                                "ligand" => Category::Ligand,
                                "other" => Category::Other,
                                other => {
                                    return Err(format!(
                                        "line {}: unknown category '{}'",
                                        lineno + 1,
                                        other
                                    ))
                                }
                            };
                            rules.push(TaxonomyRule {
                                residues: Vec::new(),
                                category: Some(category),
                                tag: Tag::new(tag),
                            });
                        }
                        Some("resname") => {
                            let residues: Vec<String> =
                                words.map(|w| w.to_ascii_uppercase()).collect();
                            if residues.is_empty() {
                                return Err(format!(
                                    "line {}: resname needs at least one name",
                                    lineno + 1
                                ));
                            }
                            rules.push(TaxonomyRule {
                                residues,
                                category: None,
                                tag: Tag::new(tag),
                            });
                        }
                        other => {
                            return Err(format!(
                                "line {}: expected 'category' or 'resname', got {:?}",
                                lineno + 1,
                                other
                            ))
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "line {}: expected 'tag' or 'default', got {:?}",
                        lineno + 1,
                        other
                    ))
                }
            }
        }
        Ok(Taxonomy { rules, default_tag })
    }

    /// Serialize back to the configuration-file syntax accepted by
    /// [`Taxonomy::parse_config`] (round-trip property: parsing the output
    /// yields an equivalent taxonomy).
    pub fn to_config(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            if !rule.residues.is_empty() {
                out.push_str(&format!(
                    "tag {} = resname {}\n",
                    rule.tag,
                    rule.residues.join(" ")
                ));
            } else if let Some(cat) = rule.category {
                out.push_str(&format!("tag {} = category {}\n", rule.tag, cat));
            }
        }
        out.push_str(&format!("default {}\n", self.default_tag));
        out
    }

    /// Tag for a residue name (the categorizer's `GetType`).
    pub fn tag_of(&self, resname: &str) -> Tag {
        let upper = resname.trim().to_ascii_uppercase();
        let category = Category::of_residue(&upper);
        for rule in &self.rules {
            if rule.residues.iter().any(|r| r == &upper) {
                return rule.tag.clone();
            }
            if rule.category == Some(category) && rule.residues.is_empty() {
                return rule.tag.clone();
            }
        }
        self.default_tag.clone()
    }

    /// The default tag assigned when no rule matches.
    pub fn default_tag(&self) -> &Tag {
        &self.default_tag
    }

    /// All distinct tags this taxonomy can produce.
    pub fn all_tags(&self) -> Vec<Tag> {
        let mut set: BTreeMap<Tag, ()> = BTreeMap::new();
        for r in &self.rules {
            set.insert(r.tag.clone(), ());
        }
        set.insert(self.default_tag.clone(), ());
        set.into_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residue_classification() {
        assert_eq!(Category::of_residue("ALA"), Category::Protein);
        assert_eq!(Category::of_residue("arg"), Category::Protein);
        assert_eq!(Category::of_residue(" HSD "), Category::Protein);
        assert_eq!(Category::of_residue("SOL"), Category::Water);
        assert_eq!(Category::of_residue("TIP3"), Category::Water);
        assert_eq!(Category::of_residue("POPC"), Category::Lipid);
        assert_eq!(Category::of_residue("CHL1"), Category::Lipid);
        assert_eq!(Category::of_residue("SOD"), Category::Ion);
        assert_eq!(Category::of_residue("CLA"), Category::Ion);
        assert_eq!(Category::of_residue("DA"), Category::NucleicAcid);
        assert_eq!(Category::of_residue("LIG"), Category::Ligand);
        assert_eq!(Category::of_residue(""), Category::Other);
    }

    #[test]
    fn paper_tags_collapse_to_p_and_m() {
        assert_eq!(Category::Protein.paper_tag(), Tag::protein());
        for c in [Category::Water, Category::Lipid, Category::Ion] {
            assert_eq!(c.paper_tag(), Tag::misc());
        }
    }

    #[test]
    fn paper_default_taxonomy() {
        let t = Taxonomy::paper_default();
        assert_eq!(t.tag_of("ALA"), Tag::protein());
        assert_eq!(t.tag_of("SOL"), Tag::misc());
        assert_eq!(t.tag_of("POPC"), Tag::misc());
        assert_eq!(t.all_tags().len(), 2);
    }

    #[test]
    fn fine_grained_taxonomy_distinguishes_classes() {
        let t = Taxonomy::fine_grained();
        assert_eq!(t.tag_of("ALA").as_str(), "p");
        assert_eq!(t.tag_of("SOL").as_str(), "w");
        assert_eq!(t.tag_of("POPC").as_str(), "l");
        assert_eq!(t.tag_of("CLA").as_str(), "i");
    }

    #[test]
    fn config_parse_roundtrip() {
        let cfg = r#"
            # GPCR study: protein active, lipids separately, rest MISC
            tag p = category protein
            tag l = resname POPC POPE CHL1
            default m
        "#;
        let t = Taxonomy::parse_config(cfg).unwrap();
        assert_eq!(t.tag_of("GLY").as_str(), "p");
        assert_eq!(t.tag_of("POPC").as_str(), "l");
        assert_eq!(t.tag_of("chl1").as_str(), "l");
        assert_eq!(t.tag_of("SOL").as_str(), "m");
        assert_eq!(t.default_tag().as_str(), "m");
    }

    #[test]
    fn config_parse_errors() {
        assert!(Taxonomy::parse_config("tag p").is_err());
        assert!(Taxonomy::parse_config("tag p = frobnicate x").is_err());
        assert!(Taxonomy::parse_config("bogus line").is_err());
        assert!(Taxonomy::parse_config("tag p = category nonsuch").is_err());
        assert!(Taxonomy::parse_config("default").is_err());
        assert!(Taxonomy::parse_config("tag p = resname").is_err());
    }

    #[test]
    fn explicit_resname_rule_beats_category_rule_order() {
        // Rules are evaluated in order; a resname rule listed first wins.
        let cfg = "tag x = resname ALA\ntag p = category protein\ndefault m";
        let t = Taxonomy::parse_config(cfg).unwrap();
        assert_eq!(t.tag_of("ALA").as_str(), "x");
        assert_eq!(t.tag_of("GLY").as_str(), "p");
    }

    #[test]
    fn config_roundtrip_through_to_config() {
        for t in [
            Taxonomy::paper_default(),
            Taxonomy::fine_grained(),
            Taxonomy::parse_config("tag x = resname ALA GLY\ntag w = category water\ndefault q")
                .unwrap(),
        ] {
            let text = t.to_config();
            let back = Taxonomy::parse_config(&text).unwrap();
            for resname in ["ALA", "GLY", "SOL", "POPC", "SOD", "DA", "XYZ"] {
                assert_eq!(
                    t.tag_of(resname),
                    back.tag_of(resname),
                    "resname {}",
                    resname
                );
            }
            assert_eq!(t.default_tag(), back.default_tag());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = Taxonomy::parse_config("\n  # only comments\n\n").unwrap();
        assert_eq!(t.tag_of("ALA"), Tag::misc());
    }
}
