//! Distance-based bond inference.
//!
//! VMD derives bonds from inter-atomic distances when a structure file has
//! no explicit CONECT records: two atoms are bonded when their distance is
//! below `tolerance × (r_cov(a) + r_cov(b))`. A uniform cell grid makes the
//! search O(n) for liquid-like densities instead of O(n²).

use crate::element::Element;
use crate::system::MolecularSystem;

/// A covalent bond between two atom indices (`a < b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bond {
    /// Lower atom index.
    pub a: u32,
    /// Higher atom index.
    pub b: u32,
}

impl Bond {
    /// Construct with normalized ordering.
    pub fn new(a: u32, b: u32) -> Bond {
        if a <= b {
            Bond { a, b }
        } else {
            Bond { a: b, b: a }
        }
    }
}

/// Default VMD-like tolerance factor on the sum of covalent radii.
pub const DEFAULT_TOLERANCE: f32 = 1.2;

/// Infer bonds for `system` using `coords` (commonly the reference
/// coordinates, or a trajectory frame with matching atom count).
///
/// Hydrogens bond to at most one partner (their nearest candidate); no atom
/// exceeds 8 bonds (both caps mirror VMD's heuristics and keep degenerate
/// overlapping coordinates from producing quadratic bond lists).
pub fn infer_bonds(system: &MolecularSystem, coords: &[[f32; 3]], tolerance: f32) -> Vec<Bond> {
    assert_eq!(system.len(), coords.len(), "coords must match atom count");
    let n = coords.len();
    if n < 2 {
        return Vec::new();
    }

    // Maximum bond length bounds the grid cell size.
    let max_radius = system
        .atoms
        .iter()
        .map(|a| a.element.covalent_radius_nm())
        .fold(0.0f32, f32::max);
    let cutoff = (2.0 * max_radius * tolerance).max(1e-3);

    let grid = CellGrid::build(coords, cutoff);

    let mut bonds: Vec<Bond> = Vec::new();
    let mut degree = vec![0u8; n];
    // For hydrogens keep only the closest partner.
    let mut h_best: Vec<Option<(f32, u32)>> = vec![None; n];

    let mut neighbor_buffer = Vec::with_capacity(64);
    for i in 0..n {
        neighbor_buffer.clear();
        grid.neighbors_after(i, coords, cutoff, &mut neighbor_buffer);
        let ei = system.atoms[i].element;
        for &j in &neighbor_buffer {
            let ej = system.atoms[j as usize].element;
            let limit = tolerance * (ei.covalent_radius_nm() + ej.covalent_radius_nm());
            let d2 = dist2(coords[i], coords[j as usize]);
            if d2 < limit * limit && d2 > 1e-8 {
                let d = d2.sqrt();
                let i32_ = i as u32;
                if ei == Element::H {
                    update_h(&mut h_best, i, d, j);
                } else if ej == Element::H {
                    update_h(&mut h_best, j as usize, d, i32_);
                } else if degree[i] < 8 && degree[j as usize] < 8 {
                    bonds.push(Bond::new(i32_, j));
                    degree[i] += 1;
                    degree[j as usize] += 1;
                }
            }
        }
    }

    for (h, best) in h_best.iter().enumerate() {
        if let Some((_, partner)) = best {
            bonds.push(Bond::new(h as u32, *partner));
        }
    }
    bonds.sort_unstable();
    bonds.dedup();
    bonds
}

fn update_h(h_best: &mut [Option<(f32, u32)>], h: usize, d: f32, partner: u32) {
    match &mut h_best[h] {
        Some((best_d, best_p)) if d < *best_d => {
            *best_d = d;
            *best_p = partner;
        }
        Some(_) => {}
        slot @ None => *slot = Some((d, partner)),
    }
}

#[inline]
fn dist2(a: [f32; 3], b: [f32; 3]) -> f32 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// Uniform cell grid over the coordinate bounding box.
#[derive(Debug)]
pub struct CellGrid {
    origin: [f32; 3],
    cell: f32,
    dims: [usize; 3],
    /// CSR layout: atom ids grouped by cell.
    cell_start: Vec<u32>,
    atom_ids: Vec<u32>,
}

impl CellGrid {
    /// Build a grid with cell edge ≥ `cell_size` covering all points.
    pub fn build(coords: &[[f32; 3]], cell_size: f32) -> CellGrid {
        assert!(cell_size > 0.0);
        let mut lo = [f32::INFINITY; 3];
        let mut hi = [f32::NEG_INFINITY; 3];
        for p in coords {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        if coords.is_empty() {
            lo = [0.0; 3];
            hi = [0.0; 3];
        }
        // Grow the cell edge until the grid fits a sane budget — tiny
        // cutoffs over large spans must not allocate billions of cells.
        const MAX_CELLS: usize = 2 << 20;
        let mut cell = cell_size;
        let mut dims = [1usize; 3];
        loop {
            for d in 0..3 {
                dims[d] = (((hi[d] - lo[d]) / cell).floor() as usize + 1).max(1);
            }
            match dims[0]
                .checked_mul(dims[1])
                .and_then(|p| p.checked_mul(dims[2]))
            {
                Some(n) if n <= MAX_CELLS => break,
                _ => cell *= 2.0,
            }
        }
        let ncells = dims[0] * dims[1] * dims[2];

        let index_of = |p: &[f32; 3]| -> usize {
            let mut c = [0usize; 3];
            for d in 0..3 {
                c[d] = (((p[d] - lo[d]) / cell) as usize).min(dims[d] - 1);
            }
            (c[2] * dims[1] + c[1]) * dims[0] + c[0]
        };

        // Counting sort into CSR.
        let mut counts = vec![0u32; ncells + 1];
        for p in coords {
            counts[index_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut atom_ids = vec![0u32; coords.len()];
        let mut cursor = counts.clone();
        for (i, p) in coords.iter().enumerate() {
            let c = index_of(p);
            atom_ids[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        CellGrid {
            origin: lo,
            cell,
            dims,
            cell_start: counts,
            atom_ids,
        }
    }

    fn cell_of(&self, p: &[f32; 3]) -> [usize; 3] {
        let mut c = [0usize; 3];
        for d in 0..3 {
            c[d] = (((p[d] - self.origin[d]) / self.cell) as usize).min(self.dims[d] - 1);
        }
        c
    }

    /// Collect all atom ids in cells within `cutoff` of `point` (coarse,
    /// cell resolution) into `out`.
    pub fn neighbors_within(&self, point: [f32; 3], cutoff: f32, out: &mut Vec<u32>) {
        let c = self.cell_of(&point);
        let reach = (cutoff / self.cell).ceil() as isize;
        for dz in -reach..=reach {
            let z = c[2] as isize + dz;
            if z < 0 || z as usize >= self.dims[2] {
                continue;
            }
            for dy in -reach..=reach {
                let y = c[1] as isize + dy;
                if y < 0 || y as usize >= self.dims[1] {
                    continue;
                }
                for dx in -reach..=reach {
                    let x = c[0] as isize + dx;
                    if x < 0 || x as usize >= self.dims[0] {
                        continue;
                    }
                    let cell = (z as usize * self.dims[1] + y as usize) * self.dims[0] + x as usize;
                    let start = self.cell_start[cell] as usize;
                    let end = self.cell_start[cell + 1] as usize;
                    out.extend_from_slice(&self.atom_ids[start..end]);
                }
            }
        }
    }

    /// Collect candidate neighbors `j > i` within `cutoff` (coarse, cell
    /// resolution) into `out`.
    pub fn neighbors_after(&self, i: usize, coords: &[[f32; 3]], cutoff: f32, out: &mut Vec<u32>) {
        let c = self.cell_of(&coords[i]);
        let reach = (cutoff / self.cell).ceil() as isize;
        for dz in -reach..=reach {
            let z = c[2] as isize + dz;
            if z < 0 || z as usize >= self.dims[2] {
                continue;
            }
            for dy in -reach..=reach {
                let y = c[1] as isize + dy;
                if y < 0 || y as usize >= self.dims[1] {
                    continue;
                }
                for dx in -reach..=reach {
                    let x = c[0] as isize + dx;
                    if x < 0 || x as usize >= self.dims[0] {
                        continue;
                    }
                    let cell = (z as usize * self.dims[1] + y as usize) * self.dims[0] + x as usize;
                    let start = self.cell_start[cell] as usize;
                    let end = self.cell_start[cell + 1] as usize;
                    for &j in &self.atom_ids[start..end] {
                        if (j as usize) > i {
                            out.push(j);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbc::PbcBox;
    use crate::system::Atom;

    fn make_system(spec: &[(&str, &str, [f32; 3])]) -> (MolecularSystem, Vec<[f32; 3]>) {
        let atoms: Vec<Atom> = spec
            .iter()
            .enumerate()
            .map(|(i, (name, resname, _))| Atom {
                serial: i as u32 + 1,
                name: name.to_string(),
                resname: resname.to_string(),
                resid: 1,
                chain: 'A',
                element: Element::from_pdb_atom_name(name, resname),
                hetero: false,
            })
            .collect();
        let coords: Vec<[f32; 3]> = spec.iter().map(|(_, _, c)| *c).collect();
        let sys = MolecularSystem::from_atoms("t", atoms, coords.clone(), PbcBox::zero());
        (sys, coords)
    }

    #[test]
    fn water_molecule_bonds() {
        // O-H distances ~0.096 nm; H-H ~0.15 nm (should NOT bond H-H since
        // hydrogens take only their closest partner).
        let (sys, coords) = make_system(&[
            ("OW", "SOL", [0.0, 0.0, 0.0]),
            ("HW1", "SOL", [0.096, 0.0, 0.0]),
            ("HW2", "SOL", [-0.024, 0.093, 0.0]),
        ]);
        let bonds = infer_bonds(&sys, &coords, DEFAULT_TOLERANCE);
        assert_eq!(bonds, vec![Bond::new(0, 1), Bond::new(0, 2)]);
    }

    #[test]
    fn carbon_chain() {
        // C-C at 0.154 nm: bonded. Next-nearest at 0.308: not bonded.
        let (sys, coords) = make_system(&[
            ("C1", "LIG", [0.0, 0.0, 0.0]),
            ("C2", "LIG", [0.154, 0.0, 0.0]),
            ("C3", "LIG", [0.308, 0.0, 0.0]),
        ]);
        let bonds = infer_bonds(&sys, &coords, DEFAULT_TOLERANCE);
        assert_eq!(bonds, vec![Bond::new(0, 1), Bond::new(1, 2)]);
    }

    #[test]
    fn distant_atoms_unbonded() {
        let (sys, coords) = make_system(&[
            ("C1", "LIG", [0.0, 0.0, 0.0]),
            ("C2", "LIG", [1.0, 1.0, 1.0]),
        ]);
        assert!(infer_bonds(&sys, &coords, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn coincident_atoms_not_self_bonded() {
        let (sys, coords) = make_system(&[
            ("C1", "LIG", [0.0, 0.0, 0.0]),
            ("C2", "LIG", [0.0, 0.0, 0.0]),
        ]);
        // Distance² <= 1e-8 is rejected (overlapping atoms are treated as
        // bad input rather than bonded).
        assert!(infer_bonds(&sys, &coords, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn grid_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let spec: Vec<(String, String, [f32; 3])> = (0..200)
            .map(|_| {
                (
                    "C".to_string(),
                    "LIG".to_string(),
                    [
                        rng.gen_range(0.0..2.0f32),
                        rng.gen_range(0.0..2.0f32),
                        rng.gen_range(0.0..2.0f32),
                    ],
                )
            })
            .collect();
        let spec_ref: Vec<(&str, &str, [f32; 3])> = spec
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), *c))
            .collect();
        let (sys, coords) = make_system(&spec_ref);
        let got = infer_bonds(&sys, &coords, DEFAULT_TOLERANCE);

        // Brute force reference (all carbons, no caps assumed to trigger).
        let limit = DEFAULT_TOLERANCE * 2.0 * Element::C.covalent_radius_nm();
        let mut expect = Vec::new();
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len() {
                let d2 = dist2(coords[i], coords[j]);
                if d2 < limit * limit && d2 > 1e-8 {
                    expect.push(Bond::new(i as u32, j as u32));
                }
            }
        }
        expect.sort_unstable();
        // Degree caps may drop bonds in pathological clusters; with random
        // sparse points equality should hold.
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_single() {
        let (sys, coords) = make_system(&[]);
        assert!(infer_bonds(&sys, &coords, DEFAULT_TOLERANCE).is_empty());
        let (sys1, coords1) = make_system(&[("C", "LIG", [0.0; 3])]);
        assert!(infer_bonds(&sys1, &coords1, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn hydrogen_prefers_nearest_heavy_atom() {
        let (sys, coords) = make_system(&[
            ("C1", "LIG", [0.0, 0.0, 0.0]),
            ("O1", "LIG", [0.2, 0.0, 0.0]),
            // H nearer to O than C.
            ("H1", "LIG", [0.13, 0.0, 0.0]),
        ]);
        let bonds = infer_bonds(&sys, &coords, DEFAULT_TOLERANCE);
        assert!(bonds.contains(&Bond::new(1, 2)));
        assert!(!bonds.contains(&Bond::new(0, 2)));
    }
}
