//! Sorted disjoint half-open index ranges.
//!
//! Algorithm 1 of the paper produces, per tag, a list of `[begin, end)`
//! atom-index ranges ("Data Subset Ranges"). [`IndexRanges`] is that value:
//! a normalized (sorted, disjoint, coalesced) set of half-open ranges over
//! `usize` indices, with the set operations the indexer and splitter need.

use std::ops::Range;

/// A normalized set of half-open index ranges.
///
/// ```
/// use ada_mdmodel::IndexRanges;
///
/// let protein = IndexRanges::from_ranges([0..100, 150..200]);
/// let misc = protein.complement(300);
/// assert_eq!(protein.count(), 150);
/// assert_eq!(misc.count(), 150);
/// assert!(protein.intersect(&misc).is_empty());
///
/// // The splitter's core operation: gather a tagged subset.
/// let data: Vec<u32> = (0..300).collect();
/// let subset = protein.gather(&data);
/// assert_eq!(subset.len(), 150);
/// assert_eq!(subset[100], 150); // second run starts at index 150
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexRanges {
    /// Invariant: sorted by start, non-empty, non-overlapping, and
    /// non-adjacent (adjacent ranges are coalesced).
    ranges: Vec<Range<usize>>,
}

impl IndexRanges {
    /// The empty set.
    pub fn new() -> IndexRanges {
        IndexRanges::default()
    }

    /// A single contiguous range. Empty input ranges yield the empty set.
    pub fn single(range: Range<usize>) -> IndexRanges {
        let mut r = IndexRanges::new();
        r.push(range);
        r
    }

    /// Build from an arbitrary list of (possibly overlapping, unsorted)
    /// ranges.
    pub fn from_ranges(iter: impl IntoIterator<Item = Range<usize>>) -> IndexRanges {
        let mut raw: Vec<Range<usize>> = iter.into_iter().filter(|r| r.start < r.end).collect();
        raw.sort_by_key(|r| r.start);
        let mut out = IndexRanges::new();
        for r in raw {
            out.push(r);
        }
        out
    }

    /// Build from individual indices (need not be sorted or unique).
    pub fn from_indices(iter: impl IntoIterator<Item = usize>) -> IndexRanges {
        let mut idx: Vec<usize> = iter.into_iter().collect();
        idx.sort_unstable();
        idx.dedup();
        let mut out = IndexRanges::new();
        for i in idx {
            out.push(i..i + 1);
        }
        out
    }

    /// Append a range, coalescing with the tail when sorted input is pushed;
    /// out-of-order pushes fall back to a merge.
    pub fn push(&mut self, range: Range<usize>) {
        if range.start >= range.end {
            return;
        }
        match self.ranges.last_mut() {
            Some(last) if range.start > last.end => self.ranges.push(range),
            Some(last) if range.start >= last.start => {
                // Overlapping or adjacent with the tail: extend.
                last.end = last.end.max(range.end);
            }
            Some(_) => {
                // Out of order: rebuild.
                let mut all = std::mem::take(&mut self.ranges);
                all.push(range);
                *self = IndexRanges::from_ranges(all);
            }
            None => self.ranges.push(range),
        }
    }

    /// Number of indices covered.
    pub fn count(&self) -> usize {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// True when no index is covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of maximal contiguous runs.
    pub fn run_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether `index` is covered.
    pub fn contains(&self, index: usize) -> bool {
        // Binary search over starts.
        self.ranges
            .binary_search_by(|r| {
                if index < r.start {
                    std::cmp::Ordering::Greater
                } else if index >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterate the contiguous ranges.
    pub fn iter_ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.ranges.iter().cloned()
    }

    /// Iterate every covered index in ascending order.
    pub fn iter_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(|r| r.clone())
    }

    /// Smallest covered index, if any.
    pub fn min(&self) -> Option<usize> {
        self.ranges.first().map(|r| r.start)
    }

    /// One past the largest covered index, if any.
    pub fn end(&self) -> Option<usize> {
        self.ranges.last().map(|r| r.end)
    }

    /// Set union.
    pub fn union(&self, other: &IndexRanges) -> IndexRanges {
        IndexRanges::from_ranges(self.iter_ranges().chain(other.iter_ranges()))
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IndexRanges) -> IndexRanges {
        let mut out = IndexRanges::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = &self.ranges[i];
            let b = &other.ranges[j];
            let start = a.start.max(b.start);
            let end = a.end.min(b.end);
            if start < end {
                out.push(start..end);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Complement within `0..universe`.
    pub fn complement(&self, universe: usize) -> IndexRanges {
        let mut out = IndexRanges::new();
        let mut cursor = 0usize;
        for r in &self.ranges {
            let start = r.start.min(universe);
            if cursor < start {
                out.push(cursor..start);
            }
            cursor = cursor.max(r.end.min(universe));
        }
        if cursor < universe {
            out.push(cursor..universe);
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IndexRanges) -> IndexRanges {
        match self.end() {
            None => IndexRanges::new(),
            Some(end) => self.intersect(&other.complement(end)),
        }
    }

    /// Gather the covered elements of `source` into a new Vec (the splitter's
    /// core operation: extracting a tagged subset of per-atom data).
    pub fn gather<T: Copy>(&self, source: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(self.count());
        self.gather_into(source, &mut out);
        out
    }

    /// Gather into a caller-owned buffer, clearing it first.
    ///
    /// Equivalent to [`gather`](Self::gather) but reuses `out`'s
    /// allocation, so a loop gathering once per frame performs no heap
    /// allocation after the first iteration. Ranges extending past
    /// `source` are clamped, exactly as in `gather`.
    pub fn gather_into<T: Copy>(&self, source: &[T], out: &mut Vec<T>) {
        out.clear();
        out.reserve(self.count());
        for r in &self.ranges {
            out.extend_from_slice(&source[r.start.min(source.len())..r.end.min(source.len())]);
        }
    }

    /// Scatter `values` (one per covered index, ascending) into `dest`.
    /// Panics if `values` is shorter than [`count`](Self::count) or `dest`
    /// does not cover the maximum index.
    pub fn scatter<T: Copy>(&self, values: &[T], dest: &mut [T]) {
        let mut k = 0usize;
        for r in &self.ranges {
            let n = r.end - r.start;
            dest[r.start..r.end].copy_from_slice(&values[k..k + n]);
            k += n;
        }
    }
}

impl FromIterator<Range<usize>> for IndexRanges {
    fn from_iter<I: IntoIterator<Item = Range<usize>>>(iter: I) -> IndexRanges {
        IndexRanges::from_ranges(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_and_count() {
        let r = IndexRanges::single(3..7);
        assert_eq!(r.count(), 4);
        assert_eq!(r.run_count(), 1);
        assert!(r.contains(3));
        assert!(r.contains(6));
        assert!(!r.contains(7));
        assert!(!r.contains(2));
    }

    #[test]
    fn empty_range_ignored() {
        assert!(IndexRanges::single(5..5).is_empty());
        #[allow(clippy::reversed_empty_ranges)] // deliberately inverted input
        let inverted = IndexRanges::single(7..3);
        assert!(inverted.is_empty());
    }

    #[test]
    fn push_coalesces_adjacent() {
        let mut r = IndexRanges::new();
        r.push(0..3);
        r.push(3..5);
        assert_eq!(r.run_count(), 1);
        assert_eq!(r.count(), 5);
    }

    #[test]
    fn push_out_of_order_normalizes() {
        let mut r = IndexRanges::new();
        r.push(10..12);
        r.push(0..2);
        r.push(11..15);
        assert_eq!(r.run_count(), 2);
        assert_eq!(r.count(), 2 + 5);
        assert_eq!(
            r.iter_indices().collect::<Vec<_>>(),
            vec![0, 1, 10, 11, 12, 13, 14]
        );
    }

    #[test]
    fn from_indices_merges_runs() {
        let r = IndexRanges::from_indices([5, 1, 2, 3, 9, 10, 2]);
        assert_eq!(r.run_count(), 3);
        assert_eq!(r.count(), 6);
        assert_eq!(r.min(), Some(1));
        assert_eq!(r.end(), Some(11));
    }

    #[test]
    fn union_intersect_difference() {
        let a = IndexRanges::from_ranges([0..5, 10..15]);
        let b = IndexRanges::single(3..12);
        assert_eq!(a.union(&b), IndexRanges::single(0..15));
        assert_eq!(a.intersect(&b), IndexRanges::from_ranges([3..5, 10..12]));
        assert_eq!(a.difference(&b), IndexRanges::from_ranges([0..3, 12..15]));
    }

    #[test]
    fn complement_basics() {
        let a = IndexRanges::from_ranges([2..4, 6..8]);
        assert_eq!(
            a.complement(10),
            IndexRanges::from_ranges([0..2, 4..6, 8..10])
        );
        assert_eq!(IndexRanges::new().complement(3), IndexRanges::single(0..3));
        assert_eq!(IndexRanges::single(0..3).complement(3), IndexRanges::new());
    }

    #[test]
    fn complement_clamps_to_universe() {
        let a = IndexRanges::single(2..100);
        assert_eq!(a.complement(5), IndexRanges::single(0..2));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let data: Vec<u32> = (0..20).collect();
        let sel = IndexRanges::from_ranges([2..5, 9..12, 19..20]);
        let gathered = sel.gather(&data);
        assert_eq!(gathered, vec![2, 3, 4, 9, 10, 11, 19]);
        let mut dest = vec![0u32; 20];
        sel.scatter(&gathered, &mut dest);
        for i in sel.iter_indices() {
            assert_eq!(dest[i], data[i]);
        }
    }

    #[test]
    fn gather_into_matches_gather() {
        let data: Vec<u32> = (0..20).collect();
        let sel = IndexRanges::from_ranges([2..5, 9..12, 19..20]);
        let mut buf = Vec::new();
        sel.gather_into(&data, &mut buf);
        assert_eq!(buf, sel.gather(&data));
    }

    #[test]
    fn gather_into_clears_and_reuses_buffer() {
        let data: Vec<u32> = (0..50).collect();
        let big = IndexRanges::single(0..50);
        let small = IndexRanges::single(10..13);
        let mut buf = Vec::new();
        big.gather_into(&data, &mut buf);
        assert_eq!(buf.len(), 50);
        let cap = buf.capacity();
        // A smaller gather reuses the larger allocation (no realloc, stale
        // contents gone).
        small.gather_into(&data, &mut buf);
        assert_eq!(buf, vec![10, 11, 12]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn gather_into_empty_ranges_yields_empty() {
        let data: Vec<u32> = (0..10).collect();
        let mut buf = vec![99u32; 4];
        IndexRanges::new().gather_into(&data, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn gather_into_clamps_past_source_end() {
        let data: Vec<u32> = (0..10).collect();
        let sel = IndexRanges::from_ranges([5..8, 9..30]);
        let mut buf = Vec::new();
        sel.gather_into(&data, &mut buf);
        assert_eq!(buf, sel.gather(&data));
        assert_eq!(buf, vec![5, 6, 7, 9]);
    }

    fn arb_ranges(max: usize) -> impl Strategy<Value = IndexRanges> {
        prop::collection::vec((0..max, 0..max), 0..12).prop_map(|pairs| {
            IndexRanges::from_ranges(
                pairs
                    .into_iter()
                    .map(|(a, b)| if a <= b { a..b } else { b..a }),
            )
        })
    }

    proptest! {
        #[test]
        fn prop_normalized_invariant(r in arb_ranges(200)) {
            let v: Vec<_> = r.iter_ranges().collect();
            for w in v.windows(2) {
                // Sorted, disjoint, non-adjacent.
                prop_assert!(w[0].end < w[1].start);
            }
            for rr in &v {
                prop_assert!(rr.start < rr.end);
            }
        }

        #[test]
        fn prop_union_count_via_membership(a in arb_ranges(100), b in arb_ranges(100)) {
            let u = a.union(&b);
            for i in 0..100usize {
                prop_assert_eq!(u.contains(i), a.contains(i) || b.contains(i));
            }
        }

        #[test]
        fn prop_intersect_matches_membership(a in arb_ranges(100), b in arb_ranges(100)) {
            let x = a.intersect(&b);
            for i in 0..100usize {
                prop_assert_eq!(x.contains(i), a.contains(i) && b.contains(i));
            }
        }

        #[test]
        fn prop_complement_partitions(a in arb_ranges(100)) {
            let c = a.complement(100);
            prop_assert_eq!(a.count() + c.count(), 100);
            prop_assert!(a.intersect(&c).is_empty());
        }

        #[test]
        fn prop_difference_matches_membership(a in arb_ranges(100), b in arb_ranges(100)) {
            let d = a.difference(&b);
            for i in 0..100usize {
                prop_assert_eq!(d.contains(i), a.contains(i) && !b.contains(i));
            }
        }

        #[test]
        fn prop_from_indices_roundtrip(mut idx in prop::collection::vec(0usize..500, 0..60)) {
            let r = IndexRanges::from_indices(idx.clone());
            idx.sort_unstable();
            idx.dedup();
            prop_assert_eq!(r.iter_indices().collect::<Vec<_>>(), idx);
        }

        #[test]
        fn prop_gather_matches_iter(a in arb_ranges(80)) {
            let data: Vec<usize> = (0..80).collect();
            let g = a.gather(&data);
            let expect: Vec<usize> = a.iter_indices().collect();
            prop_assert_eq!(g, expect);
        }

        #[test]
        fn prop_gather_into_equals_gather(a in arb_ranges(120), src_len in 0usize..120) {
            // Source may be shorter than the selection's end: both paths
            // must clamp identically.
            let data: Vec<usize> = (0..src_len).collect();
            let mut buf = vec![777usize; 5];
            a.gather_into(&data, &mut buf);
            prop_assert_eq!(buf, a.gather(&data));
        }

        #[test]
        fn prop_gather_into_scatter_roundtrip(a in arb_ranges(60)) {
            let data: Vec<usize> = (100..160).collect();
            let mut buf = Vec::new();
            a.gather_into(&data, &mut buf);
            let mut dest = vec![0usize; 60];
            a.scatter(&buf, &mut dest);
            for i in a.iter_indices() {
                prop_assert_eq!(dest[i], data[i]);
            }
        }
    }
}
