//! Chemical elements with the handful of per-element properties the rest of
//! the stack needs: mass (memory/size accounting sanity checks) and covalent
//! radius (bond inference in the renderer).

/// Chemical element of an atom.
///
/// Only elements that actually occur in MD systems of the GPCR kind are
/// enumerated; everything else maps to [`Element::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    H,
    C,
    N,
    O,
    P,
    S,
    Na,
    Cl,
    K,
    Mg,
    Ca,
    Zn,
    Fe,
    /// Anything not covered above (e.g. exotic hetero groups).
    Other,
}

impl Element {
    /// Guess the element from a PDB atom name (columns 13-16) and residue
    /// name. PDB atom names right-pad the element and may prefix a digit for
    /// hydrogens ("1HB2"); the element is the first alphabetic character,
    /// except for two-letter ions which are matched explicitly.
    pub fn from_pdb_atom_name(name: &str, resname: &str) -> Element {
        let trimmed = name.trim();
        let upper = trimmed.to_ascii_uppercase();
        // Two-letter ions / metals are usually their own residue.
        match resname.trim().to_ascii_uppercase().as_str() {
            "NA" | "NA+" | "SOD" => return Element::Na,
            "CL" | "CL-" | "CLA" => return Element::Cl,
            "K" | "K+" | "POT" => return Element::K,
            "MG" | "MG2" => return Element::Mg,
            "CAL" | "CA2" => return Element::Ca,
            "ZN" | "ZN2" => return Element::Zn,
            _ => {}
        }
        // Explicit two-letter element spellings inside larger residues.
        if upper.starts_with("NA") && upper.len() <= 3 {
            return Element::Na;
        }
        if upper.starts_with("CL") && upper.len() <= 3 {
            return Element::Cl;
        }
        if upper.starts_with("FE") {
            return Element::Fe;
        }
        if upper.starts_with("ZN") {
            return Element::Zn;
        }
        if upper.starts_with("MG") {
            return Element::Mg;
        }
        let first_alpha = upper.chars().find(|c| c.is_ascii_alphabetic());
        match first_alpha {
            Some('H') => Element::H,
            Some('C') => Element::C,
            Some('N') => Element::N,
            Some('O') => Element::O,
            Some('P') => Element::P,
            Some('S') => Element::S,
            Some('K') => Element::K,
            _ => Element::Other,
        }
    }

    /// Standard atomic mass in unified atomic mass units (Daltons).
    pub fn mass(self) -> f32 {
        match self {
            Element::H => 1.008,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::P => 30.974,
            Element::S => 32.06,
            Element::Na => 22.990,
            Element::Cl => 35.45,
            Element::K => 39.098,
            Element::Mg => 24.305,
            Element::Ca => 40.078,
            Element::Zn => 65.38,
            Element::Fe => 55.845,
            Element::Other => 20.0,
        }
    }

    /// Covalent radius in nanometres; pairs of atoms closer than the sum of
    /// radii times a tolerance are treated as bonded (VMD uses the same
    /// distance heuristic when a file carries no CONECT records).
    pub fn covalent_radius_nm(self) -> f32 {
        match self {
            Element::H => 0.031,
            Element::C => 0.076,
            Element::N => 0.071,
            Element::O => 0.066,
            Element::P => 0.107,
            Element::S => 0.105,
            Element::Na => 0.166,
            Element::Cl => 0.102,
            Element::K => 0.203,
            Element::Mg => 0.141,
            Element::Ca => 0.176,
            Element::Zn => 0.122,
            Element::Fe => 0.132,
            Element::Other => 0.12,
        }
    }

    /// One-letter symbol used when writing PDB element columns (77-78).
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::P => "P",
            Element::S => "S",
            Element::Na => "NA",
            Element::Cl => "CL",
            Element::K => "K",
            Element::Mg => "MG",
            Element::Ca => "CA",
            Element::Zn => "ZN",
            Element::Fe => "FE",
            Element::Other => "X",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrogen_with_digit_prefix() {
        assert_eq!(Element::from_pdb_atom_name("1HB2", "ALA"), Element::H);
        assert_eq!(Element::from_pdb_atom_name(" HG1", "THR"), Element::H);
    }

    #[test]
    fn backbone_atoms() {
        assert_eq!(Element::from_pdb_atom_name(" CA ", "GLY"), Element::C);
        assert_eq!(Element::from_pdb_atom_name(" N  ", "GLY"), Element::N);
        assert_eq!(Element::from_pdb_atom_name(" O  ", "GLY"), Element::O);
        assert_eq!(Element::from_pdb_atom_name(" SD ", "MET"), Element::S);
    }

    #[test]
    fn ions_by_residue() {
        assert_eq!(Element::from_pdb_atom_name("NA", "SOD"), Element::Na);
        assert_eq!(Element::from_pdb_atom_name("CLA", "CLA"), Element::Cl);
        assert_eq!(Element::from_pdb_atom_name("K", "POT"), Element::K);
    }

    #[test]
    fn calcium_vs_alpha_carbon() {
        // " CA " in a protein residue is an alpha carbon, not calcium.
        assert_eq!(Element::from_pdb_atom_name(" CA ", "LEU"), Element::C);
        assert_eq!(Element::from_pdb_atom_name("CA", "CA2"), Element::Ca);
    }

    #[test]
    fn lipid_phosphorus() {
        assert_eq!(Element::from_pdb_atom_name(" P  ", "POPC"), Element::P);
    }

    #[test]
    fn masses_are_positive_and_ordered() {
        assert!(Element::H.mass() < Element::C.mass());
        assert!(Element::C.mass() < Element::Fe.mass());
        for e in [
            Element::H,
            Element::C,
            Element::N,
            Element::O,
            Element::P,
            Element::S,
            Element::Na,
            Element::Cl,
            Element::K,
            Element::Mg,
            Element::Ca,
            Element::Zn,
            Element::Fe,
            Element::Other,
        ] {
            assert!(e.mass() > 0.0);
            assert!(e.covalent_radius_nm() > 0.0);
        }
    }
}
