#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

//! # ada-cache — hot-set cache of decoded droppings
//!
//! A shuffled-epoch sampling workload (the ML-training access pattern from
//! the ROADMAP) revisits the same tagged droppings every epoch, in a
//! different order each time. Without a cache, every revisit pays full
//! fetch + XTCF decode cost; the hot set is inflated from scratch on each
//! hit. This crate keeps **decoded frame payloads** resident:
//!
//! * keyed by `(dataset, tag, dropping)` — [`CacheKey`] — where `dropping`
//!   is the dropping's logical offset within its `(dataset, tag)` stream;
//! * **sharded**: each shard is an independent `parking_lot::Mutex` over a
//!   map + CLOCK ring, so concurrent clients on different droppings do not
//!   serialize on one lock;
//! * bounded by a **byte budget** split evenly across shards, enforced
//!   with CLOCK (second-chance) eviction — a hit sets the referenced bit,
//!   the eviction hand clears it, and only unreferenced entries are
//!   dropped;
//! * **admission-gated by heat**: callers pass the per-tag access count
//!   (from `ada_core::tiering::heat_snapshot`) at insert time; cold
//!   one-shot reads bypass the store instead of thrashing the hot set.
//!
//! Entries are [`Arc`]-wrapped, so eviction never invalidates a payload an
//! in-flight reader already holds. The correctness contract — cached and
//! uncached reads byte-identical — is enforced by the integration suite in
//! `tests/sampling_cache.rs` and the property tests at the bottom of this
//! file.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ada_mdformats::Frame;
use ada_telemetry::{Counter, Gauge, Histogram};
use parking_lot::Mutex;

/// Tuning knobs for the decoded-dropping cache.
///
/// The zero-capacity default disables caching entirely: lookups
/// short-circuit to a miss without taking any lock, so a cache-off `Ada`
/// pays nothing beyond a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all shards. `0` disables the cache.
    pub capacity_bytes: u64,
    /// Number of independent shards (clamped to ≥ 1).
    pub shards: usize,
    /// Minimum per-tag heat (prior access count) required to admit an
    /// entry. Reads of tags seen fewer times than this bypass the cache.
    pub min_heat: u64,
    /// Droppings to decode ahead of a range read (0 = no readahead).
    pub readahead: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 0,
            shards: 8,
            min_heat: 2,
            readahead: 0,
        }
    }
}

impl CacheConfig {
    /// A cache sized for the sampling workload: the given budget, default
    /// sharding, admission after one prior access, no readahead.
    pub fn with_capacity(capacity_bytes: u64) -> CacheConfig {
        CacheConfig {
            capacity_bytes,
            ..CacheConfig::default()
        }
    }

    /// True when the budget is non-zero.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }
}

/// Identity of one decoded dropping.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Dataset label.
    pub dataset: String,
    /// Tag whose stream the dropping belongs to.
    pub tag: String,
    /// Logical offset of the dropping within the `(dataset, tag)` stream.
    pub dropping: u64,
}

impl CacheKey {
    /// Build a key.
    pub fn new(dataset: &str, tag: &str, dropping: u64) -> CacheKey {
        CacheKey {
            dataset: dataset.to_string(),
            tag: tag.to_string(),
            dropping,
        }
    }

    /// FNV-1a over the key fields — deterministic across runs (unlike
    /// `std` `RandomState`), cheap, and well-mixed enough for shard
    /// selection.
    fn shard_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.dataset.as_bytes());
        eat(&[0xff]);
        eat(self.tag.as_bytes());
        eat(&[0xff]);
        eat(&self.dropping.to_le_bytes());
        h
    }
}

/// A decoded dropping held at chunk granularity (XTCF v2's unit of random
/// access): the dropping's chunk layout (frame count per chunk) plus
/// whichever chunks are actually resident. v1 droppings and whole decodes
/// are a single complete chunk. Keys stay per-dropping, but a partial
/// window admits only the chunks it touched — cold chunks never occupy
/// budget, and a later read that needs more chunks re-inserts a richer
/// payload (see [`DecodedCache::insert`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedDropping {
    /// Atom count validated against the label file when decoded.
    pub natoms: usize,
    /// Frame count of each chunk, in dropping order (the full layout,
    /// resident or not).
    chunk_nframes: Vec<u32>,
    /// Resident chunks, parallel to `chunk_nframes`; `None` = not decoded.
    chunks: Vec<Option<Arc<Vec<Frame>>>>,
}

impl DecodedDropping {
    /// A fully resident single-chunk payload (v1 droppings, whole
    /// decodes).
    pub fn complete(frames: Vec<Frame>, natoms: usize) -> DecodedDropping {
        let n = frames.len() as u32;
        DecodedDropping {
            natoms,
            chunk_nframes: vec![n],
            chunks: vec![Some(Arc::new(frames))],
        }
    }

    /// A payload with the given chunk layout and residency. `chunks` must
    /// be parallel to `chunk_nframes` and each resident chunk must hold
    /// exactly its declared frame count.
    pub fn from_chunks(
        chunk_nframes: Vec<u32>,
        chunks: Vec<Option<Arc<Vec<Frame>>>>,
        natoms: usize,
    ) -> DecodedDropping {
        debug_assert_eq!(chunk_nframes.len(), chunks.len());
        DecodedDropping {
            natoms,
            chunk_nframes,
            chunks,
        }
    }

    /// Number of chunks in the dropping's layout.
    pub fn nchunks(&self) -> usize {
        self.chunk_nframes.len()
    }

    /// Total frames across the layout (resident or not).
    pub fn nframes(&self) -> usize {
        self.chunk_nframes.iter().map(|&n| n as usize).sum()
    }

    /// The resident frames of chunk `i`, if decoded.
    pub fn chunk(&self, i: usize) -> Option<&Arc<Vec<Frame>>> {
        self.chunks.get(i).and_then(|c| c.as_ref())
    }

    /// The chunk layout (frame count per chunk).
    pub fn chunk_layout(&self) -> &[u32] {
        &self.chunk_nframes
    }

    /// True when every chunk is resident.
    pub fn is_complete(&self) -> bool {
        self.chunks.iter().all(|c| c.is_some())
    }

    /// Chunk index and offset-within-chunk of dropping-local frame
    /// `local`, if inside the layout.
    pub fn locate(&self, local: usize) -> Option<(usize, usize)> {
        let mut at = 0usize;
        for (i, &n) in self.chunk_nframes.iter().enumerate() {
            let n = n as usize;
            if local < at + n {
                return Some((i, local - at));
            }
            at += n;
        }
        None
    }

    /// Dropping-local frame `local`, if its chunk is resident.
    pub fn frame(&self, local: usize) -> Option<&Frame> {
        let (c, off) = self.locate(local)?;
        self.chunks[c].as_ref()?.get(off)
    }

    /// True when every listed dropping-local frame is resident.
    pub fn has_frames(&self, locals: &[usize]) -> bool {
        locals.iter().all(|&l| self.frame(l).is_some())
    }

    /// All frames in dropping order, consuming the payload; `None` if any
    /// chunk is missing.
    pub fn into_frames(self) -> Option<Vec<Frame>> {
        let mut out = Vec::with_capacity(self.nframes());
        for c in self.chunks {
            match Arc::try_unwrap(c?) {
                Ok(v) => out.extend(v),
                Err(shared) => out.extend(shared.iter().cloned()),
            }
        }
        Some(out)
    }

    /// All frames in dropping order, cloned; `None` if any chunk is
    /// missing.
    pub fn cloned_frames(&self) -> Option<Vec<Frame>> {
        let mut out = Vec::with_capacity(self.nframes());
        for c in &self.chunks {
            out.extend(c.as_ref()?.iter().cloned());
        }
        Some(out)
    }

    /// Resident cost of this payload in bytes (only decoded chunks count).
    pub fn cost(&self) -> u64 {
        self.chunks
            .iter()
            .flatten()
            .flat_map(|c| c.iter())
            .map(|f| f.nbytes() as u64)
            .sum()
    }
}

/// Why an insert did not land in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Stored (or already present).
    Admitted,
    /// Tag heat below [`CacheConfig::min_heat`] — cold one-shot read.
    ColdBypass,
    /// Payload larger than a whole shard's budget.
    TooLarge,
    /// Cache disabled (zero budget).
    Disabled,
}

/// One resident entry in a shard's CLOCK ring.
#[derive(Debug)]
struct Slot {
    key: CacheKey,
    payload: Arc<DecodedDropping>,
    cost: u64,
    referenced: bool,
}

/// One shard: key → slot map plus the CLOCK ring the hand walks.
#[derive(Debug, Default)]
struct Shard {
    map: BTreeMap<CacheKey, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
    resident: u64,
}

impl Shard {
    /// Evict unreferenced entries until `cost` more bytes fit in
    /// `budget`. Entries the hand passes get their referenced bit cleared
    /// (second chance), so the loop terminates within two sweeps.
    fn make_room(&mut self, cost: u64, budget: u64) -> u64 {
        let mut evicted = 0u64;
        while self.resident + cost > budget && !self.map.is_empty() {
            let n = self.slots.len();
            self.hand = (self.hand + 1) % n;
            let Some(slot) = self.slots[self.hand].as_mut() else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let victim = self.slots[self.hand].take();
            if let Some(victim) = victim {
                self.map.remove(&victim.key);
                self.resident -= victim.cost;
                self.free.push(self.hand);
                evicted += 1;
            }
        }
        evicted
    }

    fn insert(&mut self, key: CacheKey, payload: Arc<DecodedDropping>, cost: u64) {
        let slot = Slot {
            key: key.clone(),
            payload,
            cost,
            referenced: true,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.resident += cost;
    }
}

/// Monotonic counters for one cache instance. Unlike the global telemetry
/// registry these are per-`Ada`, so a benchmark can difference them across
/// epochs without other instances polluting the numbers.
#[derive(Debug, Default)]
struct StatsCells {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
    resident_hwm: AtomicU64,
    bytes_decoded: AtomicU64,
    bytes_served_from_cache: AtomicU64,
}

/// Point-in-time view of a cache's counters (see [`DecodedCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a resident payload.
    pub hits: u64,
    /// Lookups that found nothing (including all lookups when disabled).
    pub misses: u64,
    /// Payloads stored.
    pub inserts: u64,
    /// Entries evicted by the CLOCK hand.
    pub evictions: u64,
    /// Inserts refused by admission (cold tag, oversized, disabled).
    pub bypasses: u64,
    /// Bytes currently resident across all shards.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub resident_hwm: u64,
    /// Bytes of frame payload decoded from droppings (counted by the
    /// owner on every fresh decode, cache on or off — the benchmark's
    /// denominator).
    pub bytes_decoded: u64,
    /// Bytes of frame payload served from resident entries.
    pub bytes_served_from_cache: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups, `0.0` when there were none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Global-registry handles, registered once at construction (the same
/// pattern as the frontend's admission metrics) so cache counters appear
/// in snapshots even while still zero.
struct Metrics {
    hit: Arc<Counter>,
    miss: Arc<Counter>,
    evict: Arc<Counter>,
    bypass: Arc<Counter>,
    resident: Arc<Gauge>,
    lookup_ns: Arc<Histogram>,
}

impl Metrics {
    fn register() -> Metrics {
        let reg = ada_telemetry::global();
        Metrics {
            hit: reg.counter("cache.hit"),
            miss: reg.counter("cache.miss"),
            evict: reg.counter("cache.evict"),
            bypass: reg.counter("cache.bypass"),
            resident: reg.gauge("cache.resident_bytes"),
            lookup_ns: reg.histogram("cache.lookup_ns"),
        }
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").finish_non_exhaustive()
    }
}

/// The sharded decoded-dropping store.
#[derive(Debug)]
pub struct DecodedCache {
    config: CacheConfig,
    shard_budget: u64,
    shards: Vec<Mutex<Shard>>,
    stats: StatsCells,
    metrics: Option<Metrics>,
}

impl DecodedCache {
    /// Build a cache for `config`. A zero budget yields a disabled cache
    /// whose lookups and inserts are constant-time no-ops.
    pub fn new(config: CacheConfig) -> DecodedCache {
        let nshards = config.shards.max(1);
        let shard_budget = config.capacity_bytes / nshards as u64;
        let shards = (0..nshards).map(|_| Mutex::new(Shard::default())).collect();
        DecodedCache {
            metrics: ada_telemetry::enabled().then(Metrics::register),
            config,
            shard_budget,
            shards,
            stats: StatsCells::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// True when the byte budget is non-zero.
    pub fn enabled(&self) -> bool {
        self.shard_budget > 0
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let idx = (key.shard_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look up a decoded dropping. A hit sets the CLOCK referenced bit
    /// and returns a shared handle that survives later eviction.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<DecodedDropping>> {
        if !self.enabled() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let start = Instant::now();
        let found = {
            let mut shard = self.shard_for(key).lock();
            match shard.map.get(key).copied() {
                Some(idx) => shard.slots[idx].as_mut().map(|slot| {
                    slot.referenced = true;
                    Arc::clone(&slot.payload)
                }),
                None => None,
            }
        };
        if let Some(m) = &self.metrics {
            m.lookup_ns.record(start.elapsed().as_nanos() as u64);
            if found.is_some() {
                m.hit.inc();
            } else {
                m.miss.inc();
            }
        }
        match &found {
            Some(payload) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_served_from_cache
                    .fetch_add(payload.cost(), Ordering::Relaxed);
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// True when `key` is resident (no referenced-bit side effect).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.enabled() && self.shard_for(key).lock().map.contains_key(key)
    }

    /// Offer a freshly decoded dropping. `heat` is the tag's prior access
    /// count: below [`CacheConfig::min_heat`] the payload is not stored
    /// (cold one-shot reads must not thrash the hot set). Oversized
    /// payloads (larger than a shard's budget) are refused too. Returns
    /// the admission outcome; the payload itself is handed back to the
    /// caller either way via the `Arc` it passed in.
    pub fn insert(&self, key: CacheKey, payload: &Arc<DecodedDropping>, heat: u64) -> Admission {
        if !self.enabled() {
            self.note_bypass();
            return Admission::Disabled;
        }
        if heat < self.config.min_heat {
            self.note_bypass();
            return Admission::ColdBypass;
        }
        let cost = payload.cost();
        if cost > self.shard_budget {
            self.note_bypass();
            return Admission::TooLarge;
        }
        let evicted = {
            let mut shard = self.shard_for(&key).lock();
            if let Some(idx) = shard.map.get(&key).copied() {
                let existing_cost = shard.slots[idx].as_ref().map_or(0, |s| s.cost);
                if cost <= existing_cost {
                    if let Some(slot) = shard.slots[idx].as_mut() {
                        // Same key ⇒ same bytes, and the resident entry is
                        // at least as chunk-rich; just refresh the clock
                        // bit.
                        slot.referenced = true;
                        return Admission::Admitted;
                    }
                }
                // The offered payload carries more resident chunks than
                // the stored one (a partial window grew): upgrade in
                // place, re-running eviction for the size difference.
                if let Some(old) = shard.slots[idx].take() {
                    shard.map.remove(&old.key);
                    shard.resident -= old.cost;
                    shard.free.push(idx);
                }
            }
            let evicted = shard.make_room(cost, self.shard_budget);
            shard.insert(key, Arc::clone(payload), cost);
            evicted
        };
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        let resident = self.resident_bytes();
        self.stats
            .resident_hwm
            .fetch_max(resident, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.evict.add(evicted);
            m.resident.set(resident as i64);
        }
        Admission::Admitted
    }

    fn note_bypass(&self) {
        self.stats.bypasses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.bypass.inc();
        }
    }

    /// Record `n` bytes of frame payload decoded from droppings. Counted
    /// by the owner on every fresh decode — cache on *or off* — so
    /// cache-off and cache-on runs are measured identically.
    pub fn note_decoded(&self, n: u64) {
        self.stats.bytes_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Drop every entry belonging to `dataset` (dataset deletion must not
    /// leave stale payloads resident).
    pub fn invalidate_dataset(&self, dataset: &str) {
        if !self.enabled() {
            return;
        }
        let mut evicted = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let stale: Vec<CacheKey> = shard
                .map
                .keys()
                .filter(|k| k.dataset == dataset)
                .cloned()
                .collect();
            for key in stale {
                if let Some(idx) = shard.map.remove(&key) {
                    if let Some(slot) = shard.slots[idx].take() {
                        shard.resident -= slot.cost;
                        shard.free.push(idx);
                        evicted += 1;
                    }
                }
            }
        }
        self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.evict.add(evicted);
            m.resident.set(self.resident_bytes() as i64);
        }
    }

    /// Bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().resident).sum()
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CacheStats {
            hits: load(&self.stats.hits),
            misses: load(&self.stats.misses),
            inserts: load(&self.stats.inserts),
            evictions: load(&self.stats.evictions),
            bypasses: load(&self.stats.bypasses),
            resident_bytes: self.resident_bytes(),
            resident_hwm: load(&self.stats.resident_hwm),
            bytes_decoded: load(&self.stats.bytes_decoded),
            bytes_served_from_cache: load(&self.stats.bytes_served_from_cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(natoms: usize, fill: f32) -> Frame {
        Frame::from_coords(vec![[fill, fill, fill]; natoms])
    }

    fn payload(natoms: usize, nframes: usize, fill: f32) -> Arc<DecodedDropping> {
        Arc::new(DecodedDropping::complete(
            (0..nframes).map(|_| frame(natoms, fill)).collect(),
            natoms,
        ))
    }

    fn hot_cache(capacity: u64, shards: usize) -> DecodedCache {
        DecodedCache::new(CacheConfig {
            capacity_bytes: capacity,
            shards,
            min_heat: 0,
            readahead: 0,
        })
    }

    #[test]
    fn disabled_cache_is_a_noop() {
        let cache = DecodedCache::new(CacheConfig::default());
        assert!(!cache.enabled());
        let key = CacheKey::new("ds", "protein", 0);
        assert_eq!(
            cache.insert(key.clone(), &payload(4, 2, 1.0), 100),
            Admission::Disabled
        );
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.len(), 0);
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.bypasses, 1);
    }

    #[test]
    fn hit_returns_the_exact_payload() {
        let cache = hot_cache(1 << 20, 4);
        let key = CacheKey::new("ds", "protein", 512);
        let p = payload(8, 3, 0.25);
        assert_eq!(cache.insert(key.clone(), &p, 5), Admission::Admitted);
        let hit = cache.get(&key).expect("inserted entry should be resident");
        assert_eq!(*hit, *p);
        assert_eq!(hit.natoms, 8);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.bytes_served_from_cache, p.cost());
    }

    #[test]
    fn cold_tags_bypass_admission() {
        let cache = DecodedCache::new(CacheConfig {
            capacity_bytes: 1 << 20,
            shards: 2,
            min_heat: 3,
            readahead: 0,
        });
        let key = CacheKey::new("ds", "misc", 0);
        assert_eq!(
            cache.insert(key.clone(), &payload(4, 1, 0.0), 2),
            Admission::ColdBypass
        );
        assert!(!cache.contains(&key));
        assert_eq!(
            cache.insert(key.clone(), &payload(4, 1, 0.0), 3),
            Admission::Admitted
        );
        assert!(cache.contains(&key));
    }

    #[test]
    fn oversized_payloads_are_refused() {
        let cache = hot_cache(64, 1);
        let key = CacheKey::new("ds", "protein", 0);
        assert_eq!(
            cache.insert(key.clone(), &payload(1024, 4, 0.0), 10),
            Admission::TooLarge
        );
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().bypasses, 1);
    }

    #[test]
    fn eviction_respects_budget_and_clock_second_chance() {
        // One shard, budget for two payloads.
        let p = payload(16, 1, 0.0);
        let cost = p.cost();
        let cache = hot_cache(cost * 2, 1);
        let k0 = CacheKey::new("ds", "t", 0);
        let k1 = CacheKey::new("ds", "t", 1);
        let k2 = CacheKey::new("ds", "t", 2);
        cache.insert(k0.clone(), &payload(16, 1, 0.0), 9);
        cache.insert(k1.clone(), &payload(16, 1, 1.0), 9);
        assert_eq!(cache.len(), 2);
        // Touch k0 so its referenced bit is set; the hand should prefer
        // evicting k1 (referenced bit already cleared by the sweep).
        assert!(cache.get(&k0).is_some());
        cache.insert(k2.clone(), &payload(16, 1, 2.0), 9);
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() <= cost * 2);
        assert!(cache.contains(&k2));
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn evicted_arc_stays_valid_for_in_flight_readers() {
        let p = payload(16, 1, 0.5);
        let cost = p.cost();
        let cache = hot_cache(cost, 1);
        let k0 = CacheKey::new("ds", "t", 0);
        cache.insert(k0.clone(), &p, 9);
        let held = cache.get(&k0).expect("resident");
        // Force k0 out.
        cache.insert(CacheKey::new("ds", "t", 1), &payload(16, 1, 0.75), 9);
        cache.insert(CacheKey::new("ds", "t", 2), &payload(16, 1, 0.85), 9);
        assert!(!cache.contains(&k0));
        // The handle taken before eviction still reads the original bytes.
        assert_eq!(*held, *p);
    }

    #[test]
    fn invalidate_dataset_only_touches_that_dataset() {
        let cache = hot_cache(1 << 20, 4);
        for d in 0..4u64 {
            cache.insert(CacheKey::new("a", "t", d), &payload(4, 1, 0.0), 9);
            cache.insert(CacheKey::new("b", "t", d), &payload(4, 1, 0.0), 9);
        }
        assert_eq!(cache.len(), 8);
        cache.invalidate_dataset("a");
        assert_eq!(cache.len(), 4);
        for d in 0..4u64 {
            assert!(!cache.contains(&CacheKey::new("a", "t", d)));
            assert!(cache.contains(&CacheKey::new("b", "t", d)));
        }
    }

    #[test]
    fn resident_hwm_tracks_peak() {
        let p = payload(16, 1, 0.0);
        let cost = p.cost();
        let cache = hot_cache(cost * 2, 1);
        cache.insert(CacheKey::new("ds", "t", 0), &payload(16, 1, 0.0), 9);
        cache.insert(CacheKey::new("ds", "t", 1), &payload(16, 1, 0.0), 9);
        cache.invalidate_dataset("ds");
        let stats = cache.stats();
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.resident_hwm, cost * 2);
    }

    /// A two-chunk payload with only the given chunks resident.
    fn partial(natoms: usize, resident: &[bool], fill: f32) -> Arc<DecodedDropping> {
        let chunks = resident
            .iter()
            .map(|&r| r.then(|| Arc::new(vec![frame(natoms, fill), frame(natoms, fill)])))
            .collect();
        Arc::new(DecodedDropping::from_chunks(
            vec![2; resident.len()],
            chunks,
            natoms,
        ))
    }

    #[test]
    fn partial_payloads_cost_only_resident_chunks() {
        let half = partial(8, &[true, false], 0.0);
        let full = partial(8, &[true, true], 0.0);
        assert_eq!(half.cost() * 2, full.cost());
        assert!(!half.is_complete());
        assert!(full.is_complete());
        assert_eq!(half.nframes(), 4);
        // Frame lookup respects residency.
        assert!(half.frame(1).is_some());
        assert!(half.frame(2).is_none());
        assert!(half.has_frames(&[0, 1]));
        assert!(!half.has_frames(&[0, 3]));
        assert!(half.cloned_frames().is_none());
        assert_eq!(full.cloned_frames().unwrap().len(), 4);
    }

    #[test]
    fn richer_payload_upgrades_the_resident_entry() {
        let cache = hot_cache(1 << 20, 1);
        let key = CacheKey::new("ds", "t", 0);
        let half = partial(8, &[true, false], 0.5);
        assert_eq!(cache.insert(key.clone(), &half, 9), Admission::Admitted);
        assert_eq!(cache.resident_bytes(), half.cost());
        // A full payload for the same key replaces the partial one.
        let full = partial(8, &[true, true], 0.5);
        assert_eq!(cache.insert(key.clone(), &full, 9), Admission::Admitted);
        assert_eq!(cache.resident_bytes(), full.cost());
        assert!(cache.get(&key).unwrap().is_complete());
        // Re-offering the poorer payload does not downgrade.
        assert_eq!(cache.insert(key.clone(), &half, 9), Admission::Admitted);
        assert!(cache.get(&key).unwrap().is_complete());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_hash_is_deterministic() {
        let a = CacheKey::new("ds", "protein", 7).shard_hash();
        let b = CacheKey::new("ds", "protein", 7).shard_hash();
        let c = CacheKey::new("ds", "protein", 8).shard_hash();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn payload_of(natoms: usize, nframes: usize, fill: f32) -> Arc<DecodedDropping> {
        Arc::new(DecodedDropping::complete(
            (0..nframes)
                .map(|i| {
                    let mut f = Frame::from_coords(vec![[fill, fill + i as f32, fill]; natoms]);
                    f.step = i as i32;
                    f
                })
                .collect(),
            natoms,
        ))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Resident bytes never exceed the budget at quiescence, no
        /// matter the op sequence.
        #[test]
        fn resident_bytes_within_budget(
            shards in 1usize..5,
            budget_units in 1u64..16,
            ops in prop::collection::vec((0u8..3, 0u64..24, 1usize..5), 1..120),
        ) {
            let unit = payload_of(8, 1, 0.0).cost();
            let cache = DecodedCache::new(CacheConfig {
                capacity_bytes: unit * budget_units,
                shards,
                min_heat: 0,
                readahead: 0,
            });
            for (op, dropping, nframes) in ops {
                let key = CacheKey::new("ds", "t", dropping);
                match op {
                    0 => {
                        let _ = cache.insert(key, &payload_of(8, nframes, dropping as f32), 9);
                    }
                    1 => {
                        let _ = cache.get(&key);
                    }
                    _ => cache.invalidate_dataset("ds"),
                }
                prop_assert!(cache.resident_bytes() <= unit * budget_units,
                    "resident {} > budget {}", cache.resident_bytes(), unit * budget_units);
            }
        }

        /// An evicted key misses until reinserted; a resident key hits
        /// with byte-identical frames.
        #[test]
        fn hits_are_byte_identical_and_evictions_final(
            keys in prop::collection::vec(0u64..12, 2..40),
        ) {
            // Budget for exactly 3 single-frame payloads in one shard.
            let unit = payload_of(8, 1, 0.0).cost();
            let cache = DecodedCache::new(CacheConfig {
                capacity_bytes: unit * 3,
                shards: 1,
                min_heat: 0,
                readahead: 0,
            });
            for dropping in keys {
                let key = CacheKey::new("ds", "t", dropping);
                let fresh = payload_of(8, 1, dropping as f32);
                match cache.get(&key) {
                    Some(hit) => {
                        // Hit ⇒ byte-identical to what decode would yield.
                        prop_assert_eq!(&*hit, &*fresh);
                    }
                    None => {
                        let _ = cache.insert(key.clone(), &fresh, 9);
                    }
                }
                // A key reported absent stays absent until reinserted:
                // contains() and get() must agree.
                let c = cache.contains(&key);
                let g = cache.get(&key).is_some();
                prop_assert_eq!(c, g);
            }
            prop_assert!(cache.resident_bytes() <= unit * 3);
        }
    }
}
