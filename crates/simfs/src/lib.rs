#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-simfs — simulated file systems
//!
//! The file-system layer ADA sits on top of (Fig. 4's bottom box): local
//! file systems over a single device or array ([`local::LocalFs`], with
//! ext4/XFS parameter presets) and a PVFS/OrangeFS-like striped parallel
//! file system over storage nodes ([`striped::StripedFs`]).
//!
//! ## The dual-mode data plane
//!
//! File contents are a [`Content`]: either `Real` bytes (actual PDB/XTC
//! payloads, exercised end-to-end by the correctness tests) or `Synthetic`
//! size-only blobs (used for the fat-node experiments whose raw datasets
//! reach 2.6 TB — far beyond what a test process should materialize).
//! Every operation charges identical virtual time for both modes, because
//! the simulator charges by byte count, not by buffer contents.
//!
//! File systems never touch the shared clock themselves — operations return
//! [`SimDuration`]s and callers compose them (sequential `+`, parallel
//! `max`), which is what lets the platform harness model concurrent striped
//! reads correctly.

pub mod local;
pub mod striped;
pub mod trace;

pub use local::{FsParams, LocalFs};
pub use striped::{StripedFs, StripedFsParams};
pub use trace::{OpKind, TraceEvent, TraceLog};

use ada_storagesim::SimDuration;
use bytes::Bytes;

/// File contents: real bytes or a size-only synthetic blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// Actual bytes (cheaply clonable).
    Real(Bytes),
    /// A virtual blob of `len` bytes whose contents are never materialized.
    Synthetic {
        /// Virtual length in bytes.
        len: u64,
    },
}

impl Content {
    /// Real content from a byte vector.
    pub fn real(data: impl Into<Bytes>) -> Content {
        Content::Real(data.into())
    }

    /// Synthetic content of `len` bytes.
    pub fn synthetic(len: u64) -> Content {
        Content::Synthetic { len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Content::Real(b) => b.len() as u64,
            Content::Synthetic { len } => *len,
        }
    }

    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is real data.
    pub fn is_real(&self) -> bool {
        matches!(self, Content::Real(_))
    }

    /// Borrow real bytes, or `None` for synthetic content.
    pub fn as_real(&self) -> Option<&Bytes> {
        match self {
            Content::Real(b) => Some(b),
            Content::Synthetic { .. } => None,
        }
    }

    /// Sub-range `[offset, offset+len)`; synthetic content slices to a
    /// synthetic blob, real content to a zero-copy `Bytes` slice.
    pub fn slice(&self, offset: u64, len: u64) -> Result<Content, FsError> {
        if offset + len > self.len() {
            return Err(FsError::OutOfRange {
                offset,
                len,
                file_len: self.len(),
            });
        }
        Ok(match self {
            Content::Real(b) => Content::Real(b.slice(offset as usize..(offset + len) as usize)),
            Content::Synthetic { .. } => Content::Synthetic { len },
        })
    }

    /// Concatenate (append semantics). Real ++ Real stays real; any
    /// synthetic operand degrades the result to synthetic (sizes add).
    pub fn concat(&self, other: &Content) -> Content {
        match (self, other) {
            (Content::Real(a), Content::Real(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                Content::Real(Bytes::from(v))
            }
            _ => Content::Synthetic {
                len: self.len() + other.len(),
            },
        }
    }
}

/// Metadata of a stored file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// File length in bytes.
    pub len: u64,
    /// Whether contents are real bytes.
    pub is_real: bool,
}

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Create on an existing path.
    AlreadyExists(String),
    /// Backing store is full.
    NoSpace {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
    },
    /// Read past end of file.
    OutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file length.
        file_len: u64,
    },
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {}", p),
            FsError::AlreadyExists(p) => write!(f, "already exists: {}", p),
            FsError::NoSpace { requested, free } => {
                write!(f, "no space: requested {} B, free {} B", requested, free)
            }
            FsError::OutOfRange {
                offset,
                len,
                file_len,
            } => write!(
                f,
                "range {}+{} exceeds file length {}",
                offset, len, file_len
            ),
        }
    }
}

impl std::error::Error for FsError {}

/// A (content, virtual-duration) pair returned by timed reads.
pub type TimedRead = (Content, SimDuration);

/// The VFS interface ADA's I/O determinator programs against. All methods
/// are `&self`; implementations use interior mutability so one FS can be
/// shared by the dispatcher and many readers.
pub trait SimFileSystem: Send + Sync {
    /// Short name for reports ("ext4", "pvfs-ssd", ...).
    fn name(&self) -> &str;

    /// Create a file with contents. Fails if the path exists.
    fn create(&self, path: &str, content: Content) -> Result<SimDuration, FsError>;

    /// Append to an existing file (creates it when absent).
    fn append(&self, path: &str, content: Content) -> Result<SimDuration, FsError>;

    /// Read a whole file.
    fn read(&self, path: &str) -> Result<TimedRead, FsError>;

    /// Read `[offset, offset+len)` of a file.
    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<TimedRead, FsError>;

    /// Delete a file.
    fn delete(&self, path: &str) -> Result<(), FsError>;

    /// Stat a file.
    fn stat(&self, path: &str) -> Result<FileStat, FsError>;

    /// Whether a path exists.
    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// All paths with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;

    /// Total bytes stored.
    fn used_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_len_and_kind() {
        let r = Content::real(vec![1u8, 2, 3]);
        let s = Content::synthetic(1 << 40);
        assert_eq!(r.len(), 3);
        assert!(r.is_real());
        assert_eq!(s.len(), 1 << 40);
        assert!(!s.is_real());
        assert!(Content::real(Vec::new()).is_empty());
    }

    #[test]
    fn slice_real_and_synthetic() {
        let r = Content::real((0u8..10).collect::<Vec<_>>());
        let sl = r.slice(2, 5).unwrap();
        assert_eq!(sl.as_real().unwrap().as_ref(), &[2, 3, 4, 5, 6]);
        let s = Content::synthetic(100);
        assert_eq!(s.slice(10, 50).unwrap().len(), 50);
        assert!(matches!(r.slice(8, 5), Err(FsError::OutOfRange { .. })));
    }

    #[test]
    fn concat_rules() {
        let a = Content::real(vec![1u8]);
        let b = Content::real(vec![2u8, 3]);
        let ab = a.concat(&b);
        assert_eq!(ab.as_real().unwrap().as_ref(), &[1, 2, 3]);
        let s = Content::synthetic(5);
        let mixed = a.concat(&s);
        assert!(!mixed.is_real());
        assert_eq!(mixed.len(), 6);
    }
}
