//! Local file systems over a single device or RAID array.

use crate::trace::{OpKind, TraceEvent, TraceLog};
use crate::{Content, FileStat, FsError, SimFileSystem, TimedRead};
use ada_storagesim::{Device, DeviceProfile, Raid50, SimDuration};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// File-system software parameters (journal/metadata cost per operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsParams {
    /// Metadata/journal overhead per operation, seconds.
    pub op_overhead_s: f64,
}

impl FsParams {
    /// ext4 defaults (jbd2 journal).
    pub fn ext4() -> FsParams {
        FsParams {
            op_overhead_s: 50.0e-6,
        }
    }

    /// XFS defaults (delayed logging; slightly cheaper metadata on the
    /// large streaming files these experiments use).
    pub fn xfs() -> FsParams {
        FsParams {
            op_overhead_s: 30.0e-6,
        }
    }
}

/// The storage backing a local file system.
#[derive(Debug, Clone)]
pub enum Backing {
    /// A single block device.
    Single(Device),
    /// A RAID-50 array.
    Raid(Raid50),
}

impl Backing {
    fn read(&mut self, bytes: u64) -> SimDuration {
        match self {
            Backing::Single(d) => d.read(bytes),
            Backing::Raid(r) => r.read(bytes),
        }
    }

    fn write(&mut self, bytes: u64) -> SimDuration {
        match self {
            Backing::Single(d) => d.write(bytes),
            Backing::Raid(r) => r.write(bytes),
        }
    }

    fn capacity(&self) -> u64 {
        match self {
            Backing::Single(d) => d.profile.capacity,
            Backing::Raid(r) => r.member.capacity * r.data_disks() as u64,
        }
    }

    /// Active/idle power of the backing store.
    pub fn power_w(&self) -> (f64, f64) {
        match self {
            Backing::Single(d) => (d.profile.active_power_w, d.profile.idle_power_w),
            Backing::Raid(r) => (r.active_power_w(), r.idle_power_w()),
        }
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        match self {
            Backing::Single(d) => d.busy_time(),
            Backing::Raid(r) => r.busy_time(),
        }
    }
}

struct Inner {
    files: BTreeMap<String, Content>,
    backing: Backing,
    used: u64,
}

/// A local file system (ext4/XFS-like) over one backing store.
pub struct LocalFs {
    name: String,
    params: FsParams,
    inner: Mutex<Inner>,
    trace: Option<TraceLog>,
}

impl std::fmt::Debug for LocalFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Skip the Mutex'd file table: identity + tuning are what a dump
        // of a storage stack needs.
        f.debug_struct("LocalFs")
            .field("name", &self.name)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl LocalFs {
    /// New local FS.
    pub fn new(name: impl Into<String>, params: FsParams, backing: Backing) -> LocalFs {
        LocalFs {
            name: name.into(),
            params,
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                backing,
                used: 0,
            }),
            trace: None,
        }
    }

    /// Attach an I/O trace log (builder style).
    pub fn with_trace(mut self, log: TraceLog) -> LocalFs {
        self.trace = Some(log);
        self
    }

    fn record(&self, op: OpKind, path: &str, bytes: u64, duration: SimDuration) {
        if let Some(t) = &self.trace {
            t.record(TraceEvent {
                fs: self.name.clone(),
                op,
                path: path.to_string(),
                bytes,
                duration,
            });
        }
    }

    /// ext4 on a single NVMe SSD (the §4.1 SSD server).
    pub fn ext4_on_nvme() -> LocalFs {
        LocalFs::new(
            "ext4",
            FsParams::ext4(),
            Backing::Single(Device::new(DeviceProfile::nvme_ssd_256gb())),
        )
    }

    /// XFS on the fat node's RAID-50 array (§4.3).
    pub fn xfs_on_raid50() -> LocalFs {
        LocalFs::new(
            "xfs",
            FsParams::xfs(),
            Backing::Raid(Raid50::fatnode_array()),
        )
    }

    /// ext4 on a single WD HDD.
    pub fn ext4_on_hdd() -> LocalFs {
        LocalFs::new(
            "ext4-hdd",
            FsParams::ext4(),
            Backing::Single(Device::new(DeviceProfile::wd_hdd_1tb())),
        )
    }

    /// Inspect the backing store (busy time / power for energy accounting).
    pub fn with_backing<T>(&self, f: impl FnOnce(&Backing) -> T) -> T {
        f(&self.inner.lock().backing)
    }

    fn overhead(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.params.op_overhead_s)
    }
}

impl SimFileSystem for LocalFs {
    fn name(&self) -> &str {
        &self.name
    }

    fn create(&self, path: &str, content: Content) -> Result<SimDuration, FsError> {
        let mut g = self.inner.lock();
        if g.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let len = content.len();
        let capacity = g.backing.capacity();
        if g.used + len > capacity {
            return Err(FsError::NoSpace {
                requested: len,
                free: capacity - g.used,
            });
        }
        let d = g.backing.write(len) + self.overhead();
        g.used += len;
        g.files.insert(path.to_string(), content);
        drop(g);
        self.record(OpKind::Create, path, len, d);
        Ok(d)
    }

    fn append(&self, path: &str, content: Content) -> Result<SimDuration, FsError> {
        let mut g = self.inner.lock();
        let len = content.len();
        let capacity = g.backing.capacity();
        if g.used + len > capacity {
            return Err(FsError::NoSpace {
                requested: len,
                free: capacity - g.used,
            });
        }
        let d = g.backing.write(len) + self.overhead();
        g.used += len;
        match g.files.get_mut(path) {
            Some(existing) => {
                let merged = existing.concat(&content);
                *existing = merged;
            }
            None => {
                g.files.insert(path.to_string(), content);
            }
        }
        drop(g);
        self.record(OpKind::Append, path, len, d);
        Ok(d)
    }

    fn read(&self, path: &str) -> Result<TimedRead, FsError> {
        let mut g = self.inner.lock();
        let content = g
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        let d = g.backing.read(content.len()) + self.overhead();
        drop(g);
        self.record(OpKind::Read, path, content.len(), d);
        Ok((content, d))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<TimedRead, FsError> {
        let mut g = self.inner.lock();
        let content = g
            .files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?
            .slice(offset, len)?;
        let d = g.backing.read(len) + self.overhead();
        drop(g);
        self.record(OpKind::ReadRange, path, len, d);
        Ok((content, d))
    }

    fn delete(&self, path: &str) -> Result<(), FsError> {
        let mut g = self.inner.lock();
        match g.files.remove(path) {
            Some(c) => {
                g.used -= c.len();
                drop(g);
                self.record(OpKind::Delete, path, 0, ada_storagesim::SimDuration::ZERO);
                Ok(())
            }
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        let g = self.inner.lock();
        g.files
            .get(path)
            .map(|c| FileStat {
                len: c.len(),
                is_real: c.is_real(),
            })
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let g = self.inner.lock();
        g.files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_roundtrip() {
        let fs = LocalFs::ext4_on_nvme();
        let data: Vec<u8> = (0..100).collect();
        let wd = fs
            .create("/mnt/foo.xtc", Content::real(data.clone()))
            .unwrap();
        assert!(wd.as_secs_f64() > 0.0);
        let (content, rd) = fs.read("/mnt/foo.xtc").unwrap();
        assert_eq!(content.as_real().unwrap().as_ref(), &data[..]);
        assert!(rd.as_secs_f64() > 0.0);
        assert_eq!(fs.used_bytes(), 100);
    }

    #[test]
    fn create_existing_fails() {
        let fs = LocalFs::ext4_on_nvme();
        fs.create("/a", Content::synthetic(10)).unwrap();
        assert!(matches!(
            fs.create("/a", Content::synthetic(1)),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn read_missing_fails() {
        let fs = LocalFs::ext4_on_nvme();
        assert!(matches!(fs.read("/nope"), Err(FsError::NotFound(_))));
        assert!(!fs.exists("/nope"));
    }

    #[test]
    fn append_accumulates() {
        let fs = LocalFs::ext4_on_nvme();
        fs.append("/log", Content::real(vec![1u8, 2])).unwrap();
        fs.append("/log", Content::real(vec![3u8])).unwrap();
        let (c, _) = fs.read("/log").unwrap();
        assert_eq!(c.as_real().unwrap().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn range_read() {
        let fs = LocalFs::ext4_on_nvme();
        fs.create("/f", Content::real((0u8..50).collect::<Vec<_>>()))
            .unwrap();
        let (c, _) = fs.read_range("/f", 10, 5).unwrap();
        assert_eq!(c.as_real().unwrap().as_ref(), &[10, 11, 12, 13, 14]);
        assert!(fs.read_range("/f", 48, 5).is_err());
    }

    #[test]
    fn capacity_enforced() {
        let fs = LocalFs::ext4_on_nvme(); // 256 GB
        fs.create("/big", Content::synthetic(200_000_000_000))
            .unwrap();
        assert!(matches!(
            fs.create("/big2", Content::synthetic(100_000_000_000)),
            Err(FsError::NoSpace { .. })
        ));
        // Delete frees space.
        fs.delete("/big").unwrap();
        assert!(fs
            .create("/big2", Content::synthetic(100_000_000_000))
            .is_ok());
    }

    #[test]
    fn list_by_prefix() {
        let fs = LocalFs::ext4_on_nvme();
        for p in ["/mnt/a", "/mnt/b", "/other/c"] {
            fs.create(p, Content::synthetic(1)).unwrap();
        }
        assert_eq!(
            fs.list("/mnt/"),
            vec!["/mnt/a".to_string(), "/mnt/b".to_string()]
        );
        assert_eq!(fs.list(""), vec!["/mnt/a", "/mnt/b", "/other/c"]);
        assert!(fs.list("/zzz").is_empty());
    }

    #[test]
    fn nvme_read_time_close_to_bandwidth() {
        let fs = LocalFs::ext4_on_nvme();
        fs.create("/f", Content::synthetic(3_000_000_000)).unwrap();
        let (_, d) = fs.read("/f").unwrap();
        assert!(
            (d.as_secs_f64() - 1.0).abs() < 0.01,
            "t = {}",
            d.as_secs_f64()
        );
    }

    #[test]
    fn raid_fs_faster_than_hdd_fs() {
        let raid = LocalFs::xfs_on_raid50();
        let hdd = LocalFs::ext4_on_hdd();
        let bytes = 50_000_000_000u64;
        raid.create("/f", Content::synthetic(bytes)).unwrap();
        hdd.create("/f", Content::synthetic(bytes)).unwrap();
        let (_, tr) = raid.read("/f").unwrap();
        let (_, th) = hdd.read("/f").unwrap();
        let ratio = th.as_secs_f64() / tr.as_secs_f64();
        assert!(ratio > 7.0 && ratio < 9.0, "ratio {}", ratio);
    }

    #[test]
    fn synthetic_and_real_same_timing() {
        let a = LocalFs::ext4_on_nvme();
        let b = LocalFs::ext4_on_nvme();
        let n = 1_000_000usize;
        a.create("/f", Content::real(vec![0u8; n])).unwrap();
        b.create("/f", Content::synthetic(n as u64)).unwrap();
        let (_, ta) = a.read("/f").unwrap();
        let (_, tb) = b.read("/f").unwrap();
        assert_eq!(ta, tb);
    }
}
