//! PVFS/OrangeFS-like striped parallel file system.
//!
//! Files are striped round-robin across storage servers; a client read
//! fetches all stripes in parallel and streams them over the network, so
//! the cost of an N-server read is
//! `max(per-server disk time) max (network transfer of the whole file)`.
//! This matches the §4.2 cluster: one PVFS instance over three HDD nodes
//! and one over three SSD nodes, joined by InfiniBand.

use crate::trace::{OpKind, TraceEvent, TraceLog};
use crate::{Content, FileStat, FsError, SimFileSystem, TimedRead};
use ada_storagesim::{Device, DeviceProfile, Link, SimDuration};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Striped-FS configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StripedFsParams {
    /// Stripe unit in bytes (PVFS default 64 KiB).
    pub stripe_size: u64,
    /// Client-side metadata/request overhead per operation, seconds.
    pub op_overhead_s: f64,
    /// Per-storage-server network egress bandwidth in bytes/second
    /// (`None` = unlimited; a server then serves at raw disk speed).
    pub server_egress_bw: Option<f64>,
}

impl Default for StripedFsParams {
    fn default() -> StripedFsParams {
        StripedFsParams {
            stripe_size: 64 * 1024,
            op_overhead_s: 200.0e-6,
            server_egress_bw: None,
        }
    }
}

struct Inner {
    files: BTreeMap<String, Content>,
    servers: Vec<Device>,
    used: u64,
}

/// A striped parallel file system over `N` storage-server devices.
pub struct StripedFs {
    name: String,
    params: StripedFsParams,
    network: Link,
    inner: Mutex<Inner>,
    trace: Option<TraceLog>,
}

impl std::fmt::Debug for StripedFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Skip the Mutex'd server state: identity + tuning are what a
        // dump of a storage stack needs.
        f.debug_struct("StripedFs")
            .field("name", &self.name)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl StripedFs {
    /// New striped FS over per-server devices.
    pub fn new(
        name: impl Into<String>,
        params: StripedFsParams,
        network: Link,
        servers: Vec<Device>,
    ) -> StripedFs {
        assert!(!servers.is_empty(), "need at least one storage server");
        StripedFs {
            name: name.into(),
            params,
            network,
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                servers,
                used: 0,
            }),
            trace: None,
        }
    }

    /// Attach an I/O trace log (builder style).
    pub fn with_trace(mut self, log: TraceLog) -> StripedFs {
        self.trace = Some(log);
        self
    }

    fn record(&self, op: OpKind, path: &str, bytes: u64, duration: SimDuration) {
        if let Some(t) = &self.trace {
            t.record(TraceEvent {
                fs: self.name.clone(),
                op,
                path: path.to_string(),
                bytes,
                duration,
            });
        }
    }

    /// Cluster network calibration: each storage server ships over a
    /// ~170 MB/s effective link (bonded-GigE-class), the client ingests
    /// over 10 GbE. Table 4 does not specify the fabric; these values put
    /// the §4.2 curves in the paper's relative order: HDD nodes stay
    /// disk-bound (126 < 170 MB/s), SSD nodes are NIC-bound, and
    /// D-ADA(protein) lands near C-PVFS as in Fig. 9a.
    fn cluster_params() -> StripedFsParams {
        StripedFsParams {
            server_egress_bw: Some(170.0e6),
            ..StripedFsParams::default()
        }
    }

    /// The paper's HDD PVFS: 3 storage nodes × (2 × WD 1 TB HDD treated as
    /// one 2 TB node volume at single-disk speed per node).
    pub fn pvfs_hdd_3nodes() -> StripedFs {
        let mut node = DeviceProfile::wd_hdd_1tb();
        node.capacity *= 2;
        StripedFs::new(
            "pvfs-hdd",
            Self::cluster_params(),
            Link::tenge(),
            (0..3).map(|_| Device::new(node.clone())).collect(),
        )
    }

    /// The paper's SSD PVFS: 3 storage nodes × (2 × Plextor 256 GB).
    pub fn pvfs_ssd_3nodes() -> StripedFs {
        let mut node = DeviceProfile::plextor_ssd_256gb();
        node.capacity *= 2;
        StripedFs::new(
            "pvfs-ssd",
            Self::cluster_params(),
            Link::tenge(),
            (0..3).map(|_| Device::new(node.clone())).collect(),
        )
    }

    /// Per-server byte share for a file of `len` (stripe-granular).
    fn server_shares(&self, len: u64, nservers: usize) -> Vec<u64> {
        let stripe = self.params.stripe_size;
        let full_stripes = len / stripe;
        let tail = len % stripe;
        let mut shares = vec![(full_stripes / nservers as u64) * stripe; nservers];
        let extra = full_stripes % nservers as u64;
        for (i, share) in shares.iter_mut().enumerate() {
            if (i as u64) < extra {
                *share += stripe;
            }
        }
        shares[(full_stripes % nservers as u64) as usize] += tail;
        shares
    }

    fn io_time(&self, len: u64, write: bool) -> SimDuration {
        let mut g = self.inner.lock();
        let n = g.servers.len();
        let shares = self.server_shares(len, n);
        let mut disk = SimDuration::ZERO;
        for (srv, &share) in g.servers.iter_mut().zip(&shares) {
            if share > 0 || len == 0 {
                let mut d = if write {
                    srv.write(share)
                } else {
                    srv.read(share)
                };
                if let Some(egress) = self.params.server_egress_bw {
                    // A server cannot ship data faster than its NIC.
                    let net = SimDuration::from_secs_f64(share as f64 / egress);
                    d = d.max(net);
                }
                disk = disk.max(d);
            }
        }
        let net = self.network.transfer_time(len);
        disk.max(net) + SimDuration::from_secs_f64(self.params.op_overhead_s)
    }

    /// Inspect server devices (energy accounting).
    pub fn with_servers<T>(&self, f: impl FnOnce(&[Device]) -> T) -> T {
        f(&self.inner.lock().servers)
    }

    /// Number of storage servers.
    pub fn server_count(&self) -> usize {
        self.inner.lock().servers.len()
    }
}

impl SimFileSystem for StripedFs {
    fn name(&self) -> &str {
        &self.name
    }

    fn create(&self, path: &str, content: Content) -> Result<SimDuration, FsError> {
        {
            let g = self.inner.lock();
            if g.files.contains_key(path) {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
            let capacity: u64 = g.servers.iter().map(|d| d.profile.capacity).sum();
            if g.used + content.len() > capacity {
                return Err(FsError::NoSpace {
                    requested: content.len(),
                    free: capacity - g.used,
                });
            }
        }
        let d = self.io_time(content.len(), true);
        let mut g = self.inner.lock();
        g.used += content.len();
        let len = content.len();
        g.files.insert(path.to_string(), content);
        drop(g);
        self.record(OpKind::Create, path, len, d);
        Ok(d)
    }

    fn append(&self, path: &str, content: Content) -> Result<SimDuration, FsError> {
        {
            // Compute capacity from the held guard: calling capacity()
            // here would re-lock `inner` and self-deadlock.
            let g = self.inner.lock();
            let capacity: u64 = g.servers.iter().map(|d| d.profile.capacity).sum();
            if g.used + content.len() > capacity {
                return Err(FsError::NoSpace {
                    requested: content.len(),
                    free: capacity - g.used,
                });
            }
        }
        let len = content.len();
        let d = self.io_time(len, true);
        let mut g = self.inner.lock();
        g.used += len;
        match g.files.get_mut(path) {
            Some(existing) => {
                let merged = existing.concat(&content);
                *existing = merged;
            }
            None => {
                g.files.insert(path.to_string(), content);
            }
        }
        drop(g);
        self.record(OpKind::Append, path, len, d);
        Ok(d)
    }

    fn read(&self, path: &str) -> Result<TimedRead, FsError> {
        let content = {
            let g = self.inner.lock();
            g.files
                .get(path)
                .cloned()
                .ok_or_else(|| FsError::NotFound(path.to_string()))?
        };
        let d = self.io_time(content.len(), false);
        self.record(OpKind::Read, path, content.len(), d);
        Ok((content, d))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<TimedRead, FsError> {
        let content = {
            let g = self.inner.lock();
            g.files
                .get(path)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?
                .slice(offset, len)?
        };
        let d = self.io_time(len, false);
        self.record(OpKind::ReadRange, path, len, d);
        Ok((content, d))
    }

    fn delete(&self, path: &str) -> Result<(), FsError> {
        let mut g = self.inner.lock();
        match g.files.remove(path) {
            Some(c) => {
                g.used -= c.len();
                Ok(())
            }
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        let g = self.inner.lock();
        g.files
            .get(path)
            .map(|c| FileStat {
                len: c.len(),
                is_real: c.is_real(),
            })
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let g = self.inner.lock();
        g.files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_balance() {
        let fs = StripedFs::pvfs_hdd_3nodes();
        let len = 64 * 1024 * 10 + 100; // 10 stripes + tail
        let shares = fs.server_shares(len, 3);
        assert_eq!(shares.iter().sum::<u64>(), len);
        let max = *shares.iter().max().unwrap();
        let min = *shares.iter().min().unwrap();
        assert!(max - min <= 64 * 1024 + 100);
    }

    #[test]
    fn striped_read_faster_than_single_disk() {
        let fs = StripedFs::pvfs_hdd_3nodes();
        let bytes = 1_260_000_000u64; // 10 s on one HDD
        fs.create("/f", Content::synthetic(bytes)).unwrap();
        let (_, d) = fs.read("/f").unwrap();
        // 3 servers: ~3.33 s instead of 10 s.
        assert!(
            (d.as_secs_f64() - 10.0 / 3.0).abs() < 0.2,
            "t = {}",
            d.as_secs_f64()
        );
    }

    #[test]
    fn ssd_pvfs_nic_bound() {
        // 3 SSD nodes could read at 9 GB/s aggregate, but each server ships
        // at 170 MB/s — the NIC is the bottleneck: ~510 MB/s aggregate.
        let fs = StripedFs::pvfs_ssd_3nodes();
        let bytes = 510_000_000u64;
        fs.create("/f", Content::synthetic(bytes)).unwrap();
        let (_, d) = fs.read("/f").unwrap();
        assert!(
            (d.as_secs_f64() - 1.0).abs() < 0.05,
            "t = {}",
            d.as_secs_f64()
        );
    }

    #[test]
    fn hdd_vs_ssd_pvfs_ratio() {
        let hdd = StripedFs::pvfs_hdd_3nodes();
        let ssd = StripedFs::pvfs_ssd_3nodes();
        let bytes = 2_000_000_000u64;
        hdd.create("/f", Content::synthetic(bytes)).unwrap();
        ssd.create("/f", Content::synthetic(bytes)).unwrap();
        let (_, th) = hdd.read("/f").unwrap();
        let (_, ts) = ssd.read("/f").unwrap();
        let ratio = th.as_secs_f64() / ts.as_secs_f64();
        // HDD nodes disk-bound at 126 MB/s, SSD nodes NIC-bound at
        // 170 MB/s: ratio ≈ 170/126 ≈ 1.35.
        assert!(ratio > 1.2 && ratio < 1.6, "ratio {}", ratio);
    }

    #[test]
    fn real_content_preserved_across_stripes() {
        let fs = StripedFs::pvfs_ssd_3nodes();
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        fs.create("/real", Content::real(data.clone())).unwrap();
        let (c, _) = fs.read("/real").unwrap();
        assert_eq!(c.as_real().unwrap().as_ref(), &data[..]);
        let (r, _) = fs.read_range("/real", 100_000, 10).unwrap();
        assert_eq!(r.as_real().unwrap().as_ref(), &data[100_000..100_010]);
    }

    #[test]
    fn errors_match_local_fs_contract() {
        let fs = StripedFs::pvfs_hdd_3nodes();
        assert!(matches!(fs.read("/x"), Err(FsError::NotFound(_))));
        fs.create("/x", Content::synthetic(1)).unwrap();
        assert!(matches!(
            fs.create("/x", Content::synthetic(1)),
            Err(FsError::AlreadyExists(_))
        ));
        fs.delete("/x").unwrap();
        assert!(fs.delete("/x").is_err());
    }

    #[test]
    fn capacity_is_aggregate() {
        let fs = StripedFs::pvfs_ssd_3nodes(); // 3 × 512 GB = 1.536 TB
        assert!(fs
            .create("/a", Content::synthetic(1_500_000_000_000))
            .is_ok());
        assert!(matches!(
            fs.create("/b", Content::synthetic(100_000_000_000)),
            Err(FsError::NoSpace { .. })
        ));
    }

    #[test]
    fn empty_file_costs_latency_only() {
        let fs = StripedFs::pvfs_hdd_3nodes();
        fs.create("/e", Content::synthetic(0)).unwrap();
        let (_, d) = fs.read("/e").unwrap();
        assert!(d.as_secs_f64() < 0.02);
    }
}
