//! I/O tracing.
//!
//! A [`TraceLog`] can be attached to any simulated file system; every
//! operation appends a [`TraceEvent`] (op kind, path, bytes, virtual
//! duration). The platform harness and tests use traces to verify *what*
//! the middleware actually touched — e.g. that a `tag p` query never reads
//! a MISC dropping from the HDD backend.

use ada_storagesim::SimDuration;
use parking_lot::Mutex;
use std::sync::Arc;

/// Kind of file-system operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// File creation (write).
    Create,
    /// Append (write).
    Append,
    /// Whole-file read.
    Read,
    /// Range read.
    ReadRange,
    /// Deletion.
    Delete,
}

impl OpKind {
    /// Stable short name, used as the telemetry counter suffix.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Append => "append",
            OpKind::Read => "read",
            OpKind::ReadRange => "read_range",
            OpKind::Delete => "delete",
        }
    }
}

/// One traced operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// File system name the op ran on.
    pub fs: String,
    /// Operation kind.
    pub op: OpKind,
    /// Path touched.
    pub path: String,
    /// Bytes moved.
    pub bytes: u64,
    /// Virtual duration charged.
    pub duration: SimDuration,
}

/// A shared, clonable trace sink.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// New empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Record an event. Piggybacks per-fs, per-op counts and bytes onto
    /// the global telemetry registry (`simfs.{fs}.{op}.ops` / `.bytes`),
    /// so backend op mixes show up in every metrics snapshot without a
    /// second instrumentation pass.
    pub fn record(&self, event: TraceEvent) {
        if ada_telemetry::enabled() {
            let reg = ada_telemetry::global();
            let base = format!("simfs.{}.{}", event.fs, event.op.name());
            reg.counter(&format!("{}.ops", base)).inc();
            if event.bytes > 0 {
                reg.counter(&format!("{}.bytes", base)).add(event.bytes);
            }
        }
        self.events.lock().push(event);
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clear the log.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Total bytes moved by ops matching a filter.
    pub fn bytes_where(&self, pred: impl Fn(&TraceEvent) -> bool) -> u64 {
        self.events
            .lock()
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.bytes)
            .sum()
    }

    /// Events touching paths containing `needle`.
    pub fn touching(&self, needle: &str) -> Vec<TraceEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.path.contains(needle))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: OpKind, path: &str, bytes: u64) -> TraceEvent {
        TraceEvent {
            fs: "test".into(),
            op,
            path: path.into(),
            bytes,
            duration: SimDuration::ZERO,
        }
    }

    #[test]
    fn record_and_filter() {
        let log = TraceLog::new();
        log.record(ev(OpKind::Create, "/a/x", 10));
        log.record(ev(OpKind::Read, "/a/x", 10));
        log.record(ev(OpKind::Read, "/b/y", 5));
        assert_eq!(log.len(), 3);
        assert_eq!(log.bytes_where(|e| e.op == OpKind::Read), 15);
        assert_eq!(log.touching("/a/").len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn record_piggybacks_telemetry_counters() {
        let log = TraceLog::new();
        log.record(ev(OpKind::ReadRange, "/t/z", 64));
        let snap = ada_telemetry::global().snapshot();
        assert!(snap.counters["simfs.test.read_range.ops"] >= 1);
        assert!(snap.counters["simfs.test.read_range.bytes"] >= 64);
    }

    #[test]
    fn shared_across_clones() {
        let log = TraceLog::new();
        let log2 = log.clone();
        log.record(ev(OpKind::Delete, "/x", 0));
        assert_eq!(log2.len(), 1);
    }
}
