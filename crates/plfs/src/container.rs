//! Container structures, droppings and the index.

use ada_json::Value;
use ada_simfs::{Content, FsError, SimFileSystem};
use ada_storagesim::SimDuration;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// PLFS-layer errors.
#[derive(Debug)]
pub enum PlfsError {
    /// Unknown backend mount name.
    UnknownBackend(String),
    /// Logical file does not exist.
    NoSuchLogical(String),
    /// Logical file already exists.
    LogicalExists(String),
    /// No droppings carry the requested tag.
    NoSuchTag {
        /// Logical file queried.
        logical: String,
        /// Tag queried.
        tag: String,
    },
    /// Underlying file-system failure.
    Fs(FsError),
    /// Index deserialization failure.
    CorruptIndex(String),
}

impl From<FsError> for PlfsError {
    fn from(e: FsError) -> PlfsError {
        PlfsError::Fs(e)
    }
}

impl std::fmt::Display for PlfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlfsError::UnknownBackend(b) => write!(f, "unknown backend '{}'", b),
            PlfsError::NoSuchLogical(l) => write!(f, "no such logical file '{}'", l),
            PlfsError::LogicalExists(l) => write!(f, "logical file '{}' exists", l),
            PlfsError::NoSuchTag { logical, tag } => {
                write!(f, "no droppings tagged '{}' in '{}'", tag, logical)
            }
            PlfsError::Fs(e) => write!(f, "fs error: {}", e),
            PlfsError::CorruptIndex(m) => write!(f, "corrupt index: {}", m),
        }
    }
}

impl std::error::Error for PlfsError {}

/// One index entry: where a contiguous logical extent physically lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRecord {
    /// Logical byte offset within the logical file.
    pub logical_offset: u64,
    /// Extent length in bytes.
    pub len: u64,
    /// Tag carried by this dropping ("p", "m", ...).
    pub tag: String,
    /// Backend mount the dropping lives on.
    pub backend: String,
    /// Dropping path on that backend.
    pub dropping_path: String,
    /// Decoded frame count of the dropping, when the writer knows it
    /// (XTCF v2 droppings record it so readers map frames to droppings
    /// without byte arithmetic). `0` means unknown/legacy.
    pub frames: u64,
}

impl IndexRecord {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("logical_offset", Value::num_u(self.logical_offset)),
            ("len", Value::num_u(self.len)),
            ("tag", Value::str(self.tag.clone())),
            ("backend", Value::str(self.backend.clone())),
            ("dropping_path", Value::str(self.dropping_path.clone())),
            ("frames", Value::num_u(self.frames)),
        ])
    }

    fn from_json(v: &Value) -> Result<IndexRecord, ada_json::JsonError> {
        Ok(IndexRecord {
            logical_offset: v.field("logical_offset")?.as_u64()?,
            len: v.field("len")?.as_u64()?,
            tag: v.field("tag")?.as_str()?.to_string(),
            backend: v.field("backend")?.as_str()?.to_string(),
            dropping_path: v.field("dropping_path")?.as_str()?.to_string(),
            // Indices persisted before the field existed load as unknown.
            frames: match v.field("frames") {
                Ok(f) => f.as_u64()?,
                Err(_) => 0,
            },
        })
    }
}

/// Bump the per-backend container I/O counters
/// (`plfs.{backend}.{op}.ops` / `.bytes`) — how each mount's share of
/// dropping traffic reaches metrics snapshots.
fn count_op(backend: &str, op: &str, bytes: u64) {
    if ada_telemetry::disabled() {
        return;
    }
    let reg = ada_telemetry::global();
    let base = format!("plfs.{}.{}", backend, op);
    reg.counter(&format!("{}.ops", base)).inc();
    reg.counter(&format!("{}.bytes", base)).add(bytes);
}

/// Chunk-granular read accounting for chunked (XTCF v2) droppings: how
/// many chunks a dropping read actually decoded vs skipped cold
/// (`plfs.{backend}.read.chunks.decoded` / `.skipped` dynamic family).
pub fn note_chunk_reads(backend: &str, decoded: u64, skipped: u64) {
    if ada_telemetry::disabled() {
        return;
    }
    let reg = ada_telemetry::global();
    reg.counter(&format!("plfs.{}.read.chunks.decoded", backend))
        .add(decoded);
    reg.counter(&format!("plfs.{}.read.chunks.skipped", backend))
        .add(skipped);
}

#[derive(Debug, Default)]
struct ContainerIndex {
    records: Vec<IndexRecord>,
    next_seq: u64,
    logical_len: u64,
}

/// A set of backend mounts plus the containers living across them.
pub struct ContainerSet {
    backends: Vec<(String, Arc<dyn SimFileSystem>)>,
    containers: Mutex<BTreeMap<String, ContainerIndex>>,
}

impl std::fmt::Debug for ContainerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Backend names identify the stack; the container index stays
        // behind its Mutex (and `dyn SimFileSystem` has no Debug bound).
        let names: Vec<&str> = self.backends.iter().map(|(n, _)| n.as_str()).collect();
        f.debug_struct("ContainerSet")
            .field("backends", &names)
            .field("containers", &self.containers.lock().len())
            .finish()
    }
}

impl ContainerSet {
    /// New container set over named backend mounts (e.g. `[("mnt1", ssd),
    /// ("mnt2", hdd)]`).
    pub fn new(backends: Vec<(String, Arc<dyn SimFileSystem>)>) -> ContainerSet {
        assert!(!backends.is_empty(), "need at least one backend");
        ContainerSet {
            backends,
            containers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Backend mount names, in order.
    pub fn backend_names(&self) -> Vec<String> {
        self.backends.iter().map(|(n, _)| n.clone()).collect()
    }

    fn backend(&self, name: &str) -> Result<&Arc<dyn SimFileSystem>, PlfsError> {
        self.backends
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, fs)| fs)
            .ok_or_else(|| PlfsError::UnknownBackend(name.to_string()))
    }

    /// Create a logical file: a container skeleton (a `.plfs_container`
    /// marker under `mnt*/<logical>/`) on every backend, as PLFS does.
    pub fn create_logical(&self, logical: &str) -> Result<SimDuration, PlfsError> {
        let mut g = self.containers.lock();
        if g.contains_key(logical) {
            return Err(PlfsError::LogicalExists(logical.to_string()));
        }
        let mut total = SimDuration::ZERO;
        for (mnt, fs) in &self.backends {
            let marker = format!("{}/{}/.plfs_container", mnt, logical);
            total += fs.create(&marker, Content::real(Vec::new()))?;
        }
        g.insert(logical.to_string(), ContainerIndex::default());
        Ok(total)
    }

    /// Whether a logical file exists.
    pub fn exists(&self, logical: &str) -> bool {
        self.containers.lock().contains_key(logical)
    }

    /// All logical files, sorted.
    pub fn list_logical(&self) -> Vec<String> {
        self.containers.lock().keys().cloned().collect()
    }

    /// Remove a logical file: every dropping, the persisted index, and the
    /// container markers on all backends.
    pub fn delete_logical(&self, logical: &str) -> Result<(), PlfsError> {
        let idx = self
            .containers
            .lock()
            .remove(logical)
            .ok_or_else(|| PlfsError::NoSuchLogical(logical.to_string()))?;
        for record in &idx.records {
            if let Ok(fs) = self.backend(&record.backend) {
                let _ = fs.delete(&record.dropping_path);
            }
        }
        for (mnt, fs) in &self.backends {
            let _ = fs.delete(&format!("{}/{}/hostdir.0/index", mnt, logical));
            let _ = fs.delete(&format!("{}/{}/.plfs_container", mnt, logical));
        }
        Ok(())
    }

    /// Append a tagged extent to `logical`, physically stored as a new
    /// dropping on `backend`. The dropping's frame count is recorded as
    /// unknown; writers that know it use [`ContainerSet::append_tagged_frames`].
    pub fn append_tagged(
        &self,
        logical: &str,
        tag: &str,
        backend: &str,
        content: Content,
    ) -> Result<SimDuration, PlfsError> {
        self.append_tagged_frames(logical, tag, backend, content, 0)
    }

    /// [`ContainerSet::append_tagged`] with the dropping's decoded frame
    /// count recorded in its index record (`0` = unknown).
    pub fn append_tagged_frames(
        &self,
        logical: &str,
        tag: &str,
        backend: &str,
        content: Content,
        frames: u64,
    ) -> Result<SimDuration, PlfsError> {
        let fs = self.backend(backend)?.clone();
        let mut g = self.containers.lock();
        let idx = g
            .get_mut(logical)
            .ok_or_else(|| PlfsError::NoSuchLogical(logical.to_string()))?;
        let seq = idx.next_seq;
        idx.next_seq += 1;
        let dropping_path = format!(
            "{}/{}/hostdir.0/dropping.data.{}.{}",
            backend, logical, tag, seq
        );
        let len = content.len();
        let d = fs.create(&dropping_path, content)?;
        count_op(backend, "write", len);
        idx.records.push(IndexRecord {
            logical_offset: idx.logical_len,
            len,
            tag: tag.to_string(),
            backend: backend.to_string(),
            dropping_path,
            frames,
        });
        idx.logical_len += len;
        Ok(d)
    }

    /// Total logical length of a logical file.
    pub fn logical_len(&self, logical: &str) -> Result<u64, PlfsError> {
        self.containers
            .lock()
            .get(logical)
            .map(|i| i.logical_len)
            .ok_or_else(|| PlfsError::NoSuchLogical(logical.to_string()))
    }

    /// A copy of the index records of `logical`.
    pub fn index(&self, logical: &str) -> Result<Vec<IndexRecord>, PlfsError> {
        self.containers
            .lock()
            .get(logical)
            .map(|i| i.records.clone())
            .ok_or_else(|| PlfsError::NoSuchLogical(logical.to_string()))
    }

    /// Distinct tags present in `logical`, in first-seen order.
    pub fn tags(&self, logical: &str) -> Result<Vec<String>, PlfsError> {
        let records = self.index(logical)?;
        let mut tags: Vec<String> = Vec::new();
        for r in records {
            if !tags.contains(&r.tag) {
                tags.push(r.tag);
            }
        }
        Ok(tags)
    }

    fn read_records(&self, records: &[IndexRecord]) -> Result<(Content, SimDuration), PlfsError> {
        // Fetch droppings; per-backend costs serialize, across backends they
        // overlap (the PLFS read plan fans out to every backend at once).
        let mut per_backend: BTreeMap<&str, SimDuration> = BTreeMap::new();
        let mut parts: Vec<Content> = Vec::with_capacity(records.len());
        for r in records {
            let fs = self.backend(&r.backend)?;
            let (content, d) = fs.read(&r.dropping_path)?;
            count_op(&r.backend, "read", content.len());
            *per_backend
                .entry(r.backend.as_str())
                .or_insert(SimDuration::ZERO) += d;
            parts.push(content);
        }
        let duration = per_backend
            .values()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        let mut out = Content::real(Vec::new());
        for p in parts {
            out = out.concat(&p);
        }
        Ok((out, duration))
    }

    /// Read the whole logical file (droppings concatenated in logical
    /// order).
    pub fn read_all(&self, logical: &str) -> Result<(Content, SimDuration), PlfsError> {
        let mut records = self.index(logical)?;
        records.sort_by_key(|r| r.logical_offset);
        self.read_records(&records)
    }

    /// Read only the extents tagged `tag` — the operation behind
    /// `mol addfile bar.xtc tag p`.
    pub fn read_tagged(
        &self,
        logical: &str,
        tag: &str,
    ) -> Result<(Content, SimDuration), PlfsError> {
        let mut records: Vec<IndexRecord> = self
            .index(logical)?
            .into_iter()
            .filter(|r| r.tag == tag)
            .collect();
        if records.is_empty() {
            return Err(PlfsError::NoSuchTag {
                logical: logical.to_string(),
                tag: tag.to_string(),
            });
        }
        records.sort_by_key(|r| r.logical_offset);
        self.read_records(&records)
    }

    /// Read one dropping by its index record (the retriever's unit
    /// operation).
    pub fn read_dropping(&self, record: &IndexRecord) -> Result<(Content, SimDuration), PlfsError> {
        let fs = self.backend(&record.backend)?;
        let (content, d) = fs.read(&record.dropping_path)?;
        count_op(&record.backend, "read", content.len());
        Ok((content, d))
    }

    /// Bytes stored per backend for `logical` (reporting).
    pub fn bytes_by_backend(&self, logical: &str) -> Result<BTreeMap<String, u64>, PlfsError> {
        let mut out = BTreeMap::new();
        for r in self.index(logical)? {
            *out.entry(r.backend).or_insert(0) += r.len;
        }
        Ok(out)
    }

    /// Move every dropping of `tag` in `logical` onto `target` backend,
    /// rewriting the index. Returns the virtual time spent (reads from the
    /// old backend + writes to the new one, serialized — migration is a
    /// background maintenance task, not a fast path).
    pub fn migrate_tag(
        &self,
        logical: &str,
        tag: &str,
        target: &str,
    ) -> Result<SimDuration, PlfsError> {
        // Validate the target before touching anything.
        let target_fs = self.backend(target)?.clone();
        let records: Vec<(usize, IndexRecord)> = self
            .index(logical)?
            .into_iter()
            .enumerate()
            .filter(|(_, r)| r.tag == tag)
            .collect();
        if records.is_empty() {
            return Err(PlfsError::NoSuchTag {
                logical: logical.to_string(),
                tag: tag.to_string(),
            });
        }
        let mut total = SimDuration::ZERO;
        for (pos, record) in records {
            if record.backend == target {
                continue;
            }
            let source_fs = self.backend(&record.backend)?.clone();
            let (content, rd) = source_fs.read(&record.dropping_path)?;
            total += rd;
            // New dropping path under the target mount keeps the container
            // naming scheme.
            let new_path = record.dropping_path.replacen(&record.backend, target, 1);
            total += target_fs.create(&new_path, content)?;
            source_fs.delete(&record.dropping_path)?;
            let mut g = self.containers.lock();
            let idx = g
                .get_mut(logical)
                .ok_or_else(|| PlfsError::NoSuchLogical(logical.to_string()))?;
            idx.records[pos].backend = target.to_string();
            idx.records[pos].dropping_path = new_path;
        }
        Ok(total)
    }

    /// Persist the index of `logical` as a JSON dropping on the first
    /// backend (PLFS writes `index` files next to data droppings; ADA's
    /// labeler "stores its path on the underlying file system for later
    /// use").
    pub fn persist_index(&self, logical: &str) -> Result<SimDuration, PlfsError> {
        let json = {
            let g = self.containers.lock();
            let idx = g
                .get(logical)
                .ok_or_else(|| PlfsError::NoSuchLogical(logical.to_string()))?;
            Value::Arr(idx.records.iter().map(IndexRecord::to_json).collect()).to_vec()
        };
        let (mnt, fs) = &self.backends[0];
        let path = format!("{}/{}/hostdir.0/index", mnt, logical);
        if fs.exists(&path) {
            fs.delete(&path)?;
        }
        Ok(fs.create(&path, Content::real(json))?)
    }

    /// Load a persisted index from backend 0, replacing the in-memory one
    /// (recovery path; also exercises that the index really round-trips
    /// through the FS).
    pub fn load_index(&self, logical: &str) -> Result<SimDuration, PlfsError> {
        let (mnt, fs) = &self.backends[0];
        let path = format!("{}/{}/hostdir.0/index", mnt, logical);
        let (content, d) = fs.read(&path)?;
        let bytes = content
            .as_real()
            .ok_or_else(|| PlfsError::CorruptIndex("index is synthetic".into()))?;
        let records: Vec<IndexRecord> = ada_json::parse(bytes)
            .and_then(|v| v.as_arr()?.iter().map(IndexRecord::from_json).collect())
            .map_err(|e| PlfsError::CorruptIndex(e.to_string()))?;
        let logical_len = records
            .iter()
            .map(|r| r.logical_offset + r.len)
            .max()
            .unwrap_or(0);
        let next_seq = records.len() as u64;
        self.containers.lock().insert(
            logical.to_string(),
            ContainerIndex {
                records,
                next_seq,
                logical_len,
            },
        );
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_simfs::LocalFs;

    fn two_backend_set() -> ContainerSet {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        ContainerSet::new(vec![("mnt1".into(), ssd), ("mnt2".into(), hdd)])
    }

    #[test]
    fn create_and_marker_files() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        assert!(cs.exists("bar"));
        // Container skeleton exists on both mounts (Fig. 6).
        let (_, ssd) = (&cs.backends[0].0, &cs.backends[0].1);
        assert!(ssd.exists("mnt1/bar/.plfs_container"));
        let (_, hdd) = (&cs.backends[1].0, &cs.backends[1].1);
        assert!(hdd.exists("mnt2/bar/.plfs_container"));
        assert!(matches!(
            cs.create_logical("bar"),
            Err(PlfsError::LogicalExists(_))
        ));
    }

    #[test]
    fn tagged_append_routes_to_chosen_backend() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![1u8; 100]))
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::real(vec![2u8; 300]))
            .unwrap();
        let by_backend = cs.bytes_by_backend("bar").unwrap();
        assert_eq!(by_backend["mnt1"], 100);
        assert_eq!(by_backend["mnt2"], 300);
        assert_eq!(cs.logical_len("bar").unwrap(), 400);
        assert_eq!(cs.tags("bar").unwrap(), vec!["p", "m"]);
    }

    #[test]
    fn read_all_reassembles_in_logical_order() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![1u8, 1]))
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::real(vec![2u8, 2, 2]))
            .unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![3u8]))
            .unwrap();
        let (c, _) = cs.read_all("bar").unwrap();
        assert_eq!(c.as_real().unwrap().as_ref(), &[1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn read_tagged_filters() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![1u8, 1]))
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::real(vec![2u8, 2, 2]))
            .unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![3u8]))
            .unwrap();
        let (p, _) = cs.read_tagged("bar", "p").unwrap();
        assert_eq!(p.as_real().unwrap().as_ref(), &[1, 1, 3]);
        let (m, _) = cs.read_tagged("bar", "m").unwrap();
        assert_eq!(m.as_real().unwrap().as_ref(), &[2, 2, 2]);
        assert!(matches!(
            cs.read_tagged("bar", "z"),
            Err(PlfsError::NoSuchTag { .. })
        ));
    }

    #[test]
    fn tagged_read_skips_slow_backend() {
        // The point of the split layout: reading "p" must not touch the HDD.
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        let mb = 1_000_000u64;
        cs.append_tagged("bar", "p", "mnt1", Content::synthetic(400 * mb))
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::synthetic(600 * mb))
            .unwrap();
        let (_, tp) = cs.read_tagged("bar", "p").unwrap();
        let (_, tall) = cs.read_all("bar").unwrap();
        // 400 MB from NVMe ≈ 0.13 s; the full read is bounded by 600 MB
        // from the HDD ≈ 4.8 s.
        assert!(tp.as_secs_f64() < 0.2, "protein read {}", tp.as_secs_f64());
        assert!(tall.as_secs_f64() > 4.0, "full read {}", tall.as_secs_f64());
    }

    #[test]
    fn parallel_backends_cost_max_not_sum() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        let gb = 1_000_000_000u64;
        // 3 GB on NVMe (~1 s) and 0.126 GB on HDD (~1 s).
        cs.append_tagged("bar", "p", "mnt1", Content::synthetic(3 * gb))
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::synthetic(126_000_000))
            .unwrap();
        let (_, d) = cs.read_all("bar").unwrap();
        let secs = d.as_secs_f64();
        assert!(secs > 0.9 && secs < 1.3, "expected ~max(1,1)={}", secs);
    }

    #[test]
    fn unknown_backend_rejected() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        assert!(matches!(
            cs.append_tagged("bar", "p", "mnt9", Content::synthetic(1)),
            Err(PlfsError::UnknownBackend(_))
        ));
    }

    #[test]
    fn append_to_missing_logical_rejected() {
        let cs = two_backend_set();
        assert!(matches!(
            cs.append_tagged("nope", "p", "mnt1", Content::synthetic(1)),
            Err(PlfsError::NoSuchLogical(_))
        ));
    }

    #[test]
    fn index_persists_and_reloads() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![1u8; 10]))
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::real(vec![2u8; 20]))
            .unwrap();
        cs.persist_index("bar").unwrap();
        let before = cs.index("bar").unwrap();
        // Wipe the in-memory index, reload from storage.
        cs.containers.lock().remove("bar");
        assert!(!cs.exists("bar"));
        cs.load_index("bar").unwrap();
        assert_eq!(cs.index("bar").unwrap(), before);
        assert_eq!(cs.logical_len("bar").unwrap(), 30);
        // Data still readable through the reloaded index.
        let (p, _) = cs.read_tagged("bar", "p").unwrap();
        assert_eq!(p.as_real().unwrap().as_ref(), &[1u8; 10][..]);
    }

    #[test]
    fn frame_counts_survive_the_index_round_trip() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        cs.append_tagged_frames("bar", "p", "mnt1", Content::real(vec![1u8; 10]), 7)
            .unwrap();
        cs.append_tagged("bar", "m", "mnt2", Content::real(vec![2u8; 20]))
            .unwrap();
        cs.persist_index("bar").unwrap();
        cs.containers.lock().remove("bar");
        cs.load_index("bar").unwrap();
        let records = cs.index("bar").unwrap();
        assert_eq!(records[0].frames, 7);
        assert_eq!(records[1].frames, 0); // writer did not know the count
    }

    #[test]
    fn legacy_index_without_frames_field_loads_as_unknown() {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        cs.append_tagged("bar", "p", "mnt1", Content::real(vec![1u8; 10]))
            .unwrap();
        // Persist an index in the pre-`frames` schema by hand.
        let json = Value::Arr(vec![Value::obj(vec![
            ("logical_offset", Value::num_u(0)),
            ("len", Value::num_u(10)),
            ("tag", Value::str("p".to_string())),
            ("backend", Value::str("mnt1".to_string())),
            (
                "dropping_path",
                Value::str("mnt1/bar/hostdir.0/dropping.data.p.0".to_string()),
            ),
        ])])
        .to_vec();
        let fs = &cs.backends[0].1;
        fs.create("mnt1/bar/hostdir.0/index", Content::real(json))
            .unwrap();
        cs.containers.lock().remove("bar");
        cs.load_index("bar").unwrap();
        let records = cs.index("bar").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].frames, 0);
        let (p, _) = cs.read_tagged("bar", "p").unwrap();
        assert_eq!(p.as_real().unwrap().as_ref(), &[1u8; 10][..]);
    }

    #[test]
    fn synthetic_droppings_flow_through() {
        let cs = two_backend_set();
        cs.create_logical("big").unwrap();
        cs.append_tagged("big", "p", "mnt1", Content::synthetic(1 << 35))
            .unwrap();
        let (c, _) = cs.read_tagged("big", "p").unwrap();
        assert_eq!(c.len(), 1 << 35);
        assert!(!c.is_real());
    }

    // ADA's parallel query path shares one ContainerSet across reader
    // threads, so the set must be usable from multiple threads at once.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ContainerSet>();
    };

    #[test]
    fn concurrent_dropping_reads_see_consistent_bytes() {
        let cs = Arc::new(two_backend_set());
        cs.create_logical("bar").unwrap();
        // One distinct dropping per (tag, seq): payload bytes identify it.
        for i in 0..8u8 {
            let backend = if i % 2 == 0 { "mnt1" } else { "mnt2" };
            cs.append_tagged("bar", "p", backend, Content::real(vec![i; 64]))
                .unwrap();
        }
        let records = cs.index("bar").unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cs = Arc::clone(&cs);
            let records = records.clone();
            handles.push(std::thread::spawn(move || {
                for r in &records {
                    let (content, _) = cs.read_dropping(r).unwrap();
                    let expect = (r.dropping_path.rsplit('.').next().unwrap())
                        .parse::<u8>()
                        .unwrap();
                    assert_eq!(content.as_real().unwrap().as_ref(), &[expect; 64][..]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
