#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-plfs — a PLFS-style container layer with multiple backends
//!
//! ADA's I/O dispatcher "is developed based on PLFS, a parallel
//! log-structured file system... Since PLFS supports multiple backends, the
//! I/O dispatcher modifies this feature to distribute sub datasets with
//! diverse target storage information to their right destinations" (§3.3).
//!
//! This crate reproduces the abstraction ADA actually uses:
//!
//! * a **logical file** (e.g. `bar`) maps to a *container* on each backend
//!   mount: a `mnt*/bar/` directory tree holding **data droppings**
//!   (`hostdir.0/dropping.data.<seq>`) and an **index**;
//! * every write is appended as a new dropping on a *caller-chosen backend*
//!   and recorded in the index with its logical offset, length, tag and
//!   physical location (Fig. 6's `bar/mnt1`, `bar/mnt2` picture);
//! * reads reassemble a logical file — or just the droppings carrying one
//!   tag — by walking the index; droppings living on different backends
//!   are fetched from each backend in parallel (durations compose by
//!   `max` per backend, `+` within a backend's queue).
//!
//! The underlying [`SimFileSystem`]s stay completely unaware that the
//! dropping files they store are pieces of a larger logical file — PLFS's
//! transparency property, which is what lets ADA run over unmodified
//! ext4/XFS/PVFS.

pub mod container;

pub use container::{note_chunk_reads, ContainerSet, IndexRecord, PlfsError};

#[cfg(test)]
mod tests {
    // Integration-style checks live in container.rs and in the workspace
    // tests/ suite.
}
