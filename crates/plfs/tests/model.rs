//! Model-based property testing of the PLFS container layer: a random
//! sequence of tagged appends across random backends must reassemble — per
//! tag and in total — exactly like a naive in-memory model, regardless of
//! backend routing, dropping sizes, or index persistence round-trips.

use ada_plfs::ContainerSet;
use ada_simfs::{Content, LocalFs, SimFileSystem};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn make_set(nbackends: usize) -> (ContainerSet, Vec<String>) {
    let backends: Vec<(String, Arc<dyn SimFileSystem>)> = (0..nbackends)
        .map(|i| {
            let fs: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
            (format!("mnt{}", i), fs)
        })
        .collect();
    let names = backends.iter().map(|(n, _)| n.clone()).collect();
    (ContainerSet::new(backends), names)
}

#[derive(Debug, Clone)]
struct Op {
    tag: usize,
    backend: usize,
    payload: Vec<u8>,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0usize..4,
            0usize..3,
            prop::collection::vec(any::<u8>(), 0..200),
        ),
        1..40,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(tag, backend, payload)| Op {
                tag,
                backend,
                payload,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn appends_reassemble_like_the_model(ops in arb_ops(), persist in any::<bool>()) {
        let (cs, backends) = make_set(3);
        cs.create_logical("bar").unwrap();

        let mut model_total: Vec<u8> = Vec::new();
        let mut model_by_tag: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            let tag = format!("t{}", op.tag);
            let backend = &backends[op.backend];
            cs.append_tagged("bar", &tag, backend, Content::real(op.payload.clone()))
                .unwrap();
            model_total.extend_from_slice(&op.payload);
            model_by_tag.entry(tag).or_default().extend_from_slice(&op.payload);
        }

        if persist {
            cs.persist_index("bar").unwrap();
            cs.load_index("bar").unwrap();
        }

        // Whole-file read matches the model.
        let (all, _) = cs.read_all("bar").unwrap();
        prop_assert_eq!(all.as_real().unwrap().as_ref(), &model_total[..]);
        prop_assert_eq!(cs.logical_len("bar").unwrap(), model_total.len() as u64);

        // Every tag's filtered read matches.
        for (tag, expect) in &model_by_tag {
            let (got, _) = cs.read_tagged("bar", tag).unwrap();
            prop_assert_eq!(got.as_real().unwrap().as_ref(), &expect[..]);
        }

        // Placement accounting matches.
        let by_backend = cs.bytes_by_backend("bar").unwrap();
        let mut model_backend: BTreeMap<String, u64> = BTreeMap::new();
        for op in &ops {
            *model_backend.entry(backends[op.backend].clone()).or_insert(0) +=
                op.payload.len() as u64;
        }
        for (b, bytes) in &by_backend {
            prop_assert_eq!(*bytes, model_backend.get(b).copied().unwrap_or(0));
        }

        // Index invariant: records tile [0, logical_len) without overlap.
        let mut records = cs.index("bar").unwrap();
        records.sort_by_key(|r| r.logical_offset);
        let mut cursor = 0u64;
        for r in &records {
            prop_assert_eq!(r.logical_offset, cursor);
            cursor += r.len;
        }
        prop_assert_eq!(cursor, model_total.len() as u64);
    }

    #[test]
    fn tag_reads_are_order_stable(ops in arb_ops()) {
        // Reading tags repeatedly (any order) never changes results.
        let (cs, backends) = make_set(3);
        cs.create_logical("bar").unwrap();
        for op in &ops {
            cs.append_tagged(
                "bar",
                &format!("t{}", op.tag),
                &backends[op.backend],
                Content::real(op.payload.clone()),
            )
            .unwrap();
        }
        let tags = cs.tags("bar").unwrap();
        let first: Vec<Vec<u8>> = tags
            .iter()
            .map(|t| cs.read_tagged("bar", t).unwrap().0.as_real().unwrap().to_vec())
            .collect();
        for _ in 0..3 {
            for (t, expect) in tags.iter().zip(&first) {
                let (got, _) = cs.read_tagged("bar", t).unwrap();
                prop_assert_eq!(got.as_real().unwrap().as_ref(), &expect[..]);
            }
        }
    }
}
