//! Fixed-width little-endian primitives the protocol payloads are built
//! from, plus the typed decode error.
//!
//! Strings and byte blobs are `u32` length-prefixed; `Option<T>` is a
//! one-byte presence tag followed by the value. Every read is
//! bounds-checked and returns a structured [`ProtoError`] — a malformed
//! peer can never panic the decoder.

use ada_core::AdaError;

/// Everything that can go wrong between two protocol endpoints below the
/// request layer: framing violations, payload corruption, and transport
/// failures. Surfaces to callers as [`AdaError::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The input ended before a complete field/frame was read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame did not start with `"ADAP"`.
    BadMagic {
        /// The four bytes actually read.
        got: [u8; 4],
    },
    /// The peer speaks a protocol version this build does not.
    BadVersion {
        /// The version byte actually read.
        got: u8,
    },
    /// The payload checksum did not match the header's declaration.
    BadCrc {
        /// CRC-32 declared in the frame header.
        declared: u32,
        /// CRC-32 computed over the received payload.
        computed: u32,
    },
    /// The header declared a payload larger than the receiver's limit;
    /// rejected before any allocation, so a hostile length cannot balloon
    /// memory.
    Oversized {
        /// Declared payload length.
        declared: u32,
        /// The receiver's configured maximum.
        max: u32,
    },
    /// A well-framed payload failed structural decoding (unknown
    /// discriminant, invalid UTF-8, trailing garbage).
    Malformed(String),
    /// The underlying socket failed (connect/read/write error, timeout,
    /// peer hangup mid-frame).
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { needed, got } => {
                write!(f, "truncated: needed {} bytes, got {}", needed, got)
            }
            ProtoError::BadMagic { got } => write!(f, "bad frame magic {:02x?}", got),
            ProtoError::BadVersion { got } => write!(f, "unsupported protocol version {}", got),
            ProtoError::BadCrc { declared, computed } => write!(
                f,
                "payload crc mismatch: header declares {:#010x}, computed {:#010x}",
                declared, computed
            ),
            ProtoError::Oversized { declared, max } => write!(
                f,
                "declared payload length {} exceeds the {} byte limit",
                declared, max
            ),
            ProtoError::Malformed(m) => write!(f, "malformed payload: {}", m),
            ProtoError::Io(m) => write!(f, "io: {}", m),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for AdaError {
    fn from(e: ProtoError) -> AdaError {
        AdaError::Network {
            detail: e.to_string(),
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e.to_string())
    }
}

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128` (trace ids, simulated nanoseconds).
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its IEEE-754 bits.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed byte blob (`u32` length, saturating at
    /// `u32::MAX` is unreachable because frames are length-limited far
    /// below it).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len().min(u32::MAX as usize) as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append an optional string as presence byte + value.
    pub fn put_opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.put_u8(0),
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
        }
    }
}

/// Bounds-checked payload decoder over a received byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Decode from `data`, starting at offset 0.
    pub fn new(data: &'a [u8]) -> WireReader<'a> {
        WireReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fail unless every byte was consumed — catches frames with trailing
    /// garbage that a lenient decoder would silently accept.
    pub fn expect_end(&self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, ProtoError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, ProtoError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, ProtoError> {
        let s = self.take(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(u128::from_le_bytes(b))
    }

    /// Read a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, ProtoError> {
        let s = self.take(4)?;
        Ok(i32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read an `f32` from its IEEE-754 bits.
    pub fn get_f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, ProtoError> {
        let len = self.get_u32()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| ProtoError::Malformed("string field is not UTF-8".to_string()))
    }

    /// Read an optional string written by [`WireWriter::put_opt_str`].
    pub fn get_opt_str(&mut self) -> Result<Option<String>, ProtoError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            other => Err(ProtoError::Malformed(format!(
                "invalid Option tag {}",
                other
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_u128(1 << 90);
        w.put_i32(-42);
        w.put_f32(3.5);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        w.put_opt_str(None);
        w.put_opt_str(Some("tag"));
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_u128().unwrap(), 1 << 90);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap(), 3.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_opt_str().unwrap(), None);
        assert_eq!(r.get_opt_str().unwrap(), Some("tag".to_string()));
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut r = WireReader::new(&[1, 2]);
        match r.get_u32() {
            Err(ProtoError::Truncated { needed: 4, got: 2 }) => {}
            other => panic!("expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn string_length_beyond_buffer_is_typed() {
        let mut w = WireWriter::new();
        w.put_u32(1_000_000); // declared string length with no body
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let r = WireReader::new(&[0xff]);
        assert!(matches!(r.expect_end(), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn proto_error_maps_to_network_kind() {
        let e: AdaError = ProtoError::BadVersion { got: 9 }.into();
        assert_eq!(e.kind(), "network");
    }
}
