//! Length-prefixed frame envelope: magic, version, declared length, and
//! a payload CRC (the XTCF v2 checksum, [`ada_mdformats::xtcf::crc32`]).
//!
//! The framing is deliberately paranoid in the receive direction: the
//! declared length is validated against the receiver's limit *before*
//! any allocation, and the CRC is checked before the payload reaches the
//! structural decoder — a flipped bit fails fast with a typed error
//! instead of a confusing decode failure deeper in.

use std::io::{Read, Write};

use ada_mdformats::xtcf::crc32;

use crate::wire::ProtoError;

/// Frame magic: every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"ADAP";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Encoded header size: magic(4) + version(1) + length(4) + crc(4).
pub const HEADER_LEN: usize = 13;

/// Default receive-side payload limit (64 MiB) — comfortably above the
/// largest trajectory the test workloads ship, far below a hostile
/// 4 GiB declaration.
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes.
    pub len: u32,
    /// IEEE CRC-32 the payload must hash to.
    pub crc: u32,
}

/// Render the header for `payload`.
fn header_bytes(payload: &[u8]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    h[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[9..13].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// Header + payload as one buffer (the send path writes it with a single
/// syscall so a concurrent reader never sees a torn frame boundary).
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, ProtoError> {
    if payload.len() > u32::MAX as usize {
        return Err(ProtoError::Oversized {
            declared: u32::MAX,
            max: u32::MAX,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header_bytes(payload));
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validate magic, version, and declared length (against `max_len`,
/// *before* the caller allocates the payload buffer).
pub fn parse_header(bytes: &[u8; HEADER_LEN], max_len: u32) -> Result<FrameHeader, ProtoError> {
    let got = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if got != MAGIC {
        return Err(ProtoError::BadMagic { got });
    }
    if bytes[4] != VERSION {
        return Err(ProtoError::BadVersion { got: bytes[4] });
    }
    let len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    if len > max_len {
        return Err(ProtoError::Oversized {
            declared: len,
            max: max_len,
        });
    }
    let crc = u32::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
    Ok(FrameHeader { len, crc })
}

/// Check the received payload against the header's CRC declaration.
pub fn verify_payload(header: &FrameHeader, payload: &[u8]) -> Result<(), ProtoError> {
    let computed = crc32(payload);
    if computed != header.crc {
        return Err(ProtoError::BadCrc {
            declared: header.crc,
            computed,
        });
    }
    Ok(())
}

/// Write one frame to `w` (blocking).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)?;
    Ok(())
}

/// Read one frame from `r` (blocking), returning the verified payload.
/// `Ok(None)` means the peer closed cleanly at a frame boundary; EOF
/// mid-frame is a typed [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(ProtoError::Truncated {
                needed: HEADER_LEN,
                got: filled,
            });
        }
        filled += n;
    }
    let h = parse_header(&header, max_len)?;
    let mut payload = vec![0u8; h.len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        let n = r.read(&mut payload[filled..])?;
        if n == 0 {
            return Err(ProtoError::Truncated {
                needed: payload.len(),
                got: filled,
            });
        }
        filled += n;
    }
    verify_payload(&h, &payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_a_cursor() {
        let payload = b"the quick brown fox".to_vec();
        let frame = encode_frame(&payload).unwrap();
        let mut cursor = std::io::Cursor::new(frame);
        let back = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back, Some(payload));
        // Clean EOF after the frame.
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let frame = encode_frame(&[]).unwrap();
        assert_eq!(frame.len(), HEADER_LEN);
        let mut cursor = std::io::Cursor::new(frame);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            Some(Vec::new())
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut frame = encode_frame(b"x").unwrap();
        frame[0] = b'X';
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(ProtoError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut frame = encode_frame(b"x").unwrap();
        frame[4] = VERSION + 1;
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(ProtoError::BadVersion { .. })
        ));
    }

    #[test]
    fn flipped_crc_byte_is_typed() {
        let mut frame = encode_frame(b"payload bytes").unwrap();
        frame[9] ^= 0x40;
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(ProtoError::BadCrc { .. })
        ));
    }

    #[test]
    fn flipped_payload_byte_is_typed() {
        let mut frame = encode_frame(b"payload bytes").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(ProtoError::BadCrc { .. })
        ));
    }

    #[test]
    fn oversized_declaration_rejected_before_allocation() {
        let mut frame = encode_frame(b"x").unwrap();
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor, 1024) {
            Err(ProtoError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {:?}", other),
        }
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let frame = encode_frame(b"some payload").unwrap();
        // Half a header.
        let mut cursor = std::io::Cursor::new(frame[..6].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(ProtoError::Truncated { .. })
        ));
        // Full header, half the payload.
        let mut cursor = std::io::Cursor::new(frame[..HEADER_LEN + 4].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(ProtoError::Truncated { .. })
        ));
    }
}
