//! Exact structural mapping of [`AdaError`] — including its nested
//! [`FsError`]/[`PlfsError`]/[`XtcError`]/[`FormatError`] sources —
//! across the wire.
//!
//! Every variant has its own discriminant and carries its full field
//! set, so an error decoded on the client has the same `kind()`, the
//! same `Display` rendering, and the same structured fields as the error
//! the server's middleware produced: the networked path is
//! *error-kind-identical* to the in-process path, which the equivalence
//! suite (`tests/network_equivalence.rs`) locks down.

use std::time::Duration;

use ada_core::AdaError;
use ada_mdformats::{FormatError, XtcError};
use ada_plfs::PlfsError;
use ada_simfs::FsError;

use crate::wire::{ProtoError, WireReader, WireWriter};

fn put_duration(w: &mut WireWriter, d: Duration) {
    w.put_u128(d.as_nanos());
}

fn get_duration(r: &mut WireReader) -> Result<Duration, ProtoError> {
    let ns = r.get_u128()?;
    // A duration beyond u64::MAX ns (~584 years) saturates; nothing the
    // scheduler produces gets near it.
    Ok(Duration::from_nanos(ns.min(u64::MAX as u128) as u64))
}

fn encode_fs(w: &mut WireWriter, e: &FsError) {
    match e {
        FsError::NotFound(p) => {
            w.put_u8(0);
            w.put_str(p);
        }
        FsError::AlreadyExists(p) => {
            w.put_u8(1);
            w.put_str(p);
        }
        FsError::NoSpace { requested, free } => {
            w.put_u8(2);
            w.put_u64(*requested);
            w.put_u64(*free);
        }
        FsError::OutOfRange {
            offset,
            len,
            file_len,
        } => {
            w.put_u8(3);
            w.put_u64(*offset);
            w.put_u64(*len);
            w.put_u64(*file_len);
        }
    }
}

fn decode_fs(r: &mut WireReader) -> Result<FsError, ProtoError> {
    Ok(match r.get_u8()? {
        0 => FsError::NotFound(r.get_str()?),
        1 => FsError::AlreadyExists(r.get_str()?),
        2 => FsError::NoSpace {
            requested: r.get_u64()?,
            free: r.get_u64()?,
        },
        3 => FsError::OutOfRange {
            offset: r.get_u64()?,
            len: r.get_u64()?,
            file_len: r.get_u64()?,
        },
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown FsError discriminant {}",
                other
            )))
        }
    })
}

fn encode_plfs(w: &mut WireWriter, e: &PlfsError) {
    match e {
        PlfsError::UnknownBackend(b) => {
            w.put_u8(0);
            w.put_str(b);
        }
        PlfsError::NoSuchLogical(l) => {
            w.put_u8(1);
            w.put_str(l);
        }
        PlfsError::LogicalExists(l) => {
            w.put_u8(2);
            w.put_str(l);
        }
        PlfsError::NoSuchTag { logical, tag } => {
            w.put_u8(3);
            w.put_str(logical);
            w.put_str(tag);
        }
        PlfsError::Fs(fs) => {
            w.put_u8(4);
            encode_fs(w, fs);
        }
        PlfsError::CorruptIndex(m) => {
            w.put_u8(5);
            w.put_str(m);
        }
    }
}

fn decode_plfs(r: &mut WireReader) -> Result<PlfsError, ProtoError> {
    Ok(match r.get_u8()? {
        0 => PlfsError::UnknownBackend(r.get_str()?),
        1 => PlfsError::NoSuchLogical(r.get_str()?),
        2 => PlfsError::LogicalExists(r.get_str()?),
        3 => PlfsError::NoSuchTag {
            logical: r.get_str()?,
            tag: r.get_str()?,
        },
        4 => PlfsError::Fs(decode_fs(r)?),
        5 => PlfsError::CorruptIndex(r.get_str()?),
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown PlfsError discriminant {}",
                other
            )))
        }
    })
}

fn encode_format(w: &mut WireWriter, e: &FormatError) {
    match e {
        FormatError::UnexpectedEof => w.put_u8(0),
        FormatError::Corrupt(m) => {
            w.put_u8(1);
            w.put_str(m);
        }
        FormatError::OutOfRange(m) => {
            w.put_u8(2);
            w.put_str(m);
        }
        FormatError::ChunkCorrupt { chunk, detail } => {
            w.put_u8(3);
            w.put_u64(*chunk as u64);
            w.put_str(detail);
        }
    }
}

fn decode_format(r: &mut WireReader) -> Result<FormatError, ProtoError> {
    Ok(match r.get_u8()? {
        0 => FormatError::UnexpectedEof,
        1 => FormatError::Corrupt(r.get_str()?),
        2 => FormatError::OutOfRange(r.get_str()?),
        3 => FormatError::ChunkCorrupt {
            chunk: r.get_u64()? as usize,
            detail: r.get_str()?,
        },
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown FormatError discriminant {}",
                other
            )))
        }
    })
}

fn encode_xtc(w: &mut WireWriter, e: &XtcError) {
    match e {
        XtcError::Format(fe) => {
            w.put_u8(0);
            encode_format(w, fe);
        }
        XtcError::CoordinateOverflow => w.put_u8(1),
        XtcError::BadMagic(m) => {
            w.put_u8(2);
            w.put_i32(*m);
        }
        XtcError::BadPrecision(p) => {
            w.put_u8(3);
            w.put_f32(*p);
        }
        XtcError::BadAtomCount(n) => {
            w.put_u8(4);
            w.put_i32(*n);
        }
        XtcError::TruncatedPayload => w.put_u8(5),
    }
}

fn decode_xtc(r: &mut WireReader) -> Result<XtcError, ProtoError> {
    Ok(match r.get_u8()? {
        0 => XtcError::Format(decode_format(r)?),
        1 => XtcError::CoordinateOverflow,
        2 => XtcError::BadMagic(r.get_i32()?),
        3 => XtcError::BadPrecision(r.get_f32()?),
        4 => XtcError::BadAtomCount(r.get_i32()?),
        5 => XtcError::TruncatedPayload,
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown XtcError discriminant {}",
                other
            )))
        }
    })
}

/// Append `e` to `w`, fully structurally.
pub fn encode_error(w: &mut WireWriter, e: &AdaError) {
    match e {
        AdaError::Fs(fs) => {
            w.put_u8(0);
            encode_fs(w, fs);
        }
        AdaError::Plfs(p) => {
            w.put_u8(1);
            encode_plfs(w, p);
        }
        AdaError::Xtc(x) => {
            w.put_u8(2);
            encode_xtc(w, x);
        }
        AdaError::Xtcf { dropping, source } => {
            w.put_u8(3);
            w.put_str(dropping);
            encode_format(w, source);
        }
        AdaError::FrameCountMismatch { tag, expected, got } => {
            w.put_u8(4);
            w.put_str(tag);
            w.put_u64(*expected as u64);
            w.put_u64(*got as u64);
        }
        AdaError::Pdb(m) => {
            w.put_u8(5);
            w.put_str(m);
        }
        AdaError::UnknownTag(t) => {
            w.put_u8(6);
            w.put_str(t);
        }
        AdaError::UnknownDataset(d) => {
            w.put_u8(7);
            w.put_str(d);
        }
        AdaError::InvalidRange {
            start,
            end,
            stride,
            nframes,
        } => {
            w.put_u8(8);
            w.put_u64(*start as u64);
            w.put_u64(*end as u64);
            w.put_u64(*stride as u64);
            w.put_u64(*nframes as u64);
        }
        AdaError::AtomMismatch { pdb, xtc } => {
            w.put_u8(9);
            w.put_u64(*pdb as u64);
            w.put_u64(*xtc as u64);
        }
        AdaError::NotTargetApplication(p) => {
            w.put_u8(10);
            w.put_str(p);
        }
        AdaError::Internal(m) => {
            w.put_u8(11);
            w.put_str(m);
        }
        AdaError::Overloaded {
            queue_depth,
            retry_after,
        } => {
            w.put_u8(12);
            w.put_u64(*queue_depth as u64);
            put_duration(w, *retry_after);
        }
        AdaError::DeadlineExceeded { waited, deadline } => {
            w.put_u8(13);
            put_duration(w, *waited);
            put_duration(w, *deadline);
        }
        AdaError::Network { detail } => {
            w.put_u8(14);
            w.put_str(detail);
        }
    }
}

/// Decode an error written by [`encode_error`].
pub fn decode_error(r: &mut WireReader) -> Result<AdaError, ProtoError> {
    Ok(match r.get_u8()? {
        0 => AdaError::Fs(decode_fs(r)?),
        1 => AdaError::Plfs(decode_plfs(r)?),
        2 => AdaError::Xtc(decode_xtc(r)?),
        3 => AdaError::Xtcf {
            dropping: r.get_str()?,
            source: decode_format(r)?,
        },
        4 => AdaError::FrameCountMismatch {
            tag: r.get_str()?,
            expected: r.get_u64()? as usize,
            got: r.get_u64()? as usize,
        },
        5 => AdaError::Pdb(r.get_str()?),
        6 => AdaError::UnknownTag(r.get_str()?),
        7 => AdaError::UnknownDataset(r.get_str()?),
        8 => AdaError::InvalidRange {
            start: r.get_u64()? as usize,
            end: r.get_u64()? as usize,
            stride: r.get_u64()? as usize,
            nframes: r.get_u64()? as usize,
        },
        9 => AdaError::AtomMismatch {
            pdb: r.get_u64()? as usize,
            xtc: r.get_u64()? as usize,
        },
        10 => AdaError::NotTargetApplication(r.get_str()?),
        11 => AdaError::Internal(r.get_str()?),
        12 => AdaError::Overloaded {
            queue_depth: r.get_u64()? as usize,
            retry_after: get_duration(r)?,
        },
        13 => AdaError::DeadlineExceeded {
            waited: get_duration(r)?,
            deadline: get_duration(r)?,
        },
        14 => AdaError::Network {
            detail: r.get_str()?,
        },
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown AdaError discriminant {}",
                other
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &AdaError) -> AdaError {
        let mut w = WireWriter::new();
        encode_error(&mut w, e);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let back = decode_error(&mut r).unwrap();
        r.expect_end().unwrap();
        back
    }

    /// One representative of every `AdaError` kind (and every nested
    /// source variant) must survive the wire with an identical kind AND
    /// an identical `Display` rendering.
    #[test]
    fn every_error_kind_round_trips_identically() {
        let samples: Vec<AdaError> = vec![
            AdaError::Fs(FsError::NotFound("/a/b".into())),
            AdaError::Fs(FsError::AlreadyExists("/a".into())),
            AdaError::Fs(FsError::NoSpace {
                requested: 10,
                free: 3,
            }),
            AdaError::Fs(FsError::OutOfRange {
                offset: 5,
                len: 10,
                file_len: 7,
            }),
            AdaError::Plfs(PlfsError::UnknownBackend("tape".into())),
            AdaError::Plfs(PlfsError::NoSuchLogical("ds".into())),
            AdaError::Plfs(PlfsError::LogicalExists("ds".into())),
            AdaError::Plfs(PlfsError::NoSuchTag {
                logical: "ds".into(),
                tag: "p".into(),
            }),
            AdaError::Plfs(PlfsError::Fs(FsError::NotFound("x".into()))),
            AdaError::Plfs(PlfsError::CorruptIndex("bad json".into())),
            AdaError::Xtc(XtcError::Format(FormatError::UnexpectedEof)),
            AdaError::Xtc(XtcError::Format(FormatError::Corrupt("m".into()))),
            AdaError::Xtc(XtcError::Format(FormatError::OutOfRange("v".into()))),
            AdaError::Xtc(XtcError::CoordinateOverflow),
            AdaError::Xtc(XtcError::BadMagic(-7)),
            AdaError::Xtc(XtcError::BadPrecision(-1.0)),
            AdaError::Xtc(XtcError::BadAtomCount(-3)),
            AdaError::Xtc(XtcError::TruncatedPayload),
            AdaError::Xtcf {
                dropping: "d/p.0".into(),
                source: FormatError::ChunkCorrupt {
                    chunk: 3,
                    detail: "crc".into(),
                },
            },
            AdaError::FrameCountMismatch {
                tag: "p".into(),
                expected: 10,
                got: 9,
            },
            AdaError::Pdb("bad atom line".into()),
            AdaError::UnknownTag("q".into()),
            AdaError::UnknownDataset("nope".into()),
            AdaError::InvalidRange {
                start: 5,
                end: 2,
                stride: 0,
                nframes: 100,
            },
            AdaError::AtomMismatch { pdb: 10, xtc: 12 },
            AdaError::NotTargetApplication("foo.csv".into()),
            AdaError::Internal("worker panicked".into()),
            AdaError::Overloaded {
                queue_depth: 17,
                retry_after: Duration::from_micros(1234),
            },
            AdaError::DeadlineExceeded {
                waited: Duration::from_millis(5),
                deadline: Duration::from_millis(2),
            },
            AdaError::Network {
                detail: "connection reset by peer".into(),
            },
        ];
        for e in &samples {
            let back = round_trip(e);
            assert_eq!(back.kind(), e.kind(), "kind drift for {:?}", e);
            assert_eq!(back.to_string(), e.to_string(), "display drift for {:?}", e);
        }
        // The sample list must cover every kind string the enum exposes —
        // a newly added variant that is not wired through here fails the
        // coverage count.
        let mut kinds: Vec<&str> = samples.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 15, "error kinds covered: {:?}", kinds);
    }

    #[test]
    fn unknown_discriminant_is_typed() {
        let mut r = WireReader::new(&[200]);
        assert!(matches!(
            decode_error(&mut r),
            Err(ProtoError::Malformed(_))
        ));
    }
}
