//! The request/response vocabulary of the wire — the networked mirror of
//! `ada_frontend::Request`/`Reply`, plus transport-friendly report types.
//!
//! A query's trajectory crosses the wire as canonical XTC bytes (encoded
//! at [`ada_mdformats::xtc::DEFAULT_PRECISION`]), which is exactly the
//! byte form the equivalence suites already use to compare results — so
//! "byte-identical to the in-process path" is a statement about the
//! actual wire payload, not about a re-encoded copy.

use std::collections::BTreeMap;

use ada_cache::CacheStats;
use ada_core::{AdaError, IngestReport, QueryReport, RetrievedData};
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdformats::Trajectory;
use ada_mdmodel::Tag;
use ada_storagesim::SimDuration;

use crate::errmap::{decode_error, encode_error};
use crate::wire::{ProtoError, WireReader, WireWriter};

/// One request as it crosses the wire: routing/tracing envelope plus the
/// operation body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Connection-local request id, echoed verbatim on the response so a
    /// pipelining client can match replies to calls.
    pub id: u64,
    /// Client name for admission accounting (`frontend.client.{name}.*`).
    pub client: String,
    /// The caller's 128-bit trace id; the server mints its root span
    /// from it (`trace::root_remote`) so both halves of the request seal
    /// under one id. `0` = caller is not tracing.
    pub trace_id: u128,
    /// Queue-wait deadline in nanoseconds, `0` = wait indefinitely.
    pub deadline_ns: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operation a request asks the remote `Frontend` to run.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe; answered without touching admission.
    Ping,
    /// Real-bytes ingest. `batch_frames == 0` runs the whole-buffer
    /// path; otherwise the streaming pipeline with that batch size.
    Ingest {
        /// Logical dataset name to create.
        dataset: String,
        /// `.pdb` contents.
        pdb_text: String,
        /// `.xtc` contents.
        xtc_bytes: Vec<u8>,
        /// Frames per streaming batch, `0` = whole-buffer ingest.
        batch_frames: u32,
    },
    /// Tag-aware (or full-frame when `tag` is `None`) retrieval.
    Query {
        /// Logical dataset to read.
        dataset: String,
        /// Active-data tag label, or `None` for the full-frame path.
        tag: Option<String>,
    },
    /// Strided frame-range retrieval of one tag.
    QueryRange {
        /// Logical dataset to read.
        dataset: String,
        /// Active-data tag label.
        tag: String,
        /// First frame (inclusive).
        start: u64,
        /// End of the window (exclusive).
        end: u64,
        /// Keep every `stride`-th frame.
        stride: u64,
    },
    /// Snapshot of the server's decoded-dropping cache counters.
    CacheStats,
}

impl RequestBody {
    /// Stable lowercase operation name (trace/metric vocabulary).
    pub fn op_name(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::Ingest { .. } => "ingest",
            RequestBody::Query { .. } => "query",
            RequestBody::QueryRange { .. } => "query_range",
            RequestBody::CacheStats => "cache_stats",
        }
    }

    /// The dataset the operation touches, when it touches one — the
    /// router's shard key.
    pub fn dataset(&self) -> Option<&str> {
        match self {
            RequestBody::Ingest { dataset, .. }
            | RequestBody::Query { dataset, .. }
            | RequestBody::QueryRange { dataset, .. } => Some(dataset),
            RequestBody::Ping | RequestBody::CacheStats => None,
        }
    }
}

impl RequestEnvelope {
    /// Encode for framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.id);
        w.put_u128(self.trace_id);
        w.put_u64(self.deadline_ns);
        w.put_str(&self.client);
        match &self.body {
            RequestBody::Ping => w.put_u8(0),
            RequestBody::Ingest {
                dataset,
                pdb_text,
                xtc_bytes,
                batch_frames,
            } => {
                w.put_u8(1);
                w.put_str(dataset);
                w.put_str(pdb_text);
                w.put_bytes(xtc_bytes);
                w.put_u32(*batch_frames);
            }
            RequestBody::Query { dataset, tag } => {
                w.put_u8(2);
                w.put_str(dataset);
                w.put_opt_str(tag.as_deref());
            }
            RequestBody::QueryRange {
                dataset,
                tag,
                start,
                end,
                stride,
            } => {
                w.put_u8(3);
                w.put_str(dataset);
                w.put_str(tag);
                w.put_u64(*start);
                w.put_u64(*end);
                w.put_u64(*stride);
            }
            RequestBody::CacheStats => w.put_u8(4),
        }
        w.finish()
    }

    /// Decode a framed payload.
    pub fn decode(bytes: &[u8]) -> Result<RequestEnvelope, ProtoError> {
        let mut r = WireReader::new(bytes);
        let id = r.get_u64()?;
        let trace_id = r.get_u128()?;
        let deadline_ns = r.get_u64()?;
        let client = r.get_str()?;
        let body = match r.get_u8()? {
            0 => RequestBody::Ping,
            1 => RequestBody::Ingest {
                dataset: r.get_str()?,
                pdb_text: r.get_str()?,
                xtc_bytes: r.get_bytes()?,
                batch_frames: r.get_u32()?,
            },
            2 => RequestBody::Query {
                dataset: r.get_str()?,
                tag: r.get_opt_str()?,
            },
            3 => RequestBody::QueryRange {
                dataset: r.get_str()?,
                tag: r.get_str()?,
                start: r.get_u64()?,
                end: r.get_u64()?,
                stride: r.get_u64()?,
            },
            4 => RequestBody::CacheStats,
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown request discriminant {}",
                    other
                )))
            }
        };
        r.expect_end()?;
        Ok(RequestEnvelope {
            id,
            client,
            trace_id,
            deadline_ns,
            body,
        })
    }
}

/// One response as it crosses the wire.
#[derive(Debug)]
pub struct ResponseEnvelope {
    /// The request id this answers; `0` for connection-level protocol
    /// errors raised before any request id was readable.
    pub id: u64,
    /// Outcome.
    pub body: ResponseBody,
}

/// A response's payload: one success shape per operation, or a fully
/// typed error.
#[derive(Debug)]
pub enum ResponseBody {
    /// Answer to [`RequestBody::Ping`].
    Pong,
    /// Answer to [`RequestBody::Ingest`].
    Ingest(WireIngestReport),
    /// Answer to [`RequestBody::Query`] / [`RequestBody::QueryRange`].
    Query(WireQueryReport),
    /// Answer to [`RequestBody::CacheStats`].
    CacheStats(WireCacheStats),
    /// The request failed; the error carries the exact `AdaError`.
    Error(AdaError),
}

impl ResponseEnvelope {
    /// Encode for framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.id);
        match &self.body {
            ResponseBody::Pong => w.put_u8(0),
            ResponseBody::Ingest(rep) => {
                w.put_u8(1);
                rep.encode(&mut w);
            }
            ResponseBody::Query(rep) => {
                w.put_u8(2);
                rep.encode(&mut w);
            }
            ResponseBody::CacheStats(s) => {
                w.put_u8(3);
                s.encode(&mut w);
            }
            ResponseBody::Error(e) => {
                w.put_u8(255);
                encode_error(&mut w, e);
            }
        }
        w.finish()
    }

    /// Decode a framed payload.
    pub fn decode(bytes: &[u8]) -> Result<ResponseEnvelope, ProtoError> {
        let mut r = WireReader::new(bytes);
        let id = r.get_u64()?;
        let body = match r.get_u8()? {
            0 => ResponseBody::Pong,
            1 => ResponseBody::Ingest(WireIngestReport::decode(&mut r)?),
            2 => ResponseBody::Query(WireQueryReport::decode(&mut r)?),
            3 => ResponseBody::CacheStats(WireCacheStats::decode(&mut r)?),
            255 => ResponseBody::Error(decode_error(&mut r)?),
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown response discriminant {}",
                    other
                )))
            }
        };
        r.expect_end()?;
        Ok(ResponseEnvelope { id, body })
    }
}

/// [`IngestReport`] minus the process-local wall-clock profile: the
/// simulated stage durations and stored-volume accounting, exactly as the
/// remote middleware computed them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireIngestReport {
    /// Dataset name.
    pub dataset: String,
    /// Decompression time (simulated ns).
    pub decompress_ns: u128,
    /// Categorizer time (simulated ns).
    pub categorize_ns: u128,
    /// Splitting/filter time (simulated ns).
    pub split_ns: u128,
    /// Backend write time (simulated ns).
    pub write_ns: u128,
    /// Label/index persistence time (simulated ns).
    pub label_write_ns: u128,
    /// Decompressed raw volume.
    pub raw_bytes: u64,
    /// Stored bytes per tag label, sorted by label.
    pub bytes_by_tag: Vec<(String, u64)>,
}

impl WireIngestReport {
    /// Strip an [`IngestReport`] to its wire form.
    pub fn from_report(rep: &IngestReport) -> WireIngestReport {
        WireIngestReport {
            dataset: rep.dataset.clone(),
            decompress_ns: rep.decompress.0,
            categorize_ns: rep.categorize.0,
            split_ns: rep.split.0,
            write_ns: rep.write.0,
            label_write_ns: rep.label_write.0,
            raw_bytes: rep.raw_bytes,
            bytes_by_tag: rep
                .bytes_by_tag
                .iter()
                .map(|(t, b)| (t.as_str().to_string(), *b))
                .collect(),
        }
    }

    /// Rebuild an [`IngestReport`] (the wall-clock `profile` stays on the
    /// server; it is meaningless in another process).
    pub fn into_report(self) -> IngestReport {
        IngestReport {
            dataset: self.dataset,
            decompress: SimDuration(self.decompress_ns),
            categorize: SimDuration(self.categorize_ns),
            split: SimDuration(self.split_ns),
            write: SimDuration(self.write_ns),
            label_write: SimDuration(self.label_write_ns),
            raw_bytes: self.raw_bytes,
            bytes_by_tag: self
                .bytes_by_tag
                .into_iter()
                .map(|(t, b)| (Tag::new(t), b))
                .collect::<BTreeMap<Tag, u64>>(),
            profile: None,
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.dataset);
        w.put_u128(self.decompress_ns);
        w.put_u128(self.categorize_ns);
        w.put_u128(self.split_ns);
        w.put_u128(self.write_ns);
        w.put_u128(self.label_write_ns);
        w.put_u64(self.raw_bytes);
        w.put_u32(self.bytes_by_tag.len().min(u32::MAX as usize) as u32);
        for (tag, bytes) in &self.bytes_by_tag {
            w.put_str(tag);
            w.put_u64(*bytes);
        }
    }

    fn decode(r: &mut WireReader) -> Result<WireIngestReport, ProtoError> {
        let dataset = r.get_str()?;
        let decompress_ns = r.get_u128()?;
        let categorize_ns = r.get_u128()?;
        let split_ns = r.get_u128()?;
        let write_ns = r.get_u128()?;
        let label_write_ns = r.get_u128()?;
        let raw_bytes = r.get_u64()?;
        let n = r.get_u32()? as usize;
        // Cap the pre-allocation by what the frame can actually hold
        // (each entry is ≥ 12 encoded bytes) so a hostile count cannot
        // balloon memory before the reads start failing.
        let mut bytes_by_tag = Vec::with_capacity(n.min(r.remaining() / 12 + 1));
        for _ in 0..n {
            let tag = r.get_str()?;
            let bytes = r.get_u64()?;
            bytes_by_tag.push((tag, bytes));
        }
        Ok(WireIngestReport {
            dataset,
            decompress_ns,
            categorize_ns,
            split_ns,
            write_ns,
            label_write_ns,
            raw_bytes,
            bytes_by_tag,
        })
    }
}

/// The data a query delivers, in wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePayload {
    /// Decoded frames, re-encoded as canonical XTC bytes at
    /// [`DEFAULT_PRECISION`] — the byte form every equivalence suite in
    /// this repo compares.
    Xtc(Vec<u8>),
    /// Size-only payload (synthetic datasets).
    Synthetic {
        /// Delivered bytes.
        bytes: u64,
        /// Frames represented.
        frames: u64,
        /// Atoms per delivered frame.
        atoms_per_frame: u64,
    },
}

/// [`QueryReport`] in wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQueryReport {
    /// Indexer tag-search time (simulated ns).
    pub indexer_ns: u128,
    /// Backend read time (simulated ns).
    pub read_ns: u128,
    /// Delivered data.
    pub payload: WirePayload,
}

impl WireQueryReport {
    /// Convert a middleware report for the wire. Fails (as a typed
    /// `AdaError::Xtc`) only if the trajectory cannot be XTC-encoded,
    /// which a trajectory that was just XTC-decoded never is.
    pub fn from_report(rep: &QueryReport) -> Result<WireQueryReport, AdaError> {
        let payload = match &rep.data {
            RetrievedData::Real(traj) => WirePayload::Xtc(write_xtc(traj, DEFAULT_PRECISION)?),
            RetrievedData::Synthetic {
                bytes,
                frames,
                atoms_per_frame,
            } => WirePayload::Synthetic {
                bytes: *bytes,
                frames: *frames,
                atoms_per_frame: *atoms_per_frame,
            },
        };
        Ok(WireQueryReport {
            indexer_ns: rep.indexer.0,
            read_ns: rep.read.0,
            payload,
        })
    }

    /// Decode the payload back into frames (real-mode responses only).
    pub fn trajectory(&self) -> Result<Trajectory, AdaError> {
        match &self.payload {
            WirePayload::Xtc(bytes) => Ok(ada_mdformats::read_xtc(bytes)?),
            WirePayload::Synthetic { .. } => Err(AdaError::Internal(
                "synthetic payload carries no frames".to_string(),
            )),
        }
    }

    /// Delivered byte volume (mirrors `RetrievedData::bytes`).
    pub fn bytes(&self) -> u64 {
        match &self.payload {
            WirePayload::Xtc(b) => b.len() as u64,
            WirePayload::Synthetic { bytes, .. } => *bytes,
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u128(self.indexer_ns);
        w.put_u128(self.read_ns);
        match &self.payload {
            WirePayload::Xtc(bytes) => {
                w.put_u8(0);
                w.put_bytes(bytes);
            }
            WirePayload::Synthetic {
                bytes,
                frames,
                atoms_per_frame,
            } => {
                w.put_u8(1);
                w.put_u64(*bytes);
                w.put_u64(*frames);
                w.put_u64(*atoms_per_frame);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<WireQueryReport, ProtoError> {
        let indexer_ns = r.get_u128()?;
        let read_ns = r.get_u128()?;
        let payload = match r.get_u8()? {
            0 => WirePayload::Xtc(r.get_bytes()?),
            1 => WirePayload::Synthetic {
                bytes: r.get_u64()?,
                frames: r.get_u64()?,
                atoms_per_frame: r.get_u64()?,
            },
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown payload discriminant {}",
                    other
                )))
            }
        };
        Ok(WireQueryReport {
            indexer_ns,
            read_ns,
            payload,
        })
    }
}

/// [`CacheStats`] in wire form (field-for-field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireCacheStats {
    /// Lookups that returned a resident payload.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Payloads stored.
    pub inserts: u64,
    /// Entries evicted by the CLOCK hand.
    pub evictions: u64,
    /// Inserts refused by admission.
    pub bypasses: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub resident_hwm: u64,
    /// Frame-payload bytes decoded from droppings.
    pub bytes_decoded: u64,
    /// Frame-payload bytes served from resident entries.
    pub bytes_served_from_cache: u64,
}

impl From<CacheStats> for WireCacheStats {
    fn from(s: CacheStats) -> WireCacheStats {
        WireCacheStats {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            evictions: s.evictions,
            bypasses: s.bypasses,
            resident_bytes: s.resident_bytes,
            resident_hwm: s.resident_hwm,
            bytes_decoded: s.bytes_decoded,
            bytes_served_from_cache: s.bytes_served_from_cache,
        }
    }
}

impl WireCacheStats {
    fn encode(&self, w: &mut WireWriter) {
        for v in [
            self.hits,
            self.misses,
            self.inserts,
            self.evictions,
            self.bypasses,
            self.resident_bytes,
            self.resident_hwm,
            self.bytes_decoded,
            self.bytes_served_from_cache,
        ] {
            w.put_u64(v);
        }
    }

    fn decode(r: &mut WireReader) -> Result<WireCacheStats, ProtoError> {
        Ok(WireCacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            inserts: r.get_u64()?,
            evictions: r.get_u64()?,
            bypasses: r.get_u64()?,
            resident_bytes: r.get_u64()?,
            resident_hwm: r.get_u64()?,
            bytes_decoded: r.get_u64()?,
            bytes_served_from_cache: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelopes_round_trip() {
        let cases = vec![
            RequestEnvelope {
                id: 1,
                client: "c0".into(),
                trace_id: 0,
                deadline_ns: 0,
                body: RequestBody::Ping,
            },
            RequestEnvelope {
                id: 2,
                client: "c1".into(),
                trace_id: 0xfeed_beef,
                deadline_ns: 1_000_000,
                body: RequestBody::Ingest {
                    dataset: "ds".into(),
                    pdb_text: "ATOM".into(),
                    xtc_bytes: vec![1, 2, 3, 4],
                    batch_frames: 0,
                },
            },
            RequestEnvelope {
                id: 3,
                client: "c2".into(),
                trace_id: 7,
                deadline_ns: 0,
                body: RequestBody::Query {
                    dataset: "ds".into(),
                    tag: Some("p".into()),
                },
            },
            RequestEnvelope {
                id: 4,
                client: "c3".into(),
                trace_id: 0,
                deadline_ns: 0,
                body: RequestBody::Query {
                    dataset: "ds".into(),
                    tag: None,
                },
            },
            RequestEnvelope {
                id: 5,
                client: "c4".into(),
                trace_id: u128::MAX,
                deadline_ns: u64::MAX,
                body: RequestBody::QueryRange {
                    dataset: "ds".into(),
                    tag: "p".into(),
                    start: 10,
                    end: 90,
                    stride: 4,
                },
            },
            RequestEnvelope {
                id: 6,
                client: "ops".into(),
                trace_id: 0,
                deadline_ns: 0,
                body: RequestBody::CacheStats,
            },
        ];
        for req in cases {
            let bytes = req.encode();
            let back = RequestEnvelope::decode(&bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_reports_round_trip() {
        let ingest = WireIngestReport {
            dataset: "ds".into(),
            decompress_ns: 1,
            categorize_ns: 2,
            split_ns: 3,
            write_ns: 4,
            label_write_ns: 5,
            raw_bytes: 1024,
            bytes_by_tag: vec![("m".into(), 7), ("p".into(), 1000)],
        };
        let resp = ResponseEnvelope {
            id: 9,
            body: ResponseBody::Ingest(ingest.clone()),
        };
        match ResponseEnvelope::decode(&resp.encode()).unwrap().body {
            ResponseBody::Ingest(back) => assert_eq!(back, ingest),
            other => panic!("wrong body {:?}", other),
        }

        let query = WireQueryReport {
            indexer_ns: 11,
            read_ns: 22,
            payload: WirePayload::Xtc(vec![9, 8, 7]),
        };
        let resp = ResponseEnvelope {
            id: 10,
            body: ResponseBody::Query(query.clone()),
        };
        match ResponseEnvelope::decode(&resp.encode()).unwrap().body {
            ResponseBody::Query(back) => assert_eq!(back, query),
            other => panic!("wrong body {:?}", other),
        }

        let stats = WireCacheStats {
            hits: 5,
            misses: 2,
            ..WireCacheStats::default()
        };
        let resp = ResponseEnvelope {
            id: 11,
            body: ResponseBody::CacheStats(stats),
        };
        match ResponseEnvelope::decode(&resp.encode()).unwrap().body {
            ResponseBody::CacheStats(back) => assert_eq!(back, stats),
            other => panic!("wrong body {:?}", other),
        }
    }

    #[test]
    fn error_response_keeps_the_kind() {
        let resp = ResponseEnvelope {
            id: 3,
            body: ResponseBody::Error(AdaError::UnknownDataset("nope".into())),
        };
        match ResponseEnvelope::decode(&resp.encode()).unwrap().body {
            ResponseBody::Error(e) => assert_eq!(e.kind(), "unknown_dataset"),
            other => panic!("wrong body {:?}", other),
        }
    }

    #[test]
    fn ingest_report_round_trips_through_core_type() {
        let wire = WireIngestReport {
            dataset: "ds".into(),
            decompress_ns: 10,
            categorize_ns: 20,
            split_ns: 30,
            write_ns: 40,
            label_write_ns: 50,
            raw_bytes: 4096,
            bytes_by_tag: vec![("m".into(), 96), ("p".into(), 4000)],
        };
        let rep = wire.clone().into_report();
        assert_eq!(rep.total().0, 150);
        assert_eq!(WireIngestReport::from_report(&rep), wire);
    }

    #[test]
    fn query_report_payload_survives_the_wire_byte_for_byte() {
        let w = ada_workload::gpcr_workload(120, 3, 5);
        let bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
        let rep = WireQueryReport {
            indexer_ns: 0,
            read_ns: 0,
            payload: WirePayload::Xtc(bytes.clone()),
        };
        let resp = ResponseEnvelope {
            id: 1,
            body: ResponseBody::Query(rep),
        };
        match ResponseEnvelope::decode(&resp.encode()).unwrap().body {
            ResponseBody::Query(back) => {
                assert_eq!(back.payload, WirePayload::Xtc(bytes));
                assert_eq!(back.trajectory().unwrap().len(), 3);
            }
            other => panic!("wrong body {:?}", other),
        }
    }

    #[test]
    fn truncated_request_is_typed() {
        let req = RequestEnvelope {
            id: 1,
            client: "c".into(),
            trace_id: 0,
            deadline_ns: 0,
            body: RequestBody::Ping,
        };
        let bytes = req.encode();
        for cut in [0, 5, bytes.len() - 1] {
            assert!(
                RequestEnvelope::decode(&bytes[..cut]).is_err(),
                "cut at {} must fail decode",
                cut
            );
        }
    }
}
