//! The ADA wire protocol: request/response/error types shared by
//! `ada-server` and `ada-client`, with a length-prefixed binary framing.
//!
//! Extracted from `ada-core`/`ada-frontend` so both sides of the wire
//! speak the *same* vocabulary the in-process [`ada_frontend::Frontend`]
//! already arbitrates — the networked path adds transport, not new
//! semantics (DESIGN.md §16). Like `ada-json`, this crate is entirely
//! in-tree: no registry dependencies, no derived serialization.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "ADAP"
//! 4       1     version (currently 1)
//! 5       4     payload length N, little-endian u32
//! 9       4     IEEE CRC-32 of the payload (same polynomial as XTCF v2)
//! 13      N     payload (one encoded request or response)
//! ```
//!
//! A receiver validates magic, version, and declared length (against its
//! configured maximum, *before* allocating) and then the CRC; every
//! violation is a typed [`ProtoError`] that surfaces to callers as
//! [`ada_core::AdaError::Network`]. Payloads are encoded with the
//! fixed-width little-endian primitives in [`wire`]; every `AdaError`
//! kind has an exact structural mapping across the wire ([`errmap`]), so
//! a remote failure reaches the client with the same `kind()` — and for
//! structured kinds the same fields — as the in-process path.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod errmap;
pub mod frame;
pub mod message;
pub mod wire;

pub use errmap::{decode_error, encode_error};
pub use frame::{
    encode_frame, parse_header, read_frame, verify_payload, write_frame, FrameHeader,
    DEFAULT_MAX_FRAME, HEADER_LEN, MAGIC, VERSION,
};
pub use message::{
    RequestBody, RequestEnvelope, ResponseBody, ResponseEnvelope, WireCacheStats, WireIngestReport,
    WirePayload, WireQueryReport,
};
pub use wire::{ProtoError, WireReader, WireWriter};
