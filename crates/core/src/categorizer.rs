//! The data categorizer — Algorithm 1 of the paper.
//!
//! The pseudocode scans the atoms of a `.pdb` file once, reading each
//! atom's type (`GetType`), and emits per-tag `[begin, end)` ranges by
//! tracking runs of equal tags. This module implements that single-pass
//! run-tracking algorithm literally (per-atom `GetType`, `prev_tag`
//! comparison, run close-out on change), with the two obvious
//! transcription fixes the printed pseudocode needs: the range closed on a
//! tag change belongs to `prev_tag` (not the new tag), and the final run is
//! flushed after the loop. Equivalence with the declarative
//! residue-granular computation in `ada-mdmodel` is property-tested.

use ada_mdmodel::category::Taxonomy;
use ada_mdmodel::{IndexRanges, MolecularSystem, Tag};
use std::collections::BTreeMap;

/// The labeler mapping Algorithm 1 produces: tag → data subset ranges.
pub type Labeler = BTreeMap<Tag, IndexRanges>;

/// Run Algorithm 1 over the atoms of `system` with `GetType` given by
/// `taxonomy`.
pub fn categorize_algo1(system: &MolecularSystem, taxonomy: &Taxonomy) -> Labeler {
    let mut labeler: Labeler = BTreeMap::new();
    let mut begin: usize = 0;
    let mut prev_tag: Option<Tag> = None;

    for (offset, atom) in system.atoms.iter().enumerate() {
        // Categorizer module: read the atom's type from the pdb record.
        let tag = taxonomy.tag_of(&atom.resname);
        match &prev_tag {
            None => {
                prev_tag = Some(tag);
                begin = offset;
            }
            Some(prev) if *prev == tag => {
                // Same run: extend (implicit — the range closes later).
            }
            Some(prev) => {
                // Labeler module: close the finished run under prev_tag.
                labeler.entry(prev.clone()).or_default().push(begin..offset);
                prev_tag = Some(tag);
                begin = offset;
            }
        }
    }
    // Flush the final run.
    if let Some(prev) = prev_tag {
        labeler
            .entry(prev)
            .or_default()
            .push(begin..system.atoms.len());
    }
    labeler
}

/// Byte volume of each tag's subset for a given per-atom payload size
/// (12 bytes/atom/frame for uncompressed coordinates).
pub fn bytes_by_tag(labeler: &Labeler, bytes_per_atom: u64) -> BTreeMap<Tag, u64> {
    labeler
        .iter()
        .map(|(t, r)| (t.clone(), r.count() as u64 * bytes_per_atom))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::{Atom, Element, PbcBox};

    fn atom(resname: &str, resid: i32) -> Atom {
        Atom {
            serial: 0,
            name: "X".into(),
            resname: resname.into(),
            resid,
            chain: 'A',
            element: Element::C,
            hetero: false,
        }
    }

    fn system_of(resnames: &[(&str, usize)]) -> MolecularSystem {
        let mut atoms = Vec::new();
        for (resid, (name, count)) in resnames.iter().enumerate() {
            for _ in 0..*count {
                atoms.push(atom(name, resid as i32 + 1));
            }
        }
        let n = atoms.len();
        MolecularSystem::from_atoms("t", atoms, vec![[0.0; 3]; n], PbcBox::zero())
    }

    #[test]
    fn single_run_per_tag() {
        let sys = system_of(&[("ALA", 5), ("SOL", 3)]);
        let labeler = categorize_algo1(&sys, &Taxonomy::paper_default());
        assert_eq!(labeler[&Tag::protein()], IndexRanges::single(0..5));
        assert_eq!(labeler[&Tag::misc()], IndexRanges::single(5..8));
    }

    #[test]
    fn alternating_runs() {
        let sys = system_of(&[("ALA", 2), ("SOL", 2), ("GLY", 3), ("SOL", 1)]);
        let labeler = categorize_algo1(&sys, &Taxonomy::paper_default());
        assert_eq!(
            labeler[&Tag::protein()],
            IndexRanges::from_ranges([0..2, 4..7])
        );
        assert_eq!(
            labeler[&Tag::misc()],
            IndexRanges::from_ranges([2..4, 7..8])
        );
    }

    #[test]
    fn empty_system() {
        let sys = system_of(&[]);
        assert!(categorize_algo1(&sys, &Taxonomy::paper_default()).is_empty());
    }

    #[test]
    fn all_one_tag() {
        let sys = system_of(&[("ALA", 4), ("GLY", 4)]);
        let labeler = categorize_algo1(&sys, &Taxonomy::paper_default());
        assert_eq!(labeler.len(), 1);
        assert_eq!(labeler[&Tag::protein()], IndexRanges::single(0..8));
    }

    #[test]
    fn matches_declarative_tag_ranges() {
        // Algorithm 1 must agree with the residue-granular computation.
        for taxonomy in [Taxonomy::paper_default(), Taxonomy::fine_grained()] {
            let sys = system_of(&[
                ("ALA", 3),
                ("POPC", 52),
                ("SOL", 9),
                ("GLY", 2),
                ("SOD", 1),
                ("CLA", 1),
                ("SOL", 3),
            ]);
            let a = categorize_algo1(&sys, &taxonomy);
            let b = sys.tag_ranges(&taxonomy);
            assert_eq!(a, b, "taxonomy mismatch");
        }
    }

    #[test]
    fn ranges_partition_the_atom_set() {
        let sys = system_of(&[("ALA", 10), ("SOL", 20), ("POPC", 52), ("ALA", 5)]);
        let labeler = categorize_algo1(&sys, &Taxonomy::fine_grained());
        let total: usize = labeler.values().map(IndexRanges::count).sum();
        assert_eq!(total, sys.len());
        // No overlaps.
        let tags: Vec<_> = labeler.values().collect();
        for i in 0..tags.len() {
            for j in (i + 1)..tags.len() {
                assert!(tags[i].intersect(tags[j]).is_empty());
            }
        }
    }

    #[test]
    fn bytes_by_tag_scaling() {
        let sys = system_of(&[("ALA", 5), ("SOL", 3)]);
        let labeler = categorize_algo1(&sys, &Taxonomy::paper_default());
        let bytes = bytes_by_tag(&labeler, 12);
        assert_eq!(bytes[&Tag::protein()], 60);
        assert_eq!(bytes[&Tag::misc()], 36);
    }

    #[test]
    fn gpcr_workload_protein_band() {
        let w = ada_workload::gpcr_workload(3000, 1, 5);
        let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());
        let p = labeler[&Tag::protein()].count() as f64 / w.system.len() as f64;
        assert!(p > 0.40 && p < 0.50, "protein fraction {}", p);
    }
}
