//! Stage-attribution profiles: where did the wall-clock go?
//!
//! The simulated [`IngestReport`](crate::IngestReport) durations model the
//! paper's storage node; a [`StageProfile`] is the *measured* counterpart —
//! real wall time this process spent in each pipeline stage, queue
//! high-water marks of the streaming channels, and per-tag routed bytes.
//! `repro profile-ingest` serializes these to answer the ROADMAP question
//! ("is decode, split, or dispatch the wall-clock ceiling?") and
//! `BENCH_ingest.json` embeds them so benchmark numbers are
//! self-explaining.
//!
//! Stage times are **busy** times: in the pipelined path the decoder,
//! splitter pool, and dispatcher overlap, so stage times legitimately sum
//! to more than `wall_ns`. The bottleneck is the stage with the largest
//! busy time — the one the pipeline cannot hide.

use ada_json::Value;
use std::collections::BTreeMap;

/// Measured wall-clock attribution of one ingest or query call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Which code path produced this (`"serial"`, `"pipelined"`,
    /// `"guided"`, `"synthetic"`, `"query"`).
    pub mode: String,
    /// Per-stage busy wall time, nanoseconds.
    pub stages_ns: BTreeMap<String, u64>,
    /// High-water mark of each bounded inter-stage channel (batches).
    pub queue_hwm: BTreeMap<String, u64>,
    /// Bytes routed (ingest) or delivered (query) per tag.
    pub bytes_by_tag: BTreeMap<String, u64>,
    /// End-to-end wall time of the call, nanoseconds.
    pub wall_ns: u64,
}

impl StageProfile {
    /// New profile for a code path.
    pub fn new(mode: &str) -> StageProfile {
        StageProfile {
            mode: mode.to_string(),
            ..StageProfile::default()
        }
    }

    /// Record a stage's busy time (accumulates on repeat).
    pub fn add_stage_ns(&mut self, stage: &str, ns: u64) {
        *self.stages_ns.entry(stage.to_string()).or_insert(0) += ns;
    }

    /// The stage with the largest busy time — the pipeline's wall-clock
    /// ceiling. `None` for an empty profile.
    pub fn bottleneck(&self) -> Option<(&str, u64)> {
        self.stages_ns
            .iter()
            .max_by_key(|(_, ns)| **ns)
            .map(|(k, ns)| (k.as_str(), *ns))
    }

    /// Fraction of the wall time a stage was busy (0.0 when unknown).
    pub fn stage_share(&self, stage: &str) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.stages_ns.get(stage).copied().unwrap_or(0) as f64 / self.wall_ns as f64
    }

    /// Machine-readable form:
    /// `{"mode", "wall_ns", "bottleneck", "stages_ns": {..},
    ///   "queue_high_water": {..}, "bytes_by_tag": {..}}`.
    pub fn to_json(&self) -> Value {
        let map = |m: &BTreeMap<String, u64>| {
            Value::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), Value::num_u(*v)))
                    .collect(),
            )
        };
        Value::obj(vec![
            ("mode", Value::str(self.mode.clone())),
            ("wall_ns", Value::num_u(self.wall_ns)),
            (
                "bottleneck",
                match self.bottleneck() {
                    Some((stage, _)) => Value::str(stage),
                    None => Value::Null,
                },
            ),
            ("stages_ns", map(&self.stages_ns)),
            ("queue_high_water", map(&self.queue_hwm)),
            ("bytes_by_tag", map(&self.bytes_by_tag)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottleneck_and_share() {
        let mut p = StageProfile::new("pipelined");
        p.add_stage_ns("decode", 600);
        p.add_stage_ns("split", 250);
        p.add_stage_ns("split", 150); // accumulates to 400
        p.add_stage_ns("dispatch", 100);
        p.wall_ns = 800;
        assert_eq!(p.bottleneck(), Some(("decode", 600)));
        assert!((p.stage_share("decode") - 0.75).abs() < 1e-12);
        assert_eq!(p.stage_share("missing"), 0.0);
        assert_eq!(StageProfile::new("x").bottleneck(), None);
    }

    #[test]
    fn json_shape() {
        let mut p = StageProfile::new("serial");
        p.add_stage_ns("decode", 10);
        p.queue_hwm.insert("decoded".into(), 2);
        p.bytes_by_tag.insert("p".into(), 1024);
        p.wall_ns = 42;
        let v = ada_json::parse(&p.to_json().to_vec()).unwrap();
        assert_eq!(v.field("mode").unwrap().as_str().unwrap(), "serial");
        assert_eq!(v.field("wall_ns").unwrap().as_u64().unwrap(), 42);
        assert_eq!(v.field("bottleneck").unwrap().as_str().unwrap(), "decode");
        assert_eq!(
            v.field("stages_ns")
                .unwrap()
                .field("decode")
                .unwrap()
                .as_u64()
                .unwrap(),
            10
        );
        assert_eq!(
            v.field("queue_high_water")
                .unwrap()
                .field("decoded")
                .unwrap()
                .as_u64()
                .unwrap(),
            2
        );
        assert_eq!(
            v.field("bytes_by_tag")
                .unwrap()
                .field("p")
                .unwrap()
                .as_u64()
                .unwrap(),
            1024
        );
    }

    #[test]
    fn empty_profile_serializes() {
        let v = ada_json::parse(&StageProfile::new("query").to_json().to_vec()).unwrap();
        assert!(matches!(v.field("bottleneck").unwrap(), Value::Null));
    }
}
