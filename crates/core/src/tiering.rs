//! Access-aware tiering — an extension beyond the paper's prototype.
//!
//! The paper's placement is static: the GPCR study marks protein active at
//! ingest and that's that. But "active" is a property of the *study*, not
//! the data — a solvation analysis hammers the water subset. This module
//! adds the obvious adaptive layer: ADA counts tag accesses and a
//! [`Rebalancer`] migrates hot tags to the fast backend (and cold ones off
//! it) using the PLFS layer's dropping migration.

use crate::ada::Ada;
use crate::AdaError;
use ada_mdmodel::Tag;
use ada_storagesim::SimDuration;
use std::collections::BTreeMap;

/// A tag-migration plan produced by the rebalancer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// (dataset, tag, target backend) moves, in execution order.
    pub moves: Vec<(String, Tag, String)>,
}

impl MigrationPlan {
    /// True when nothing needs to move.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Threshold-based hot/cold rebalancer.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    /// Backend for hot tags.
    pub fast_backend: String,
    /// Backend for cold tags.
    pub slow_backend: String,
    /// Accesses at or above this count make a tag hot.
    pub hot_threshold: u64,
}

impl Rebalancer {
    /// New rebalancer.
    pub fn new(fast: &str, slow: &str, hot_threshold: u64) -> Rebalancer {
        Rebalancer {
            fast_backend: fast.to_string(),
            slow_backend: slow.to_string(),
            hot_threshold,
        }
    }

    /// Plan migrations for `dataset` from its access counts and current
    /// placement.
    pub fn plan(&self, ada: &Ada, dataset: &str) -> Result<MigrationPlan, AdaError> {
        let heat = heat_snapshot(ada, dataset);
        let mut moves = Vec::new();
        for record in ada.containers().index(dataset)? {
            let tag = Tag::new(record.tag.clone());
            let hits = heat.heat(&tag);
            let want = if hits >= self.hot_threshold {
                &self.fast_backend
            } else {
                &self.slow_backend
            };
            if &record.backend != want
                && !moves.contains(&(dataset.to_string(), tag.clone(), want.clone()))
            {
                moves.push((dataset.to_string(), tag, want.clone()));
            }
        }
        Ok(MigrationPlan { moves })
    }

    /// Plan and execute; returns the total migration time.
    pub fn rebalance(&self, ada: &Ada, dataset: &str) -> Result<SimDuration, AdaError> {
        let plan = self.plan(ada, dataset)?;
        let mut total = SimDuration::ZERO;
        for (ds, tag, backend) in plan.moves {
            total += ada.containers().migrate_tag(&ds, tag.as_str(), &backend)?;
        }
        Ok(total)
    }
}

/// Per-tag access counters for one dataset.
pub type AccessCounts = BTreeMap<Tag, u64>;

/// A read-only view of one dataset's per-tag access heat, taken at a
/// point in time. Cache admission and migration planners consume this
/// instead of reaching into [`Ada`]'s counter internals, so "how hot is
/// this tag" has one answer everywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeatSnapshot {
    counts: AccessCounts,
}

impl HeatSnapshot {
    /// Access count of `tag` (0 when never queried).
    pub fn heat(&self, tag: &Tag) -> u64 {
        self.counts.get(tag).copied().unwrap_or(0)
    }

    /// Tags with at least one access, hottest first (ties break by tag
    /// order, so the ranking is deterministic).
    pub fn hottest(&self) -> Vec<(Tag, u64)> {
        let mut v: Vec<(Tag, u64)> = self
            .counts
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(t, n)| (t.clone(), *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Total accesses across every tag.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// True when the dataset has never been queried.
    pub fn is_cold(&self) -> bool {
        self.counts.values().all(|n| *n == 0)
    }
}

/// Snapshot the per-tag access heat of `dataset`. Cheap (one clone of the
/// dataset's counter map under the access lock) and read-only — the
/// canonical input for cache admission and the [`Rebalancer`].
pub fn heat_snapshot(ada: &Ada, dataset: &str) -> HeatSnapshot {
    HeatSnapshot {
        counts: ada.access_counts(dataset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ada::{AdaConfig, IngestInput};
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};
    use std::sync::Arc;

    fn rig() -> Ada {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let cs = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd);
        let w = ada_workload::gpcr_workload(1500, 2, 21);
        ada.ingest(
            "bar",
            IngestInput::Real {
                pdb_text: ada_mdformats::write_pdb(&w.system),
                xtc_bytes: ada_mdformats::xtc::write_xtc(
                    &w.trajectory,
                    ada_mdformats::xtc::DEFAULT_PRECISION,
                )
                .unwrap(),
            },
        )
        .unwrap();
        ada
    }

    #[test]
    fn access_counts_track_queries() {
        let ada = rig();
        assert!(ada.access_counts("bar").is_empty());
        ada.query("bar", Some(&Tag::protein())).unwrap();
        ada.query("bar", Some(&Tag::protein())).unwrap();
        ada.query("bar", Some(&Tag::misc())).unwrap();
        let counts = ada.access_counts("bar");
        assert_eq!(counts[&Tag::protein()], 2);
        assert_eq!(counts[&Tag::misc()], 1);
        // Untagged queries count every tag.
        ada.query("bar", None).unwrap();
        let counts = ada.access_counts("bar");
        assert_eq!(counts[&Tag::protein()], 3);
        assert_eq!(counts[&Tag::misc()], 2);
    }

    #[test]
    fn heat_snapshot_ranks_tags_and_is_read_only() {
        let ada = rig();
        let cold = heat_snapshot(&ada, "bar");
        assert!(cold.is_cold());
        assert_eq!(cold.total(), 0);
        assert!(cold.hottest().is_empty());
        for _ in 0..3 {
            ada.query("bar", Some(&Tag::misc())).unwrap();
        }
        ada.query("bar", Some(&Tag::protein())).unwrap();
        let heat = heat_snapshot(&ada, "bar");
        assert_eq!(heat.heat(&Tag::misc()), 3);
        assert_eq!(heat.heat(&Tag::protein()), 1);
        assert_eq!(heat.total(), 4);
        assert_eq!(heat.hottest(), vec![(Tag::misc(), 3), (Tag::protein(), 1)]);
        // A snapshot is a point-in-time copy: later queries don't mutate it.
        ada.query("bar", Some(&Tag::misc())).unwrap();
        assert_eq!(heat.heat(&Tag::misc()), 3);
        // Unknown datasets read as cold, not as an error.
        assert!(heat_snapshot(&ada, "nope").is_cold());
    }

    #[test]
    fn hot_misc_gets_promoted() {
        let ada = rig();
        // A solvation study: MISC is queried heavily.
        for _ in 0..5 {
            ada.query("bar", Some(&Tag::misc())).unwrap();
        }
        let rb = Rebalancer::new("ssd", "hdd", 3);
        let plan = rb.plan(&ada, "bar").unwrap();
        assert!(plan
            .moves
            .iter()
            .any(|(_, t, b)| *t == Tag::misc() && b == "ssd"));
        // Protein is cold (never queried): planned down to HDD.
        assert!(plan
            .moves
            .iter()
            .any(|(_, t, b)| *t == Tag::protein() && b == "hdd"));

        let migration_time = rb.rebalance(&ada, "bar").unwrap();
        assert!(migration_time.as_secs_f64() > 0.0);
        let by_backend = ada.containers().bytes_by_backend("bar").unwrap();
        // Everything moved: MISC on ssd, protein on hdd.
        let index = ada.containers().index("bar").unwrap();
        for r in &index {
            if r.tag == "m" {
                assert_eq!(r.backend, "ssd");
            } else {
                assert_eq!(r.backend, "hdd");
            }
        }
        assert!(by_backend["ssd"] > by_backend["hdd"]);
    }

    #[test]
    fn rebalance_is_idempotent() {
        let ada = rig();
        for _ in 0..4 {
            ada.query("bar", Some(&Tag::protein())).unwrap();
        }
        let rb = Rebalancer::new("ssd", "hdd", 2);
        rb.rebalance(&ada, "bar").unwrap();
        // Second pass: protein already hot+on ssd, misc already cold+on hdd.
        let plan = rb.plan(&ada, "bar").unwrap();
        assert!(plan.is_empty(), "plan {:?}", plan);
    }

    #[test]
    fn data_survives_migration() {
        let ada = rig();
        let before = match ada.query("bar", Some(&Tag::protein())).unwrap().data {
            crate::RetrievedData::Real(t) => t,
            _ => unreachable!(),
        };
        // Demote protein to HDD and read it back.
        ada.containers().migrate_tag("bar", "p", "hdd").unwrap();
        let after_q = ada.query("bar", Some(&Tag::protein())).unwrap();
        let after = match after_q.data {
            crate::RetrievedData::Real(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(before, after);
        // And the read now pays HDD latency: slower than the SSD read was.
        let ssd_read = {
            let ada2 = rig();
            ada2.query("bar", Some(&Tag::protein())).unwrap().read
        };
        assert!(after_q.read > ssd_read);
    }

    #[test]
    fn migrate_unknown_tag_or_backend_fails() {
        let ada = rig();
        assert!(ada.containers().migrate_tag("bar", "zz", "hdd").is_err());
        assert!(ada.containers().migrate_tag("bar", "p", "tape").is_err());
    }
}
