//! The I/O determinator: dispatcher, indexer and retriever.
//!
//! §3.3: "Coupled with the tags and target storage path passed from the
//! data pre-processor, the I/O dispatcher sends each data subset to an
//! underlying file system"; the indexer later "uses tags from the queries
//! to look for paths of datasets on the underlying file systems and passes
//! them to the I/O retriever".

use ada_mdmodel::Tag;
use ada_plfs::{ContainerSet, IndexRecord, PlfsError};
use ada_simfs::Content;
use ada_storagesim::SimDuration;
use std::sync::Arc;

/// Tag → backend routing policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPolicy {
    rules: Vec<(Tag, String)>,
    default_backend: String,
}

impl DispatchPolicy {
    /// The paper's GPCR policy: protein (`p`, active) to the SSD backend,
    /// everything else to the HDD backend.
    pub fn hybrid_gpcr(ssd_backend: &str, hdd_backend: &str) -> DispatchPolicy {
        DispatchPolicy {
            rules: vec![(Tag::protein(), ssd_backend.to_string())],
            default_backend: hdd_backend.to_string(),
        }
    }

    /// Send every tag to one backend (ablation baseline).
    pub fn all_to(backend: &str) -> DispatchPolicy {
        DispatchPolicy {
            rules: Vec::new(),
            default_backend: backend.to_string(),
        }
    }

    /// Explicit rule list with a default.
    pub fn new(rules: Vec<(Tag, String)>, default_backend: impl Into<String>) -> DispatchPolicy {
        DispatchPolicy {
            rules,
            default_backend: default_backend.into(),
        }
    }

    /// Backend for a tag.
    pub fn backend_for(&self, tag: &Tag) -> &str {
        self.rules
            .iter()
            .find(|(t, _)| t == tag)
            .map(|(_, b)| b.as_str())
            .unwrap_or(&self.default_backend)
    }

    /// The default backend.
    pub fn default_backend(&self) -> &str {
        &self.default_backend
    }
}

/// Indexer cost model: base lookup plus a per-record scan charge. This is
/// the "slightly longer data transfer time compared with D-ext4 because ADA
/// needs to launch Indexer to search tags" visible in Fig. 7a.
pub const INDEXER_BASE_S: f64 = 4.0e-3;
/// Per index record scan cost, seconds.
pub const INDEXER_PER_RECORD_S: f64 = 2.0e-6;

/// The I/O determinator over a PLFS container set.
pub struct Determinator {
    containers: Arc<ContainerSet>,
    policy: DispatchPolicy,
}

impl std::fmt::Debug for Determinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Determinator")
            .field("containers", &self.containers)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Determinator {
    /// New determinator.
    pub fn new(containers: Arc<ContainerSet>, policy: DispatchPolicy) -> Determinator {
        Determinator { containers, policy }
    }

    /// The routing policy in force.
    pub fn policy(&self) -> &DispatchPolicy {
        &self.policy
    }

    /// The container set.
    pub fn containers(&self) -> &Arc<ContainerSet> {
        &self.containers
    }

    /// Dispatch one tagged subset to its policy-chosen backend.
    pub fn dispatch(
        &self,
        logical: &str,
        tag: &Tag,
        content: Content,
    ) -> Result<(String, SimDuration), PlfsError> {
        self.dispatch_frames(logical, tag, content, 0)
    }

    /// [`Determinator::dispatch`] with the dropping's decoded frame count
    /// recorded in its index record (`0` = unknown), so range reads map
    /// frames to droppings straight from the index.
    pub fn dispatch_frames(
        &self,
        logical: &str,
        tag: &Tag,
        content: Content,
        frames: u64,
    ) -> Result<(String, SimDuration), PlfsError> {
        let backend = self.policy.backend_for(tag).to_string();
        let d = self.containers.append_tagged_frames(
            logical,
            tag.as_str(),
            &backend,
            content,
            frames,
        )?;
        Ok((backend, d))
    }

    /// Indexer: resolve the records for a query and charge the search time.
    pub fn index_lookup(
        &self,
        logical: &str,
        tag: Option<&Tag>,
    ) -> Result<(Vec<IndexRecord>, SimDuration), PlfsError> {
        let all = self.containers.index(logical)?;
        let scanned = all.len();
        let records: Vec<IndexRecord> = match tag {
            Some(t) => all.into_iter().filter(|r| r.tag == t.as_str()).collect(),
            None => all,
        };
        let d = SimDuration::from_secs_f64(INDEXER_BASE_S + INDEXER_PER_RECORD_S * scanned as f64);
        Ok((records, d))
    }

    /// Retriever: fetch the (possibly tag-filtered) content.
    pub fn retrieve(
        &self,
        logical: &str,
        tag: Option<&Tag>,
    ) -> Result<(Content, SimDuration), PlfsError> {
        match tag {
            Some(t) => self.containers.read_tagged(logical, t.as_str()),
            None => self.containers.read_all(logical),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_simfs::{LocalFs, SimFileSystem};

    fn determinator() -> Determinator {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let cs = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd),
            ("hdd".into(), hdd),
        ]));
        cs.create_logical("bar").unwrap();
        Determinator::new(cs, DispatchPolicy::hybrid_gpcr("ssd", "hdd"))
    }

    #[test]
    fn policy_routing() {
        let p = DispatchPolicy::hybrid_gpcr("ssd", "hdd");
        assert_eq!(p.backend_for(&Tag::protein()), "ssd");
        assert_eq!(p.backend_for(&Tag::misc()), "hdd");
        assert_eq!(p.backend_for(&Tag::new("w")), "hdd");
        let all = DispatchPolicy::all_to("hdd");
        assert_eq!(all.backend_for(&Tag::protein()), "hdd");
    }

    #[test]
    fn dispatch_routes_by_tag() {
        let det = determinator();
        let (b1, _) = det
            .dispatch("bar", &Tag::protein(), Content::synthetic(100))
            .unwrap();
        let (b2, _) = det
            .dispatch("bar", &Tag::misc(), Content::synthetic(200))
            .unwrap();
        assert_eq!(b1, "ssd");
        assert_eq!(b2, "hdd");
        let by_backend = det.containers().bytes_by_backend("bar").unwrap();
        assert_eq!(by_backend["ssd"], 100);
        assert_eq!(by_backend["hdd"], 200);
    }

    #[test]
    fn index_lookup_filters_and_charges() {
        let det = determinator();
        det.dispatch("bar", &Tag::protein(), Content::synthetic(10))
            .unwrap();
        det.dispatch("bar", &Tag::misc(), Content::synthetic(10))
            .unwrap();
        det.dispatch("bar", &Tag::protein(), Content::synthetic(10))
            .unwrap();
        let (p, d) = det.index_lookup("bar", Some(&Tag::protein())).unwrap();
        assert_eq!(p.len(), 2);
        assert!(d.as_secs_f64() >= INDEXER_BASE_S);
        let (all, _) = det.index_lookup("bar", None).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn retrieve_tagged_and_all() {
        let det = determinator();
        det.dispatch("bar", &Tag::protein(), Content::real(vec![1u8; 5]))
            .unwrap();
        det.dispatch("bar", &Tag::misc(), Content::real(vec![2u8; 7]))
            .unwrap();
        let (p, _) = det.retrieve("bar", Some(&Tag::protein())).unwrap();
        assert_eq!(p.len(), 5);
        let (all, _) = det.retrieve("bar", None).unwrap();
        assert_eq!(all.len(), 12);
    }
}
