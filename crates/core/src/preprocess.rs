//! The data pre-processor's heavy lifting: decompression and splitting.
//!
//! On ingest ADA decompresses the `.xtc` once (on the storage node) and
//! divides every frame into per-tag sub-trajectories according to the
//! labeler's ranges; each subset is then re-encoded in the uncompressed
//! XTCF format for its backend, so later reads need no decompression at
//! all.
//!
//! Splitting parallelizes across **two** dimensions: tags × frame
//! chunks. A trajectory with two tags on an eight-core storage node
//! would leave six cores idle under per-tag threading alone, so the
//! frame axis is also cut into chunks and every (tag, chunk) cell
//! becomes one unit of work on a shared queue. XTCF frame records are
//! fixed-size and encoded independently, so per-chunk encodes stitch
//! back together — one header plus chunk bodies in frame order — into
//! exactly the bytes a serial encode would produce.
//!
//! The per-cell hot loop is allocation-free after startup: each worker
//! reuses one gather buffer across frames ([`IndexRanges::gather_into`])
//! and each cell's output buffer is pre-sized from
//! [`ada_mdformats::xtcf::encoded_len`].

use crate::categorizer::Labeler;
use crate::AdaError;
use ada_mdformats::xtcf::XtcfWriter;
use ada_mdformats::{xtcf, Trajectory};
use ada_mdmodel::{IndexRanges, Tag};
use ada_telemetry::trace::TraceContext;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of splitting a trajectory by tags.
#[derive(Debug)]
pub struct PreprocessOutput {
    /// Per-tag uncompressed XTCF payloads, in labeler tag order.
    pub subsets: BTreeMap<Tag, Vec<u8>>,
    /// Decompressed raw volume (bytes of frame coordinate data).
    pub raw_bytes: u64,
}

/// Tuning knobs for [`split_trajectory_opts`]. The default (zeros) means
/// one worker per available core with automatic chunking.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitOptions {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Frames per work cell; 0 picks a chunk size that yields a few
    /// cells per worker (load balance without stitch overhead).
    pub chunk_frames: usize,
}

impl SplitOptions {
    /// Explicit thread count, automatic chunking.
    pub fn with_threads(threads: usize) -> SplitOptions {
        SplitOptions {
            threads,
            chunk_frames: 0,
        }
    }

    fn resolve(&self, nframes: usize) -> (usize, usize) {
        let threads = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let chunk = if self.chunk_frames > 0 {
            self.chunk_frames
        } else {
            // ~4 cells per worker per tag keeps the queue long enough to
            // balance uneven tags without drowning in tiny encodes.
            (nframes / (threads * 4)).max(16)
        };
        (threads, chunk)
    }
}

/// Split `traj` into per-tag XTCF payloads guided by `labeler`, using
/// default parallelism (one worker per core).
pub fn split_trajectory(
    traj: &Trajectory,
    labeler: &Labeler,
) -> Result<PreprocessOutput, AdaError> {
    split_trajectory_opts(traj, labeler, SplitOptions::default())
}

/// Split `traj` with explicit parallelism options.
///
/// Work is a queue of (tag, frame-chunk) cells claimed by `threads`
/// crossbeam scoped workers; the output is byte-identical to
/// [`split_trajectory_serial`] for every thread count and chunk size.
pub fn split_trajectory_opts(
    traj: &Trajectory,
    labeler: &Labeler,
    opts: SplitOptions,
) -> Result<PreprocessOutput, AdaError> {
    split_trajectory_traced(traj, labeler, opts, &TraceContext::inactive())
}

/// [`split_trajectory_opts`] with request tracing: each scoped worker
/// records an `ingest.split.worker` span under `ctx` covering its share
/// of the cell queue, so the flight recorder shows the split stage's
/// actual fan-out instead of one opaque gap.
pub fn split_trajectory_traced(
    traj: &Trajectory,
    labeler: &Labeler,
    opts: SplitOptions,
    ctx: &TraceContext,
) -> Result<PreprocessOutput, AdaError> {
    let natoms = traj.natoms();
    check_ranges(labeler, natoms)?;

    let entries: Vec<(&Tag, &IndexRanges)> = labeler.iter().collect();
    let nframes = traj.len();
    let (threads, chunk_frames) = opts.resolve(nframes.max(1));
    let nchunks = nframes.div_ceil(chunk_frames);
    let ncells = entries.len() * nchunks;

    // cell index -> encoded body bytes (header stripped at stitch time).
    let mut cells: Vec<Option<Vec<u8>>> = Vec::new();
    cells.resize_with(ncells, || None);

    if ncells > 0 {
        let next = AtomicUsize::new(0);
        let workers = threads.min(ncells);
        let outcome: Result<(), AdaError> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let entries = &entries;
                    let wctx = ctx.clone();
                    scope.spawn(move |_| {
                        let mut ts = wctx.span("ingest.split.worker");
                        let mut done: Vec<(usize, Result<Vec<u8>, AdaError>)> = Vec::new();
                        let mut gather_buf: Vec<[f32; 3]> = Vec::new();
                        loop {
                            let cell = next.fetch_add(1, Ordering::Relaxed);
                            if cell >= ncells {
                                break;
                            }
                            let ranges = entries[cell / nchunks].1;
                            let start = (cell % nchunks) * chunk_frames;
                            let end = (start + chunk_frames).min(nframes);
                            done.push((
                                cell,
                                encode_chunk(traj, ranges, start..end, &mut gather_buf),
                            ));
                        }
                        ts.arg("cells", done.len());
                        done
                    })
                })
                .collect();
            for h in handles {
                let done = h
                    .join()
                    .map_err(|p| crate::worker_panic("split worker", p))?;
                for (idx, res) in done {
                    cells[idx] = Some(res?);
                }
            }
            Ok(())
        })
        .map_err(|p| crate::worker_panic("split scope", p))?;
        outcome?;
    }

    // Stitch: per tag, one header + chunk bodies in frame order.
    let mut subsets = BTreeMap::new();
    for (ti, (tag, ranges)) in entries.iter().enumerate() {
        let mut out = Vec::with_capacity(xtcf::encoded_len(nframes, ranges.count()));
        out.extend_from_slice(&xtcf::XTCF_MAGIC.to_le_bytes());
        out.extend_from_slice(&xtcf::XTCF_VERSION.to_le_bytes());
        for ci in 0..nchunks {
            let body = cells[ti * nchunks + ci]
                .take()
                .ok_or_else(|| AdaError::Internal("split cell missing after scope join".into()))?;
            out.extend_from_slice(&body[xtcf::XTCF_HEADER_LEN..]);
        }
        subsets.insert((*tag).clone(), out);
    }
    Ok(PreprocessOutput {
        subsets,
        raw_bytes: traj.nbytes() as u64,
    })
}

/// Single-threaded reference splitter (equivalence baseline and the
/// serial side of the ingest benchmarks). Same allocation-free frame
/// loop as the parallel path, minus threading.
pub fn split_trajectory_serial(
    traj: &Trajectory,
    labeler: &Labeler,
) -> Result<PreprocessOutput, AdaError> {
    check_ranges(labeler, traj.natoms())?;
    let mut subsets = BTreeMap::new();
    let mut gather_buf: Vec<[f32; 3]> = Vec::new();
    for (tag, ranges) in labeler {
        let bytes = encode_chunk(traj, ranges, 0..traj.len(), &mut gather_buf)?;
        subsets.insert(tag.clone(), bytes);
    }
    Ok(PreprocessOutput {
        subsets,
        raw_bytes: traj.nbytes() as u64,
    })
}

fn check_ranges(labeler: &Labeler, natoms: usize) -> Result<(), AdaError> {
    for ranges in labeler.values() {
        if let Some(end) = ranges.end() {
            if end > natoms {
                return Err(AdaError::AtomMismatch {
                    pdb: end,
                    xtc: natoms,
                });
            }
        }
    }
    Ok(())
}

/// Encode `frames` of the tag subset selected by `ranges` as one XTCF
/// byte string (header + records). `gather_buf` is reused across frames
/// so the loop allocates nothing beyond the pre-sized output buffer.
fn encode_chunk(
    traj: &Trajectory,
    ranges: &IndexRanges,
    frames: Range<usize>,
    gather_buf: &mut Vec<[f32; 3]>,
) -> Result<Vec<u8>, AdaError> {
    let mut w = XtcfWriter::with_capacity(frames.len(), ranges.count());
    for frame in &traj.frames[frames] {
        ranges.gather_into(&frame.coords, gather_buf);
        w.write_frame_parts(frame.step, frame.time, &frame.pbc, gather_buf)
            .map_err(|e| AdaError::Pdb(format!("xtcf encode: {}", e)))?;
    }
    Ok(w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdformats::read_xtcf;
    use ada_mdmodel::category::Taxonomy;

    fn workload() -> (ada_mdmodel::MolecularSystem, Trajectory, Labeler) {
        let w = ada_workload::gpcr_workload(2000, 4, 3);
        let labeler = crate::categorizer::categorize_algo1(&w.system, &Taxonomy::paper_default());
        (w.system, w.trajectory, labeler)
    }

    #[test]
    fn subsets_partition_every_frame() {
        let (system, traj, labeler) = workload();
        let out = split_trajectory(&traj, &labeler).unwrap();
        assert_eq!(out.raw_bytes, traj.nbytes() as u64);
        let mut atoms_total = 0usize;
        for (tag, bytes) in &out.subsets {
            let sub = read_xtcf(bytes).unwrap();
            assert_eq!(sub.len(), traj.len());
            assert_eq!(sub.natoms(), labeler[tag].count());
            atoms_total += sub.natoms();
        }
        assert_eq!(atoms_total, system.len());
    }

    #[test]
    fn subset_coordinates_match_gather() {
        let (_, traj, labeler) = workload();
        let out = split_trajectory(&traj, &labeler).unwrap();
        for (tag, ranges) in &labeler {
            let sub = read_xtcf(&out.subsets[tag]).unwrap();
            for (f, sf) in traj.frames.iter().zip(&sub.frames) {
                assert_eq!(sf.coords, ranges.gather(&f.coords));
                assert_eq!(sf.step, f.step);
                assert_eq!(sf.time, f.time);
                assert_eq!(sf.pbc, f.pbc);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bytewise() {
        let (_, traj, labeler) = workload();
        let serial = split_trajectory_serial(&traj, &labeler).unwrap();
        // Sweep thread counts and chunk sizes, including chunks that
        // don't divide the frame count and chunks larger than it.
        for threads in [1, 2, 3, 8] {
            for chunk_frames in [1, 2, 3, 100] {
                let par = split_trajectory_opts(
                    &traj,
                    &labeler,
                    SplitOptions {
                        threads,
                        chunk_frames,
                    },
                )
                .unwrap();
                assert_eq!(par.raw_bytes, serial.raw_bytes);
                assert_eq!(
                    par.subsets, serial.subsets,
                    "threads={} chunk_frames={}",
                    threads, chunk_frames
                );
            }
        }
    }

    #[test]
    fn range_overflow_detected() {
        let (_, traj, _) = workload();
        let mut bad: Labeler = BTreeMap::new();
        bad.insert(Tag::protein(), IndexRanges::single(0..traj.natoms() + 5));
        assert!(matches!(
            split_trajectory(&traj, &bad),
            Err(AdaError::AtomMismatch { .. })
        ));
        assert!(matches!(
            split_trajectory_serial(&traj, &bad),
            Err(AdaError::AtomMismatch { .. })
        ));
    }

    #[test]
    fn empty_labeler_produces_nothing() {
        let (_, traj, _) = workload();
        let out = split_trajectory(&traj, &BTreeMap::new()).unwrap();
        assert!(out.subsets.is_empty());
    }

    #[test]
    fn empty_trajectory_ok() {
        let mut labeler: Labeler = BTreeMap::new();
        labeler.insert(Tag::protein(), IndexRanges::single(0..0));
        let out = split_trajectory(&Trajectory::new(), &labeler).unwrap();
        let sub = read_xtcf(&out.subsets[&Tag::protein()]).unwrap();
        assert!(sub.is_empty());
    }
}
