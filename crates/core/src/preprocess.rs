//! The data pre-processor's heavy lifting: decompression and splitting.
//!
//! On ingest ADA decompresses the `.xtc` once (on the storage node) and
//! divides every frame into per-tag sub-trajectories according to the
//! labeler's ranges; each subset is then re-encoded in the uncompressed
//! XTCF format for its backend, so later reads need no decompression at
//! all.

use crate::categorizer::Labeler;
use crate::AdaError;
use ada_mdformats::xtcf::XtcfWriter;
use ada_mdformats::{Frame, Trajectory};
use ada_mdmodel::{IndexRanges, Tag};
use std::collections::BTreeMap;

/// Result of splitting a trajectory by tags.
#[derive(Debug)]
pub struct PreprocessOutput {
    /// Per-tag uncompressed XTCF payloads, in labeler tag order.
    pub subsets: BTreeMap<Tag, Vec<u8>>,
    /// Decompressed raw volume (bytes of frame coordinate data).
    pub raw_bytes: u64,
}

/// Split `traj` into per-tag XTCF payloads guided by `labeler`.
///
/// The per-tag work (gather + encode) is fanned out over crossbeam scoped
/// threads — the storage node's cores are exactly the resource the paper
/// wants to spend here instead of compute-node cores.
pub fn split_trajectory(
    traj: &Trajectory,
    labeler: &Labeler,
) -> Result<PreprocessOutput, AdaError> {
    let natoms = traj.natoms();
    for (tag, ranges) in labeler {
        if let Some(end) = ranges.end() {
            if end > natoms {
                return Err(AdaError::AtomMismatch {
                    pdb: end,
                    xtc: natoms,
                });
            }
        }
        let _ = tag;
    }

    let entries: Vec<(&Tag, &IndexRanges)> = labeler.iter().collect();
    let mut results: Vec<Option<Result<Vec<u8>, AdaError>>> = Vec::new();
    results.resize_with(entries.len(), || None);

    crossbeam::thread::scope(|scope| {
        for ((tag, ranges), slot) in entries.iter().zip(results.iter_mut()) {
            let _ = tag;
            scope.spawn(move |_| {
                *slot = Some(encode_subset(traj, ranges));
            });
        }
    })
    .expect("split worker panicked");

    let mut subsets = BTreeMap::new();
    for ((tag, _), slot) in entries.iter().zip(results) {
        let bytes = slot.expect("slot filled")?;
        subsets.insert((*tag).clone(), bytes);
    }
    Ok(PreprocessOutput {
        subsets,
        raw_bytes: traj.nbytes() as u64,
    })
}

fn encode_subset(traj: &Trajectory, ranges: &IndexRanges) -> Result<Vec<u8>, AdaError> {
    let mut w = XtcfWriter::new();
    for frame in &traj.frames {
        let sub = Frame {
            step: frame.step,
            time: frame.time,
            pbc: frame.pbc,
            coords: ranges.gather(&frame.coords),
        };
        w.write_frame(&sub)
            .map_err(|e| AdaError::Pdb(format!("xtcf encode: {}", e)))?;
    }
    Ok(w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdformats::read_xtcf;
    use ada_mdmodel::category::Taxonomy;

    fn workload() -> (ada_mdmodel::MolecularSystem, Trajectory, Labeler) {
        let w = ada_workload::gpcr_workload(2000, 4, 3);
        let labeler = crate::categorizer::categorize_algo1(&w.system, &Taxonomy::paper_default());
        (w.system, w.trajectory, labeler)
    }

    #[test]
    fn subsets_partition_every_frame() {
        let (system, traj, labeler) = workload();
        let out = split_trajectory(&traj, &labeler).unwrap();
        assert_eq!(out.raw_bytes, traj.nbytes() as u64);
        let mut atoms_total = 0usize;
        for (tag, bytes) in &out.subsets {
            let sub = read_xtcf(bytes).unwrap();
            assert_eq!(sub.len(), traj.len());
            assert_eq!(sub.natoms(), labeler[tag].count());
            atoms_total += sub.natoms();
        }
        assert_eq!(atoms_total, system.len());
    }

    #[test]
    fn subset_coordinates_match_gather() {
        let (_, traj, labeler) = workload();
        let out = split_trajectory(&traj, &labeler).unwrap();
        for (tag, ranges) in &labeler {
            let sub = read_xtcf(&out.subsets[tag]).unwrap();
            for (f, sf) in traj.frames.iter().zip(&sub.frames) {
                assert_eq!(sf.coords, ranges.gather(&f.coords));
                assert_eq!(sf.step, f.step);
                assert_eq!(sf.time, f.time);
                assert_eq!(sf.pbc, f.pbc);
            }
        }
    }

    #[test]
    fn range_overflow_detected() {
        let (_, traj, _) = workload();
        let mut bad: Labeler = BTreeMap::new();
        bad.insert(Tag::protein(), IndexRanges::single(0..traj.natoms() + 5));
        assert!(matches!(
            split_trajectory(&traj, &bad),
            Err(AdaError::AtomMismatch { .. })
        ));
    }

    #[test]
    fn empty_labeler_produces_nothing() {
        let (_, traj, _) = workload();
        let out = split_trajectory(&traj, &BTreeMap::new()).unwrap();
        assert!(out.subsets.is_empty());
    }

    #[test]
    fn empty_trajectory_ok() {
        let mut labeler: Labeler = BTreeMap::new();
        labeler.insert(Tag::protein(), IndexRanges::single(0..0));
        let out = split_trajectory(&Trajectory::new(), &labeler).unwrap();
        let sub = read_xtcf(&out.subsets[&Tag::protein()]).unwrap();
        assert!(sub.is_empty());
    }
}
