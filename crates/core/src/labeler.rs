//! The label file.
//!
//! Algorithm 1 ends with "Store the labeler to a file named `label_file`
//! for later I/O reference". The label file is the out-of-band metadata
//! that lets the indexer resolve tag queries without touching (or
//! modifying) the data subsets themselves.

use crate::categorizer::Labeler;
use crate::AdaError;
use ada_json::Value;
use ada_mdmodel::{IndexRanges, Tag};
use ada_simfs::{Content, SimFileSystem};
use ada_storagesim::SimDuration;
use std::collections::BTreeMap;

/// Serializable label metadata for one ingested dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelFile {
    /// Logical dataset name (the `.xtc` stem).
    pub dataset: String,
    /// Atom count of the guiding structure.
    pub natoms: usize,
    /// Frame count of the ingested trajectory.
    pub nframes: usize,
    /// Tag → atom index ranges.
    pub tags: BTreeMap<Tag, IndexRanges>,
}

impl LabelFile {
    /// Build from a categorizer run.
    pub fn new(
        dataset: impl Into<String>,
        natoms: usize,
        nframes: usize,
        labeler: Labeler,
    ) -> LabelFile {
        LabelFile {
            dataset: dataset.into(),
            natoms,
            nframes,
            tags: labeler,
        }
    }

    /// Ranges for one tag.
    pub fn ranges(&self, tag: &Tag) -> Result<&IndexRanges, AdaError> {
        self.tags
            .get(tag)
            .ok_or_else(|| AdaError::UnknownTag(tag.to_string()))
    }

    /// Atom count under a tag.
    pub fn atoms_of(&self, tag: &Tag) -> usize {
        self.tags.get(tag).map_or(0, IndexRanges::count)
    }

    /// All tags in order.
    pub fn all_tags(&self) -> Vec<Tag> {
        self.tags.keys().cloned().collect()
    }

    /// Canonical storage path for a dataset's label file.
    pub fn path_for(dataset: &str) -> String {
        format!("ada/labels/{}.label.json", dataset)
    }

    /// JSON rendering: ranges are `[start, end)` pairs under each tag.
    fn to_json(&self) -> Value {
        let tags = self
            .tags
            .iter()
            .map(|(tag, ranges)| {
                let pairs = ranges
                    .iter_ranges()
                    .map(|r| {
                        Value::Arr(vec![
                            Value::num_u(r.start as u64),
                            Value::num_u(r.end as u64),
                        ])
                    })
                    .collect();
                (tag.as_str().to_string(), Value::Arr(pairs))
            })
            .collect();
        Value::obj(vec![
            ("dataset", Value::str(self.dataset.clone())),
            ("natoms", Value::num_u(self.natoms as u64)),
            ("nframes", Value::num_u(self.nframes as u64)),
            ("tags", Value::Obj(tags)),
        ])
    }

    fn from_json(v: &Value) -> Result<LabelFile, ada_json::JsonError> {
        let mut tags = BTreeMap::new();
        for (tag, pairs) in v.field("tags")?.as_obj()? {
            let mut ranges = Vec::new();
            for pair in pairs.as_arr()? {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(ada_json::JsonError(
                        "range is not a [start, end) pair".into(),
                    ));
                }
                ranges.push(pair[0].as_usize()?..pair[1].as_usize()?);
            }
            tags.insert(Tag::new(tag.as_str()), IndexRanges::from_ranges(ranges));
        }
        Ok(LabelFile {
            dataset: v.field("dataset")?.as_str()?.to_string(),
            natoms: v.field("natoms")?.as_usize()?,
            nframes: v.field("nframes")?.as_usize()?,
            tags,
        })
    }

    /// Persist to a file system; returns the write duration.
    pub fn store(&self, fs: &dyn SimFileSystem) -> Result<SimDuration, AdaError> {
        let json = self.to_json().to_vec();
        let path = LabelFile::path_for(&self.dataset);
        if fs.exists(&path) {
            fs.delete(&path)?;
        }
        Ok(fs.create(&path, Content::real(json))?)
    }

    /// Load a dataset's label file.
    pub fn load(
        fs: &dyn SimFileSystem,
        dataset: &str,
    ) -> Result<(LabelFile, SimDuration), AdaError> {
        let (content, d) = fs.read(&LabelFile::path_for(dataset))?;
        let bytes = content
            .as_real()
            .ok_or_else(|| AdaError::Pdb("label file is synthetic".into()))?;
        let label = ada_json::parse(bytes)
            .and_then(|v| LabelFile::from_json(&v))
            .map_err(|e| AdaError::Pdb(format!("label parse: {}", e)))?;
        Ok((label, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_simfs::LocalFs;

    fn label() -> LabelFile {
        let mut tags: Labeler = BTreeMap::new();
        tags.insert(Tag::protein(), IndexRanges::single(0..100));
        tags.insert(Tag::misc(), IndexRanges::from_ranges([100..220, 250..300]));
        LabelFile::new("bar", 300, 10, tags)
    }

    #[test]
    fn accessors() {
        let l = label();
        assert_eq!(l.atoms_of(&Tag::protein()), 100);
        assert_eq!(l.atoms_of(&Tag::misc()), 170);
        assert_eq!(l.atoms_of(&Tag::new("z")), 0);
        assert!(l.ranges(&Tag::protein()).is_ok());
        assert!(matches!(
            l.ranges(&Tag::new("z")),
            Err(AdaError::UnknownTag(_))
        ));
        assert_eq!(l.all_tags(), vec![Tag::misc(), Tag::protein()]);
    }

    #[test]
    fn store_load_roundtrip() {
        let fs = LocalFs::ext4_on_nvme();
        let l = label();
        let wd = l.store(&fs).unwrap();
        assert!(wd.as_secs_f64() > 0.0);
        let (back, rd) = LabelFile::load(&fs, "bar").unwrap();
        assert_eq!(back, l);
        assert!(rd.as_secs_f64() > 0.0);
    }

    #[test]
    fn store_overwrites() {
        let fs = LocalFs::ext4_on_nvme();
        let mut l = label();
        l.store(&fs).unwrap();
        l.nframes = 99;
        l.store(&fs).unwrap();
        let (back, _) = LabelFile::load(&fs, "bar").unwrap();
        assert_eq!(back.nframes, 99);
    }

    #[test]
    fn load_missing_dataset() {
        let fs = LocalFs::ext4_on_nvme();
        assert!(LabelFile::load(&fs, "nope").is_err());
    }
}
