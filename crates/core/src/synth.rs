//! Synthetic (size-only) dataset descriptors.
//!
//! The fat-node experiments run to 2.6 TB of raw data; those datasets flow
//! through ADA as byte volumes with the structural metadata the pipeline
//! needs (frame count, atom count, per-tag atom shares). Every stage
//! charges the same virtual time it would for real bytes of that size.

use ada_mdmodel::Tag;
use std::collections::BTreeMap;

/// Metadata of a synthetic trajectory dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    /// Frame count.
    pub frames: u64,
    /// Atoms per frame.
    pub natoms: u64,
    /// Compressed (.xtc) byte volume.
    pub compressed_bytes: u64,
    /// Atom share per tag (must sum to `natoms`).
    pub atoms_by_tag: BTreeMap<Tag, u64>,
}

impl SyntheticDataset {
    /// A paper-calibrated GPCR dataset: ~45.6k atoms/frame, 42.5 % protein,
    /// 3.27× compression.
    pub fn gpcr_paper(frames: u64) -> SyntheticDataset {
        let natoms = 43_500u64; // 0.522 MB/frame at 12 B/atom
        let protein = (natoms as f64 * 0.4245) as u64;
        let mut atoms_by_tag = BTreeMap::new();
        atoms_by_tag.insert(Tag::protein(), protein);
        atoms_by_tag.insert(Tag::misc(), natoms - protein);
        SyntheticDataset {
            frames,
            natoms,
            compressed_bytes: (frames as f64 * 0.15981e6) as u64,
            atoms_by_tag,
        }
    }

    /// Raw (decompressed) byte volume: 12 bytes per atom per frame.
    pub fn raw_bytes(&self) -> u64 {
        self.frames * self.natoms * 12
    }

    /// Decompressed byte volume of one tag's subset.
    pub fn tag_bytes(&self, tag: &Tag) -> u64 {
        self.atoms_by_tag.get(tag).copied().unwrap_or(0) * self.frames * 12
    }

    /// All tags.
    pub fn tags(&self) -> Vec<Tag> {
        self.atoms_by_tag.keys().cloned().collect()
    }

    /// Structure-file (pdb) size estimate: ~81 bytes per atom record.
    pub fn pdb_bytes(&self) -> u64 {
        self.natoms * 81
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_volumes() {
        let d = SyntheticDataset::gpcr_paper(626);
        let mb = 1e6;
        let raw = d.raw_bytes() as f64 / mb;
        let comp = d.compressed_bytes as f64 / mb;
        let prot = d.tag_bytes(&Tag::protein()) as f64 / mb;
        // Table 2 row 1: 100 / 139 / 327 MB.
        assert!((comp - 100.0).abs() < 2.0, "compressed {}", comp);
        assert!((raw - 327.0).abs() < 7.0, "raw {}", raw);
        assert!((prot - 139.0).abs() < 3.0, "protein {}", prot);
    }

    #[test]
    fn tags_partition_atoms() {
        let d = SyntheticDataset::gpcr_paper(100);
        let total: u64 = d.atoms_by_tag.values().sum();
        assert_eq!(total, d.natoms);
        assert_eq!(
            d.tag_bytes(&Tag::protein()) + d.tag_bytes(&Tag::misc()),
            d.raw_bytes()
        );
        assert_eq!(d.tag_bytes(&Tag::new("zz")), 0);
    }

    #[test]
    fn volumes_scale_linearly_in_frames() {
        let a = SyntheticDataset::gpcr_paper(1000);
        let b = SyntheticDataset::gpcr_paper(2000);
        assert_eq!(b.raw_bytes(), 2 * a.raw_bytes());
        assert_eq!(b.tag_bytes(&Tag::misc()), 2 * a.tag_bytes(&Tag::misc()));
    }
}
