#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-core — the Application-Conscious Data Acquirer
//!
//! The paper's contribution (§3): a light-weight file-system middleware
//! that sits between VMD and the underlying file systems and performs
//! application-conscious data pre-processing *on storage nodes*, so compute
//! nodes receive only decompressed **active** data.
//!
//! Architecture (Fig. 4 / Fig. 5):
//!
//! ```text
//!            user API (mol new / mol addfile ... tag p)
//!   ┌────────────────────── ADA ──────────────────────┐
//!   │  Data pre-processor            I/O determinator │
//!   │  ├─ decompressor (XTC)         ├─ I/O dispatcher│
//!   │  ├─ data categorizer (Algo 1)  ├─ indexer       │
//!   │  └─ labeler                    └─ I/O retriever │
//!   └──────────────────────┬──────────────────────────┘
//!            PLFS-style containers over ext4 / PVFS
//! ```
//!
//! * [`categorizer`] — Algorithm 1: a linear scan over the `.pdb` atoms
//!   producing per-tag index ranges.
//! * [`labeler`] — the label file: tag → ranges, stored out-of-band so "no
//!   additional information is injected to any of data subsets".
//! * [`preprocess`] — decompressor + splitter: decode the `.xtc`, apply the
//!   label ranges to every frame, re-encode each subset (uncompressed
//!   XTCF) for its backend.
//! * [`determinator`] — dispatcher (tag → backend policy), indexer
//!   (tag → dropping paths via the PLFS index) and retriever.
//! * [`Ada`] — the facade gluing it together: [`Ada::ingest`] traps a
//!   (`.pdb`, `.xtc`) pair on its way to storage, [`Ada::query`] serves
//!   `mol addfile /mnt/bar.xtc tag p`.
//!
//! Everything works in two data modes (see `ada-simfs`): `Real` bytes are
//! decoded/split/re-encoded by the actual codecs; `Synthetic` volumes flow
//! through the same stage graph with byte counts only, so the TB-scale
//! platform experiments exercise identical code paths.

pub mod ada;
pub mod categorizer;
pub mod determinator;
pub mod labeler;
pub mod preprocess;
pub mod profile;
pub mod synth;
pub mod tiering;

pub use ada::{Ada, AdaConfig, IngestInput, IngestReport, QueryReport, RetrievedData};
pub use categorizer::{categorize_algo1, Labeler};
pub use determinator::{Determinator, DispatchPolicy};
pub use labeler::LabelFile;
pub use preprocess::{
    split_trajectory, split_trajectory_opts, split_trajectory_serial, split_trajectory_traced,
    PreprocessOutput, SplitOptions,
};
pub use profile::StageProfile;
pub use synth::SyntheticDataset;
pub use tiering::{heat_snapshot, HeatSnapshot, MigrationPlan, Rebalancer};

use ada_mdformats::FormatError;
use ada_mdformats::XtcError;
use ada_plfs::PlfsError;
use ada_simfs::FsError;

/// Errors across the ADA middleware.
#[derive(Debug)]
pub enum AdaError {
    /// Underlying simulated file system failed.
    Fs(FsError),
    /// PLFS container layer failed.
    Plfs(PlfsError),
    /// Trajectory decode/encode failed.
    Xtc(XtcError),
    /// A stored dropping failed to decode as XTCF — corrupt or not real
    /// bytes. Distinct from [`AdaError::Pdb`] so `ada.query.err.{kind}`
    /// telemetry attributes read-path corruption correctly.
    Xtcf {
        /// Dropping path that failed to decode.
        dropping: String,
        /// The underlying format error.
        source: FormatError,
    },
    /// Full-frame reassembly found tags whose droppings carry different
    /// frame counts — refusing to silently truncate to the shortest.
    FrameCountMismatch {
        /// Tag whose frame count disagrees with the label.
        tag: String,
        /// Frames the label file says the dataset has.
        expected: usize,
        /// Frames actually decoded for `tag`.
        got: usize,
    },
    /// Structure file failed to parse.
    Pdb(String),
    /// The query asked for a tag the labeler never produced.
    UnknownTag(String),
    /// The logical dataset is unknown.
    UnknownDataset(String),
    /// A frame-range read asked for frames the dataset does not have, an
    /// empty window, or a zero stride.
    InvalidRange {
        /// First frame requested (inclusive).
        start: usize,
        /// End of the requested window (exclusive).
        end: usize,
        /// Requested stride.
        stride: usize,
        /// Frames the dataset actually has.
        nframes: usize,
    },
    /// Atom-count mismatch between structure and trajectory.
    AtomMismatch {
        /// Atoms in the `.pdb`.
        pdb: usize,
        /// Atoms per frame in the `.xtc`.
        xtc: usize,
    },
    /// Input was rejected (not produced by a target application).
    NotTargetApplication(String),
    /// An internal invariant broke (e.g. a pipeline worker panicked or a
    /// join failed). Queries and ingests surface this as a structured
    /// error instead of poisoning channels and hanging the pipeline.
    Internal(String),
    /// The front-end admission queue for the request's class is full; the
    /// request was shed instead of queueing unboundedly (the Fig. 9
    /// contention regime). Clients should back off and retry.
    Overloaded {
        /// Requests already waiting in the class queue when this one
        /// arrived.
        queue_depth: usize,
        /// Suggested back-off before retrying, estimated from the mean
        /// observed service time and the current queue depth.
        retry_after: std::time::Duration,
    },
    /// The request was admitted but its deadline elapsed while it waited
    /// in the admission queue; it was dropped before touching storage.
    DeadlineExceeded {
        /// How long the request actually waited in the queue.
        waited: std::time::Duration,
        /// The deadline the client attached to the request.
        deadline: std::time::Duration,
    },
    /// The networked path failed below the request layer: connect/read/
    /// write timed out, the peer vanished mid-frame, or a frame failed
    /// protocol validation (bad magic, bad CRC, oversized length). The
    /// request outcome is unknown to the caller; retrying is safe for
    /// queries and create-once-guarded for ingests.
    Network {
        /// What broke, rendered for operators (includes the peer address
        /// where known).
        detail: String,
    },
}

/// Convert a worker-thread panic payload into a structured [`AdaError`]
/// so a bug in a pipeline stage fails the operation instead of aborting
/// (and deadlocking) the whole pipeline.
pub(crate) fn worker_panic(
    what: &str,
    payload: Box<dyn std::any::Any + Send + 'static>,
) -> AdaError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    AdaError::Internal(format!("{} panicked: {}", what, msg))
}

impl From<FsError> for AdaError {
    fn from(e: FsError) -> AdaError {
        AdaError::Fs(e)
    }
}

impl From<PlfsError> for AdaError {
    fn from(e: PlfsError) -> AdaError {
        AdaError::Plfs(e)
    }
}

impl From<XtcError> for AdaError {
    fn from(e: XtcError) -> AdaError {
        AdaError::Xtc(e)
    }
}

impl std::fmt::Display for AdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaError::Fs(e) => write!(f, "fs: {}", e),
            AdaError::Plfs(e) => write!(f, "plfs: {}", e),
            AdaError::Xtc(e) => write!(f, "xtc: {}", e),
            AdaError::Xtcf { dropping, source } => {
                write!(f, "corrupt dropping '{}': {}", dropping, source)
            }
            AdaError::FrameCountMismatch { tag, expected, got } => write!(
                f,
                "frame count mismatch: tag '{}' decoded {} frames, label expects {}",
                tag, got, expected
            ),
            AdaError::Pdb(m) => write!(f, "pdb: {}", m),
            AdaError::UnknownTag(t) => write!(f, "unknown tag '{}'", t),
            AdaError::UnknownDataset(d) => write!(f, "unknown dataset '{}'", d),
            AdaError::InvalidRange {
                start,
                end,
                stride,
                nframes,
            } => write!(
                f,
                "invalid frame range [{}, {}) stride {} over {} frames",
                start, end, stride, nframes
            ),
            AdaError::AtomMismatch { pdb, xtc } => {
                write!(f, "atom mismatch: pdb has {}, xtc frames have {}", pdb, xtc)
            }
            AdaError::NotTargetApplication(p) => {
                write!(f, "'{}' was not generated by a target application", p)
            }
            AdaError::Internal(m) => write!(f, "internal error: {}", m),
            AdaError::Overloaded {
                queue_depth,
                retry_after,
            } => write!(
                f,
                "overloaded: {} requests queued, retry after {:?}",
                queue_depth, retry_after
            ),
            AdaError::DeadlineExceeded { waited, deadline } => write!(
                f,
                "deadline exceeded: waited {:?} in the admission queue, deadline was {:?}",
                waited, deadline
            ),
            AdaError::Network { detail } => write!(f, "network: {}", detail),
        }
    }
}

impl AdaError {
    /// Stable short name of the error class — the suffix of the telemetry
    /// counter (`ada.{op}.err.{kind}`) every failed middleware call bumps,
    /// so error rates aggregate uniformly across variants.
    pub fn kind(&self) -> &'static str {
        match self {
            AdaError::Fs(_) => "fs",
            AdaError::Plfs(_) => "plfs",
            AdaError::Xtc(_) => "xtc",
            AdaError::Xtcf { .. } => "xtcf",
            AdaError::FrameCountMismatch { .. } => "frame_count_mismatch",
            AdaError::Pdb(_) => "pdb",
            AdaError::UnknownTag(_) => "unknown_tag",
            AdaError::UnknownDataset(_) => "unknown_dataset",
            AdaError::InvalidRange { .. } => "invalid_range",
            AdaError::AtomMismatch { .. } => "atom_mismatch",
            AdaError::NotTargetApplication(_) => "not_target_application",
            AdaError::Internal(_) => "internal",
            AdaError::Overloaded { .. } => "overloaded",
            AdaError::DeadlineExceeded { .. } => "deadline_exceeded",
            AdaError::Network { .. } => "network",
        }
    }
}

impl std::error::Error for AdaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdaError::Fs(e) => Some(e),
            AdaError::Plfs(e) => Some(e),
            AdaError::Xtc(e) => Some(e),
            AdaError::Xtcf { source, .. } => Some(source),
            AdaError::FrameCountMismatch { .. }
            | AdaError::Pdb(_)
            | AdaError::UnknownTag(_)
            | AdaError::UnknownDataset(_)
            | AdaError::InvalidRange { .. }
            | AdaError::AtomMismatch { .. }
            | AdaError::NotTargetApplication(_)
            | AdaError::Internal(_)
            | AdaError::Overloaded { .. }
            | AdaError::DeadlineExceeded { .. }
            | AdaError::Network { .. } => None,
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use std::error::Error;

    fn all_variants() -> Vec<AdaError> {
        vec![
            AdaError::Fs(FsError::NotFound("x".into())),
            AdaError::Plfs(PlfsError::UnknownBackend("b".into())),
            AdaError::Xtc(XtcError::TruncatedPayload),
            AdaError::Xtcf {
                dropping: "ssd/bar/hostdir.0/dropping.data.p.0".into(),
                source: FormatError::Corrupt("bad magic".into()),
            },
            AdaError::FrameCountMismatch {
                tag: "m".into(),
                expected: 7,
                got: 5,
            },
            AdaError::Pdb("bad atom line".into()),
            AdaError::UnknownTag("z".into()),
            AdaError::UnknownDataset("d".into()),
            AdaError::InvalidRange {
                start: 4,
                end: 4,
                stride: 1,
                nframes: 9,
            },
            AdaError::AtomMismatch { pdb: 3, xtc: 4 },
            AdaError::NotTargetApplication("out.csv".into()),
            AdaError::Internal("worker panicked: boom".into()),
            AdaError::Overloaded {
                queue_depth: 9,
                retry_after: std::time::Duration::from_millis(3),
            },
            AdaError::DeadlineExceeded {
                waited: std::time::Duration::from_millis(12),
                deadline: std::time::Duration::from_millis(10),
            },
        ]
    }

    #[test]
    fn display_is_nonempty_and_distinct_per_variant() {
        let msgs: Vec<String> = all_variants().iter().map(|e| e.to_string()).collect();
        for m in &msgs {
            assert!(!m.is_empty());
        }
        let unique: std::collections::BTreeSet<&String> = msgs.iter().collect();
        assert_eq!(unique.len(), msgs.len(), "two variants render identically");
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let kinds: Vec<&str> = all_variants().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "fs",
                "plfs",
                "xtc",
                "xtcf",
                "frame_count_mismatch",
                "pdb",
                "unknown_tag",
                "unknown_dataset",
                "invalid_range",
                "atom_mismatch",
                "not_target_application",
                "internal",
                "overloaded",
                "deadline_exceeded"
            ]
        );
    }

    #[test]
    fn worker_panic_extracts_str_and_string_payloads() {
        let e = worker_panic("splitter", Box::new("index out of bounds"));
        assert_eq!(e.kind(), "internal");
        assert!(e
            .to_string()
            .contains("splitter panicked: index out of bounds"));
        let e = worker_panic("decoder", Box::new(String::from("boom")));
        assert!(e.to_string().contains("decoder panicked: boom"));
        let e = worker_panic("reader", Box::new(42u32));
        assert!(e.to_string().contains("opaque panic payload"));
    }

    #[test]
    fn source_chains_wrapped_errors() {
        for e in all_variants() {
            match &e {
                AdaError::Fs(_) | AdaError::Plfs(_) | AdaError::Xtc(_) | AdaError::Xtcf { .. } => {
                    let src = e.source().expect("wrapped variant must expose source");
                    // The chain renders: Display stays consistent with it.
                    assert!(e.to_string().contains(&src.to_string()));
                }
                _ => assert!(e.source().is_none()),
            }
        }
    }
}
