//! Property tests over the categorizer and splitter: for ANY residue
//! sequence and ANY taxonomy, Algorithm 1 must produce a partition of the
//! atom set that agrees with the declarative specification, and splitting
//! + reassembling a trajectory must be the identity.

use ada_core::{categorize_algo1, split_trajectory};
use ada_mdformats::{read_xtcf, Frame, Trajectory};
use ada_mdmodel::category::{Taxonomy, TaxonomyRule};
use ada_mdmodel::{Atom, Element, IndexRanges, MolecularSystem, PbcBox, Tag};
use proptest::prelude::*;
use std::collections::BTreeMap;

const RESNAMES: [&str; 8] = ["ALA", "GLY", "SOL", "POPC", "SOD", "CLA", "LIG", "DA"];

fn arb_system() -> impl Strategy<Value = MolecularSystem> {
    prop::collection::vec((0usize..RESNAMES.len(), 1usize..6), 0..40).prop_map(|residues| {
        let mut atoms = Vec::new();
        let mut coords = Vec::new();
        for (resid, (rn, count)) in residues.into_iter().enumerate() {
            for k in 0..count {
                atoms.push(Atom {
                    serial: atoms.len() as u32 + 1,
                    name: format!("A{}", k),
                    resname: RESNAMES[rn].to_string(),
                    resid: resid as i32 + 1,
                    chain: 'A',
                    element: Element::C,
                    hetero: false,
                });
                coords.push([resid as f32 * 0.3, k as f32 * 0.1, 0.0]);
            }
        }
        MolecularSystem::from_atoms("prop", atoms, coords, PbcBox::zero())
    })
}

fn arb_taxonomy() -> impl Strategy<Value = Taxonomy> {
    // Random subset of residue names per tag, random default.
    (
        prop::collection::vec((0usize..RESNAMES.len(), 0usize..4), 0..5),
        0usize..4,
    )
        .prop_map(|(assignments, default)| {
            let rules = assignments
                .into_iter()
                .map(|(rn, tag)| TaxonomyRule {
                    residues: vec![RESNAMES[rn].to_string()],
                    category: None,
                    tag: Tag::new(format!("t{}", tag)),
                })
                .collect();
            Taxonomy::new(rules, Tag::new(format!("t{}", default)))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn algo1_partitions_and_matches_spec(system in arb_system(), taxonomy in arb_taxonomy()) {
        let labeler = categorize_algo1(&system, &taxonomy);
        // Partition: counts sum to n, ranges pairwise disjoint.
        let total: usize = labeler.values().map(IndexRanges::count).sum();
        prop_assert_eq!(total, system.len());
        let tags: Vec<&IndexRanges> = labeler.values().collect();
        for i in 0..tags.len() {
            for j in (i + 1)..tags.len() {
                prop_assert!(tags[i].intersect(tags[j]).is_empty());
            }
        }
        // Agreement with the declarative residue-granular computation.
        prop_assert_eq!(labeler, system.tag_ranges(&taxonomy));
    }

    #[test]
    fn split_then_scatter_is_identity(system in arb_system(), taxonomy in arb_taxonomy(), nframes in 1usize..4) {
        let frames: Vec<Frame> = (0..nframes)
            .map(|f| Frame {
                step: f as i32,
                time: f as f32,
                pbc: PbcBox::zero(),
                coords: system
                    .coords
                    .iter()
                    .map(|c| [c[0] + f as f32, c[1], c[2]])
                    .collect(),
            })
            .collect();
        let traj = Trajectory::from_frames(frames);
        let labeler = categorize_algo1(&system, &taxonomy);
        let out = split_trajectory(&traj, &labeler).unwrap();
        prop_assert_eq!(out.subsets.len(), labeler.len());

        // Reassemble every frame from the subsets.
        let mut rebuilt: Vec<Vec<[f32; 3]>> =
            vec![vec![[f32::NAN; 3]; system.len()]; traj.len()];
        let mut per_tag: BTreeMap<&Tag, Trajectory> = BTreeMap::new();
        for (tag, bytes) in &out.subsets {
            per_tag.insert(tag, read_xtcf(bytes).unwrap());
        }
        for (tag, ranges) in &labeler {
            let sub = &per_tag[tag];
            for (fi, f) in sub.frames.iter().enumerate() {
                ranges.scatter(&f.coords, &mut rebuilt[fi]);
            }
        }
        for (fi, f) in traj.frames.iter().enumerate() {
            prop_assert_eq!(&rebuilt[fi], &f.coords); // XTCF is bit exact
        }
    }
}
