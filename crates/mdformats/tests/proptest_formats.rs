//! Property-based tests over the format codecs.
//!
//! The XTC coder is the highest-risk code in the repository (bit-level
//! state machine with a run-length coder and scale adaptation), so it gets
//! adversarial random inputs here: arbitrary coordinate clouds, clustered
//! water-like layouts, extreme spreads, and all precisions — the invariant
//! is always `|decoded - original| <= 0.5/precision` plus idempotence on
//! the quantized lattice.

use ada_mdformats::xtc::{decode_frames_parallel, index_frames, write_xtc};
use ada_mdformats::{read_trr, read_xtc, read_xtcf, write_trr, write_xtcf, Frame, Trajectory};
use ada_mdmodel::PbcBox;
use proptest::prelude::*;

fn arb_coords(max_atoms: usize, span: f32) -> impl Strategy<Value = Vec<[f32; 3]>> {
    prop::collection::vec(prop::array::uniform3(-span..span), 0..max_atoms)
}

fn arb_clustered_coords() -> impl Strategy<Value = Vec<[f32; 3]>> {
    // Clusters of 1-4 atoms within smallnum-ish distance of a center:
    // exercises the run coder and the water swap aggressively.
    prop::collection::vec(
        (
            prop::array::uniform3(-20.0f32..20.0),
            prop::collection::vec(prop::array::uniform3(-0.15f32..0.15), 0..4),
        ),
        1..40,
    )
    .prop_map(|clusters| {
        let mut out = Vec::new();
        for (center, offsets) in clusters {
            out.push(center);
            for o in offsets {
                out.push([center[0] + o[0], center[1] + o[1], center[2] + o[2]]);
            }
        }
        out
    })
}

fn assert_roundtrip(coords: &[[f32; 3]], precision: f32) {
    let traj = Trajectory::from_frames(vec![Frame::from_coords(coords.to_vec())]);
    let bytes = write_xtc(&traj, precision).expect("encode");
    let back = read_xtc(&bytes).expect("decode");
    assert_eq!(back.frames.len(), 1);
    let out = &back.frames[0].coords;
    assert_eq!(out.len(), coords.len());
    let tol = 0.5 / precision
        + 1e-5
            * (1.0
                + coords
                    .iter()
                    .flat_map(|c| c.iter())
                    .fold(0.0f32, |a, &b| a.max(b.abs())));
    for (a, b) in coords.iter().zip(out) {
        for d in 0..3 {
            assert!(
                (a[d] - b[d]).abs() <= tol,
                "coordinate error {} vs {} (tol {})",
                a[d],
                b[d],
                tol
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xtc_roundtrip_uniform(coords in arb_coords(300, 50.0)) {
        assert_roundtrip(&coords, 1000.0);
    }

    #[test]
    fn xtc_roundtrip_clustered(coords in arb_clustered_coords()) {
        assert_roundtrip(&coords, 1000.0);
    }

    #[test]
    fn xtc_roundtrip_precisions(
        coords in arb_coords(120, 10.0),
        precision in prop::sample::select(vec![10.0f32, 100.0, 1000.0, 10000.0]),
    ) {
        assert_roundtrip(&coords, precision);
    }

    #[test]
    fn xtc_idempotent_on_lattice(coords in arb_clustered_coords()) {
        let t0 = Trajectory::from_frames(vec![Frame::from_coords(coords)]);
        let once = read_xtc(&write_xtc(&t0, 1000.0).unwrap()).unwrap();
        let twice = read_xtc(&write_xtc(&once, 1000.0).unwrap()).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn xtc_multiframe_roundtrip(
        frames in prop::collection::vec(arb_coords(60, 8.0), 1..6).prop_filter(
            "uniform atom count",
            |fs| fs.iter().all(|f| f.len() == fs[0].len()),
        ),
        step0 in 0i32..10000,
        dt in 0.1f32..100.0,
    ) {
        let traj = Trajectory::from_frames(
            frames
                .into_iter()
                .enumerate()
                .map(|(i, coords)| Frame {
                    step: step0 + i as i32,
                    time: dt * i as f32,
                    pbc: PbcBox::rectangular(10.0, 11.0, 12.0),
                    coords,
                })
                .collect(),
        );
        let bytes = write_xtc(&traj, 1000.0).unwrap();
        let back = read_xtc(&bytes).unwrap();
        prop_assert_eq!(back.len(), traj.len());
        for (a, b) in traj.frames.iter().zip(&back.frames) {
            prop_assert_eq!(a.step, b.step);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.pbc, b.pbc);
        }
        // Index scan agrees with the writer.
        let spans = index_frames(&bytes).unwrap();
        prop_assert_eq!(spans.len(), traj.len());
        prop_assert_eq!(spans.last().unwrap().offset + spans.last().unwrap().len, bytes.len());
        // Parallel decode agrees with sequential.
        prop_assert_eq!(decode_frames_parallel(&bytes, 3).unwrap(), back);
    }

    #[test]
    fn xtc_rejects_arbitrary_truncation(
        coords in arb_coords(100, 5.0).prop_filter("nonempty", |c| c.len() > 10),
        cut_fraction in 0.05f64..0.95,
    ) {
        let traj = Trajectory::from_frames(vec![Frame::from_coords(coords)]);
        let bytes = write_xtc(&traj, 1000.0).unwrap();
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        // Truncated input must error, never panic or return wrong-length
        // data silently.
        if let Ok(t) = read_xtc(&bytes[..cut]) { prop_assert!(t.is_empty() || cut == bytes.len()) }
    }

    #[test]
    fn xtcf_bit_exact(coords in arb_coords(200, 1000.0), n in 1usize..4) {
        let frames: Vec<Frame> = (0..n)
            .map(|i| Frame {
                step: i as i32,
                time: i as f32,
                pbc: PbcBox::zero(),
                coords: coords.clone(),
            })
            .collect();
        let traj = Trajectory::from_frames(frames);
        let bytes = write_xtcf(&traj).unwrap();
        prop_assert_eq!(read_xtcf(&bytes).unwrap(), traj);
    }

    #[test]
    fn trr_bit_exact(coords in arb_coords(150, 500.0)) {
        let traj = Trajectory::from_frames(vec![Frame {
            step: 7,
            time: 1.25,
            pbc: PbcBox::rectangular(3.0, 4.0, 5.0),
            coords,
        }]);
        let bytes = write_trr(&traj).unwrap();
        prop_assert_eq!(read_trr(&bytes).unwrap(), traj);
    }

    #[test]
    fn xtc_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        // Whatever the bytes, the decoder returns Ok or Err — no panic, no
        // unbounded allocation.
        let _ = read_xtc(&data);
        let _ = index_frames(&data);
        let _ = read_xtcf(&data);
        let _ = read_trr(&data);
    }

    #[test]
    fn xtc_decoder_never_panics_on_bitflips(
        coords in arb_coords(80, 5.0).prop_filter("nonempty", |c| c.len() > 10),
        flip_byte in 0usize..10_000,
        flip_mask in 1u8..=255,
    ) {
        let traj = Trajectory::from_frames(vec![Frame::from_coords(coords)]);
        let mut bytes = write_xtc(&traj, 1000.0).unwrap();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= flip_mask;
        let _ = read_xtc(&bytes); // must not panic
    }
}
