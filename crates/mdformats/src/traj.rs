//! Trajectory frames: the in-memory representation shared by all codecs.

use ada_mdmodel::PbcBox;

/// One trajectory frame: simulation step/time, periodic box, and coordinates
/// in nanometres.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// MD integration step number.
    pub step: i32,
    /// Simulation time in picoseconds.
    pub time: f32,
    /// Periodic box of the frame.
    pub pbc: PbcBox,
    /// One coordinate triple per atom.
    pub coords: Vec<[f32; 3]>,
}

impl Frame {
    /// A frame with the given coordinates at step 0, time 0, zero box.
    pub fn from_coords(coords: Vec<[f32; 3]>) -> Frame {
        Frame {
            step: 0,
            time: 0.0,
            pbc: PbcBox::zero(),
            coords,
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the frame has no atoms.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// In-memory footprint of the decoded frame in bytes (what VMD must hold
    /// to replay this frame).
    pub fn nbytes(&self) -> usize {
        std::mem::size_of::<Frame>() + self.coords.len() * 12
    }

    /// Extract the sub-frame covered by `ranges` (ADA's splitter applies
    /// the labeler's ranges to every frame).
    pub fn subset(&self, ranges: &ada_mdmodel::IndexRanges) -> Frame {
        Frame {
            step: self.step,
            time: self.time,
            pbc: self.pbc,
            coords: ranges.gather(&self.coords),
        }
    }
}

/// An in-memory trajectory: an ordered list of frames over a fixed atom set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Frames in time order.
    pub frames: Vec<Frame>,
}

impl Trajectory {
    /// Empty trajectory.
    pub fn new() -> Trajectory {
        Trajectory::default()
    }

    /// Wrap a frame list.
    pub fn from_frames(frames: Vec<Frame>) -> Trajectory {
        Trajectory { frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Atom count of the first frame (0 when empty). All codecs enforce a
    /// uniform atom count across frames.
    pub fn natoms(&self) -> usize {
        self.frames.first().map_or(0, Frame::len)
    }

    /// Total decoded size in bytes.
    pub fn nbytes(&self) -> usize {
        self.frames.iter().map(Frame::nbytes).sum()
    }

    /// Apply `ranges` to every frame (subset trajectory).
    pub fn subset(&self, ranges: &ada_mdmodel::IndexRanges) -> Trajectory {
        Trajectory {
            frames: self.frames.iter().map(|f| f.subset(ranges)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::IndexRanges;

    #[test]
    fn frame_subset() {
        let f = Frame::from_coords((0..10).map(|i| [i as f32; 3]).collect());
        let sub = f.subset(&IndexRanges::from_ranges([2..4, 7..9]));
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.coords[0], [2.0; 3]);
        assert_eq!(sub.coords[3], [8.0; 3]);
    }

    #[test]
    fn trajectory_accounting() {
        let t = Trajectory::from_frames(vec![
            Frame::from_coords(vec![[0.0; 3]; 5]),
            Frame::from_coords(vec![[1.0; 3]; 5]),
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.natoms(), 5);
        assert!(t.nbytes() >= 2 * 5 * 12);
        let sub = t.subset(&IndexRanges::single(0..2));
        assert_eq!(sub.natoms(), 2);
    }
}
