//! GROMACS `.gro` structure files.
//!
//! The GROMACS ecosystem's native structure format (fixed columns, nm
//! units). GROMACS-produced datasets — like the paper's — often ship a
//! `.gro` alongside or instead of a `.pdb`; ADA's categorizer only needs
//! residue names and order, which `.gro` also carries.
//!
//! ```text
//! title line
//! natoms
//! %5d%-5s%5s%5d%8.3f%8.3f%8.3f      (resid, resname, atom name, serial, x, y, z)
//! box: "lx ly lz" (free format, nm)
//! ```

use ada_mdmodel::{Atom, Element, MolecularSystem, PbcBox};

/// Error from the GRO parser.
#[derive(Debug)]
pub struct GroError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for GroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gro line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GroError {}

fn field(line: &str, start: usize, end: usize) -> &str {
    line.get(start.min(line.len())..end.min(line.len()))
        .unwrap_or("")
}

/// Parse a `.gro` text.
pub fn parse_gro(text: &str) -> Result<MolecularSystem, GroError> {
    let mut lines = text.lines().enumerate();
    let (_, title) = lines.next().ok_or(GroError {
        line: 1,
        message: "missing title line".into(),
    })?;
    let (n_lineno, natoms_line) = lines.next().ok_or(GroError {
        line: 2,
        message: "missing atom count line".into(),
    })?;
    let natoms: usize = natoms_line.trim().parse().map_err(|_| GroError {
        line: n_lineno + 1,
        message: format!("bad atom count '{}'", natoms_line.trim()),
    })?;

    let mut atoms = Vec::with_capacity(natoms);
    let mut coords = Vec::with_capacity(natoms);
    for _ in 0..natoms {
        let (lineno, line) = lines.next().ok_or(GroError {
            line: n_lineno + 2 + atoms.len(),
            message: "file ended before all atoms were read".into(),
        })?;
        let resid: i32 = field(line, 0, 5).trim().parse().map_err(|_| GroError {
            line: lineno + 1,
            message: "bad residue number".into(),
        })?;
        let resname = field(line, 5, 10).trim().to_string();
        let name = field(line, 10, 15).trim().to_string();
        let serial: u32 = field(line, 15, 20).trim().parse().unwrap_or(0);
        let parse_coord = |s: usize, e: usize, what: &str| -> Result<f32, GroError> {
            field(line, s, e).trim().parse().map_err(|_| GroError {
                line: lineno + 1,
                message: format!("bad {} coordinate '{}'", what, field(line, s, e)),
            })
        };
        let x = parse_coord(20, 28, "x")?;
        let y = parse_coord(28, 36, "y")?;
        let z = parse_coord(36, 44, "z")?;
        let element = Element::from_pdb_atom_name(&name, &resname);
        atoms.push(Atom {
            serial,
            name,
            resname,
            resid,
            chain: ' ',
            element,
            hetero: false,
        });
        coords.push([x, y, z]); // .gro is already in nm
    }

    let pbc = match lines.next() {
        Some((lineno, box_line)) => {
            let vals: Vec<f32> = box_line
                .split_whitespace()
                .map(|w| w.parse::<f32>())
                .collect::<Result<_, _>>()
                .map_err(|_| GroError {
                    line: lineno + 1,
                    message: "bad box line".into(),
                })?;
            match vals.len() {
                0 => PbcBox::zero(),
                3 => PbcBox::rectangular(vals[0], vals[1], vals[2]),
                9 => PbcBox {
                    // GROMACS order: xx yy zz xy xz yx yz zx zy.
                    m: [
                        [vals[0], vals[3], vals[4]],
                        [vals[5], vals[1], vals[6]],
                        [vals[7], vals[8], vals[2]],
                    ],
                },
                n => {
                    return Err(GroError {
                        line: lineno + 1,
                        message: format!("box line must have 0, 3 or 9 values, got {}", n),
                    })
                }
            }
        }
        None => PbcBox::zero(),
    };

    Ok(MolecularSystem::from_atoms(
        title.trim(),
        atoms,
        coords,
        pbc,
    ))
}

/// Serialize a system to `.gro` text.
pub fn write_gro(system: &MolecularSystem) -> String {
    let mut out = String::with_capacity(system.len() * 45 + 64);
    out.push_str(if system.title.is_empty() {
        "written by ada-mdformats"
    } else {
        &system.title
    });
    out.push('\n');
    out.push_str(&format!("{:5}\n", system.len()));
    for (atom, c) in system.atoms.iter().zip(&system.coords) {
        out.push_str(&format!(
            "{:5}{:<5}{:>5}{:5}{:8.3}{:8.3}{:8.3}\n",
            atom.resid.rem_euclid(100_000),
            truncate(&atom.resname, 5),
            truncate(&atom.name, 5),
            atom.serial % 100_000,
            c[0],
            c[1],
            c[2],
        ));
    }
    let l = system.pbc.lengths();
    out.push_str(&format!("{:10.5}{:10.5}{:10.5}\n", l[0], l[1], l[2]));
    out
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::Category;

    const SAMPLE: &str = "\
GPCR slab, t= 0.0
    5
    1ALA      N    1   1.000   2.000   3.000
    1ALA     CA    2   1.100   2.050   3.020
    2SOL     OW    3   0.100   0.200   0.300
    2SOL    HW1    4   0.190   0.200   0.300
    3SOD     NA    5   0.500   0.500   0.500
   8.00000   8.00000  10.00000
";

    #[test]
    fn parse_sample() {
        let s = parse_gro(SAMPLE).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.title, "GPCR slab, t= 0.0");
        assert_eq!(s.atoms[0].resname, "ALA");
        assert_eq!(s.atoms[0].name, "N");
        assert_eq!(s.atoms[2].resname, "SOL");
        assert!((s.coords[0][0] - 1.0).abs() < 1e-6);
        assert_eq!(s.pbc.lengths(), [8.0, 8.0, 10.0]);
        assert_eq!(s.residues.len(), 3);
        let counts = s.category_counts();
        assert_eq!(counts[&Category::Protein], 2);
        assert_eq!(counts[&Category::Water], 2);
        assert_eq!(counts[&Category::Ion], 1);
    }

    #[test]
    fn roundtrip() {
        let s = parse_gro(SAMPLE).unwrap();
        let text = write_gro(&s);
        let back = parse_gro(&text).unwrap();
        assert_eq!(back.len(), s.len());
        for (a, b) in s.atoms.iter().zip(&back.atoms) {
            assert_eq!(a.resname, b.resname);
            assert_eq!(a.name, b.name);
            assert_eq!(a.resid, b.resid);
        }
        for (ca, cb) in s.coords.iter().zip(&back.coords) {
            for d in 0..3 {
                assert!((ca[d] - cb[d]).abs() < 1e-3);
            }
        }
        assert_eq!(back.pbc, s.pbc);
    }

    #[test]
    fn workload_roundtrip() {
        let w = ada_workload_free_system();
        let text = write_gro(&w);
        let back = parse_gro(&text).unwrap();
        assert_eq!(back.len(), w.len());
        assert_eq!(back.residues.len(), w.residues.len());
        assert!((back.protein_fraction() - w.protein_fraction()).abs() < 1e-9);
    }

    // A tiny local builder to avoid a dev-dependency cycle on
    // ada-workload from within ada-mdformats.
    fn ada_workload_free_system() -> MolecularSystem {
        let mut atoms = Vec::new();
        let mut coords = Vec::new();
        let mut serial = 1u32;
        for resid in 1..=30i32 {
            let (resname, n) = if resid <= 12 { ("LEU", 8) } else { ("SOL", 3) };
            for k in 0..n {
                atoms.push(Atom {
                    serial,
                    name: if k == 0 {
                        "N".into()
                    } else {
                        format!("C{}", k)
                    },
                    resname: resname.into(),
                    resid,
                    chain: ' ',
                    element: Element::C,
                    hetero: false,
                });
                coords.push([resid as f32 * 0.3, k as f32 * 0.1, 0.5]);
                serial += 1;
            }
        }
        MolecularSystem::from_atoms("t", atoms, coords, PbcBox::rectangular(10.0, 5.0, 5.0))
    }

    #[test]
    fn truncated_file_errors() {
        assert!(parse_gro("").is_err());
        assert!(parse_gro("title\n").is_err());
        assert!(parse_gro("title\n  3\n    1ALA      N    1   1.0   2.0   3.0\n").is_err());
    }

    #[test]
    fn bad_fields_error_with_line_numbers() {
        let bad = "t\n  1\n    xALA      N    1   1.000   2.000   3.000\n0 0 0\n";
        let err = parse_gro(bad).unwrap_err();
        assert_eq!(err.line, 3);
        let bad2 = "t\n  1\n    1ALA      N    1   x.000   2.000   3.000\n0 0 0\n";
        assert!(parse_gro(bad2)
            .unwrap_err()
            .message
            .contains("x coordinate"));
    }

    #[test]
    fn triclinic_box_roundtrips_through_parse() {
        let text = "t\n  1\n    1ALA      N    1   1.000   2.000   3.000\n 8.0 8.0 10.0 0.0 0.0 0.0 0.0 4.0 0.0\n";
        let s = parse_gro(text).unwrap();
        assert!(!s.pbc.is_rectangular());
        assert_eq!(s.pbc.m[2][0], 4.0);
    }

    #[test]
    fn missing_box_line_is_zero_box() {
        let text = "t\n  1\n    1ALA      N    1   1.000   2.000   3.000\n";
        let s = parse_gro(text).unwrap();
        assert!(s.pbc.is_zero());
    }
}
