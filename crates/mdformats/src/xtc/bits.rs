//! Bit-level coding primitives of the `xdr3dfcoord` algorithm.
//!
//! These mirror the classic `libxdrfile` routines `sendbits`/`receivebits`
//! (MSB-first bit packing into a byte stream) and `sendints`/`receiveints`
//! (mixed-radix packing of small integer triples whose per-component ranges
//! are known), plus the `sizeofint`/`sizeofints` bit-width calculators.

/// Bits needed to represent values in `0..size` (i.e. smallest `n` with
/// `2^n >= size`), capped at 32.
pub fn size_of_int(size: u32) -> u32 {
    let mut num: u64 = 1;
    let mut bits = 0u32;
    while (size as u64) >= num && bits < 32 {
        bits += 1;
        num <<= 1;
    }
    bits
}

/// Bits needed for the mixed-radix product of `sizes` (each value `v_i` in
/// `0..sizes[i]` packed as `((v_0) * s_1 + v_1) * s_2 + v_2 ...`).
pub fn size_of_ints(sizes: &[u32]) -> u32 {
    let mut bytes = [0u8; 32];
    let mut num_of_bytes = 1usize;
    bytes[0] = 1;
    let mut num_of_bits = 0u32;
    for &size in sizes {
        let mut tmp: u64 = 0;
        let mut bytecnt = 0usize;
        while bytecnt < num_of_bytes {
            tmp += bytes[bytecnt] as u64 * size as u64;
            bytes[bytecnt] = (tmp & 0xff) as u8;
            tmp >>= 8;
            bytecnt += 1;
        }
        while tmp != 0 {
            bytes[bytecnt] = (tmp & 0xff) as u8;
            bytecnt += 1;
            tmp >>= 8;
        }
        num_of_bytes = bytecnt;
    }
    let mut num = 1u32;
    let top = bytes[num_of_bytes - 1] as u32;
    while top >= num {
        num_of_bits += 1;
        num *= 2;
    }
    num_of_bits + (num_of_bytes as u32 - 1) * 8
}

/// MSB-first bit writer with the exact state machine of `sendbits`.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    lastbits: u32,
    lastbyte: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Write the low `nbits` bits of `num`, MSB first. For `nbits > 32`
    /// the bits above the u32 are zero (this happens in `send_ints` when a
    /// wide mixed-radix field is padded; the C original performs the same
    /// write via out-of-range shifts that happen to produce zeros).
    pub fn send_bits(&mut self, mut nbits: u32, num: u32) {
        while nbits > 32 {
            let zeros = (nbits - 32).min(8);
            self.send_bits(zeros, 0);
            nbits -= zeros;
        }
        let mut lastbyte = self.lastbyte;
        let mut lastbits = self.lastbits;
        while nbits >= 8 {
            lastbyte = (lastbyte << 8) | ((num >> (nbits - 8)) & 0xff);
            self.bytes.push((lastbyte >> lastbits) as u8);
            nbits -= 8;
        }
        if nbits > 0 {
            lastbyte = (lastbyte << nbits) | (num & ((1u32 << nbits) - 1));
            lastbits += nbits;
            if lastbits >= 8 {
                lastbits -= 8;
                self.bytes.push((lastbyte >> lastbits) as u8);
            }
        }
        self.lastbyte = lastbyte;
        self.lastbits = lastbits;
    }

    /// Pack `nums[i] in 0..sizes[i]` in mixed radix using `nbits` total bits
    /// (as computed by [`size_of_ints`]); exact port of `sendints`.
    pub fn send_ints(&mut self, nbits: u32, sizes: &[u32; 3], nums: &[u32; 3]) {
        let mut bytes = [0u8; 32];
        let mut num_of_bytes = 0usize;
        let mut tmp = nums[0];
        loop {
            bytes[num_of_bytes] = (tmp & 0xff) as u8;
            num_of_bytes += 1;
            tmp >>= 8;
            if tmp == 0 {
                break;
            }
        }
        for i in 1..3 {
            debug_assert!(
                nums[i] < sizes[i],
                "major overflow compressing coordinates: {} >= {}",
                nums[i],
                sizes[i]
            );
            // One-step multiply-accumulate in base 256.
            let mut tmp: u64 = nums[i] as u64;
            let mut bytecnt = 0usize;
            while bytecnt < num_of_bytes {
                tmp += bytes[bytecnt] as u64 * sizes[i] as u64;
                bytes[bytecnt] = (tmp & 0xff) as u8;
                tmp >>= 8;
                bytecnt += 1;
            }
            while tmp != 0 {
                bytes[bytecnt] = (tmp & 0xff) as u8;
                bytecnt += 1;
                tmp >>= 8;
            }
            num_of_bytes = bytecnt;
        }
        if nbits >= num_of_bytes as u32 * 8 {
            for &b in bytes.iter().take(num_of_bytes) {
                self.send_bits(8, b as u32);
            }
            self.send_bits(nbits - num_of_bytes as u32 * 8, 0);
        } else {
            for &b in bytes.iter().take(num_of_bytes - 1) {
                self.send_bits(8, b as u32);
            }
            self.send_bits(
                nbits - (num_of_bytes as u32 - 1) * 8,
                bytes[num_of_bytes - 1] as u32,
            );
        }
    }

    /// Flush the partial byte (zero-padded low bits) and return the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.lastbits > 0 {
            self.bytes
                .push((self.lastbyte << (8 - self.lastbits)) as u8);
        }
        self.bytes
    }

    /// Number of whole bytes of payload written so far, counting a partial
    /// byte as one (the value the C code stores in `buf[0]` at the end).
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + usize::from(self.lastbits > 0)
    }
}

/// MSB-first bit reader matching [`BitWriter`]; exact port of
/// `receivebits`/`receiveints`.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    cnt: usize,
    lastbits: u32,
    lastbyte: u32,
}

/// Error produced when a reader runs off the end of its buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct BitsEof;

impl<'a> BitReader<'a> {
    /// Reader over a compressed payload.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            cnt: 0,
            lastbits: 0,
            lastbyte: 0,
        }
    }

    fn next_byte(&mut self) -> Result<u32, BitsEof> {
        let b = *self.data.get(self.cnt).ok_or(BitsEof)?;
        self.cnt += 1;
        Ok(b as u32)
    }

    /// Read `nbits` bits MSB-first. `nbits <= 32`.
    pub fn receive_bits(&mut self, mut nbits: u32) -> Result<u32, BitsEof> {
        debug_assert!(nbits <= 32);
        let mask: u32 = if nbits >= 32 {
            u32::MAX
        } else {
            (1u32 << nbits) - 1
        };
        let mut num: u32 = 0;
        while nbits >= 8 {
            self.lastbyte = (self.lastbyte << 8) | self.next_byte()?;
            num |= ((self.lastbyte >> self.lastbits) & 0xff) << (nbits - 8);
            nbits -= 8;
        }
        if nbits > 0 {
            if self.lastbits < nbits {
                self.lastbits += 8;
                self.lastbyte = (self.lastbyte << 8) | self.next_byte()?;
            }
            self.lastbits -= nbits;
            num |= (self.lastbyte >> self.lastbits) & ((1u32 << nbits) - 1);
        }
        Ok(num & mask)
    }

    /// Inverse of [`BitWriter::send_ints`].
    pub fn receive_ints(&mut self, mut nbits: u32, sizes: &[u32; 3]) -> Result<[u32; 3], BitsEof> {
        let mut bytes = [0u32; 32];
        let mut num_of_bytes = 0usize;
        while nbits > 8 {
            bytes[num_of_bytes] = self.receive_bits(8)?;
            num_of_bytes += 1;
            nbits -= 8;
        }
        if nbits > 0 {
            bytes[num_of_bytes] = self.receive_bits(nbits)?;
            num_of_bytes += 1;
        }
        let mut nums = [0u32; 3];
        for i in (1..3).rev() {
            let mut num: u64 = 0;
            for j in (0..num_of_bytes).rev() {
                num = (num << 8) | bytes[j] as u64;
                let p = num / sizes[i] as u64;
                bytes[j] = p as u32;
                num -= p * sizes[i] as u64;
            }
            nums[i] = num as u32;
        }
        nums[0] = bytes[0] | (bytes[1] << 8) | (bytes[2] << 16) | (bytes[3] << 24);
        Ok(nums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn size_of_int_basics() {
        assert_eq!(size_of_int(0), 0);
        assert_eq!(size_of_int(1), 1);
        assert_eq!(size_of_int(2), 2);
        assert_eq!(size_of_int(3), 2);
        assert_eq!(size_of_int(4), 3);
        assert_eq!(size_of_int(255), 8);
        assert_eq!(size_of_int(256), 9);
        assert_eq!(size_of_int(u32::MAX), 32);
    }

    #[test]
    fn size_of_ints_matches_product_width() {
        // 3 components each in 0..10 → product 1000 → needs 10 bits.
        assert_eq!(size_of_ints(&[10, 10, 10]), 10);
        // 0..256 each → 2^24 → 25 bits (sizeofints counts 2^24 inclusive).
        assert_eq!(size_of_ints(&[256, 256, 256]), 25);
        assert_eq!(size_of_ints(&[1, 1, 1]), 1);
    }

    #[test]
    fn bits_roundtrip_simple() {
        let mut w = BitWriter::new();
        w.send_bits(5, 0b10110);
        w.send_bits(1, 1);
        w.send_bits(13, 4321);
        w.send_bits(32, 0xCAFEBABE);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.receive_bits(5).unwrap(), 0b10110);
        assert_eq!(r.receive_bits(1).unwrap(), 1);
        assert_eq!(r.receive_bits(13).unwrap(), 4321);
        assert_eq!(r.receive_bits(32).unwrap(), 0xCAFEBABE);
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.send_bits(0, 0);
        w.send_bits(3, 0b101);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.receive_bits(0).unwrap(), 0);
        assert_eq!(r.receive_bits(3).unwrap(), 0b101);
    }

    #[test]
    fn reader_eof() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.receive_bits(8).unwrap(), 0xFF);
        assert_eq!(r.receive_bits(1), Err(BitsEof));
    }

    #[test]
    fn ints_roundtrip_simple() {
        let sizes = [100u32, 200, 50];
        let nbits = size_of_ints(&sizes);
        let mut w = BitWriter::new();
        w.send_ints(nbits, &sizes, &[99, 0, 49]);
        w.send_ints(nbits, &sizes, &[0, 199, 25]);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.receive_ints(nbits, &sizes).unwrap(), [99, 0, 49]);
        assert_eq!(r.receive_ints(nbits, &sizes).unwrap(), [0, 199, 25]);
    }

    proptest! {
        #[test]
        fn prop_bits_roundtrip(values in prop::collection::vec((1u32..=32, any::<u32>()), 1..40)) {
            let mut w = BitWriter::new();
            let masked: Vec<(u32, u32)> = values
                .iter()
                .map(|&(n, v)| (n, if n == 32 { v } else { v & ((1 << n) - 1) }))
                .collect();
            for &(n, v) in &masked {
                w.send_bits(n, v);
            }
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            for &(n, v) in &masked {
                prop_assert_eq!(r.receive_bits(n).unwrap(), v);
            }
        }

        #[test]
        fn prop_ints_roundtrip(
            s0 in 1u32..5000, s1 in 1u32..5000, s2 in 1u32..5000,
            picks in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..30),
        ) {
            let sizes = [s0, s1, s2];
            let nbits = size_of_ints(&sizes);
            let triples: Vec<[u32; 3]> = picks
                .iter()
                .map(|&(a, b, c)| [a % s0, b % s1, c % s2])
                .collect();
            let mut w = BitWriter::new();
            for t in &triples {
                w.send_ints(nbits, &sizes, t);
            }
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            for t in &triples {
                prop_assert_eq!(&r.receive_ints(nbits, &sizes).unwrap(), t);
            }
        }

        #[test]
        fn prop_ints_large_sizes(
            picks in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 1..10),
        ) {
            // Near the 0xffffff limit used by the coder before it switches
            // to per-component encoding.
            let sizes = [0xffffffu32, 0xfffffe, 0xabcdef];
            let nbits = size_of_ints(&sizes);
            let triples: Vec<[u32; 3]> = picks
                .iter()
                .map(|&(a, b, c)| [a % sizes[0], b % sizes[1], c % sizes[2]])
                .collect();
            let mut w = BitWriter::new();
            for t in &triples {
                w.send_ints(nbits, &sizes, t);
            }
            let buf = w.finish();
            let mut r = BitReader::new(&buf);
            for t in &triples {
                prop_assert_eq!(&r.receive_ints(nbits, &sizes).unwrap(), t);
            }
        }
    }
}
