//! GROMACS `.xtc` trajectory files.
//!
//! Frame layout (all XDR big-endian):
//!
//! ```text
//! i32  magic          == 1995
//! i32  natoms
//! i32  step
//! f32  time (ps)
//! f32  box[3][3]      row-major
//! ...  xdr3dfcoord    (natoms again, then compressed coordinates)
//! ```
//!
//! Besides the sequential [`XtcReader`]/[`XtcWriter`], this module provides
//! a header-only [`index_frames`] scan (used by random access and by ADA's
//! dispatcher to size subsets without decompressing) and a
//! [`decode_frames_parallel`] helper that fans frame decompression out over
//! crossbeam scoped threads — decompression dominates turnaround time in
//! the paper (Fig. 8), so the substrate makes it parallelizable.

mod bits;
mod coder;

pub use bits::{size_of_int, size_of_ints, BitReader, BitWriter};
pub use coder::{decode_3dfcoord, encode_3dfcoord, XtcError, MAGICINTS, PLAIN_FLOAT_THRESHOLD};

use crate::traj::{Frame, Trajectory};
use crate::xdr::{XdrDecoder, XdrEncoder};
use crate::FormatError;
use ada_mdmodel::PbcBox;

/// The XTC frame magic number.
pub const XTC_MAGIC: i32 = 1995;

/// Default coordinate precision (lattice points per nm) used by GROMACS.
pub const DEFAULT_PRECISION: f32 = 1000.0;

/// Byte span of one frame within an XTC byte stream, plus its header fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameSpan {
    /// Byte offset of the frame start.
    pub offset: usize,
    /// Byte length of the whole frame record.
    pub len: usize,
    /// Atom count from the header.
    pub natoms: usize,
    /// Step number.
    pub step: i32,
    /// Time in ps.
    pub time: f32,
}

/// Appends XTC frames to a byte buffer.
#[derive(Debug)]
pub struct XtcWriter {
    enc: XdrEncoder,
    precision: f32,
    natoms: Option<usize>,
}

impl XtcWriter {
    /// Writer with the given coordinate precision.
    pub fn new(precision: f32) -> XtcWriter {
        XtcWriter {
            enc: XdrEncoder::new(),
            precision,
            natoms: None,
        }
    }

    /// Append one frame. All frames of a file must share one atom count.
    pub fn write_frame(&mut self, frame: &Frame) -> Result<(), XtcError> {
        if let Some(n) = self.natoms {
            if n != frame.len() {
                return Err(XtcError::BadAtomCount(frame.len() as i32));
            }
        } else {
            self.natoms = Some(frame.len());
        }
        self.enc.put_i32(XTC_MAGIC);
        self.enc.put_i32(frame.len() as i32);
        self.enc.put_i32(frame.step);
        self.enc.put_f32(frame.time);
        for row in &frame.pbc.m {
            self.enc.put_f32_vector(row);
        }
        encode_3dfcoord(&mut self.enc, &frame.coords, self.precision)
    }

    /// Finish, returning the encoded file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.enc.into_bytes()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }
}

/// Sequential frame reader over an XTC byte stream.
#[derive(Debug)]
pub struct XtcReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> XtcReader<'a> {
    /// Reader at the start of `data`.
    pub fn new(data: &'a [u8]) -> XtcReader<'a> {
        XtcReader { data, pos: 0 }
    }

    /// Whether all frames were consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Read the next frame, or `Ok(None)` at a clean end of stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, XtcError> {
        if self.is_at_end() {
            return Ok(None);
        }
        let mut dec = XdrDecoder::new(&self.data[self.pos..]);
        let frame = read_frame(&mut dec)?;
        self.pos += dec.position();
        Ok(Some(frame))
    }
}

fn read_frame(dec: &mut XdrDecoder) -> Result<Frame, XtcError> {
    let magic = dec.get_i32()?;
    if magic != XTC_MAGIC {
        return Err(XtcError::BadMagic(magic));
    }
    let natoms = dec.get_i32()?;
    if natoms < 0 {
        return Err(XtcError::BadAtomCount(natoms));
    }
    let step = dec.get_i32()?;
    let time = dec.get_f32()?;
    let mut pbc = PbcBox::zero();
    for r in 0..3 {
        for c in 0..3 {
            pbc.m[r][c] = dec.get_f32()?;
        }
    }
    let (coords, _prec) = decode_3dfcoord(dec)?;
    if coords.len() != natoms as usize {
        return Err(XtcError::Format(FormatError::Corrupt(format!(
            "header natoms {} != coordinate count {}",
            natoms,
            coords.len()
        ))));
    }
    Ok(Frame {
        step,
        time,
        pbc,
        coords,
    })
}

/// Encode a whole trajectory at `precision`.
///
/// ```
/// use ada_mdformats::{read_xtc, write_xtc, Frame, Trajectory};
///
/// let coords: Vec<[f32; 3]> = (0..100).map(|i| [i as f32 * 0.1, 0.0, 0.0]).collect();
/// let traj = Trajectory::from_frames(vec![Frame::from_coords(coords)]);
/// let bytes = write_xtc(&traj, 1000.0).unwrap();
/// assert!(bytes.len() < traj.nbytes()); // compressed
///
/// let back = read_xtc(&bytes).unwrap();
/// // Lossy to the 0.001 nm quantization lattice, no further.
/// for (a, b) in traj.frames[0].coords.iter().zip(&back.frames[0].coords) {
///     assert!((a[0] - b[0]).abs() <= 0.0005 + 1e-6);
/// }
/// ```
pub fn write_xtc(traj: &Trajectory, precision: f32) -> Result<Vec<u8>, XtcError> {
    let mut w = XtcWriter::new(precision);
    for f in &traj.frames {
        w.write_frame(f)?;
    }
    Ok(w.into_bytes())
}

/// Decode a whole XTC byte stream.
pub fn read_xtc(data: &[u8]) -> Result<Trajectory, XtcError> {
    let mut r = XtcReader::new(data);
    let mut frames = Vec::new();
    while let Some(f) = r.next_frame()? {
        frames.push(f);
    }
    Ok(Trajectory::from_frames(frames))
}

/// Scan frame boundaries without decompressing coordinate payloads.
///
/// This walks headers only: for compressed frames it reads the payload byte
/// count and skips it, which is how a middleware can locate and size frames
/// cheaply before deciding what to decompress.
pub fn index_frames(data: &[u8]) -> Result<Vec<FrameSpan>, XtcError> {
    let mut spans = Vec::new();
    let mut dec = XdrDecoder::new(data);
    while !dec.is_at_end() {
        let offset = dec.position();
        let magic = dec.get_i32()?;
        if magic != XTC_MAGIC {
            return Err(XtcError::BadMagic(magic));
        }
        let natoms = dec.get_i32()?;
        if natoms < 0 {
            return Err(XtcError::BadAtomCount(natoms));
        }
        let step = dec.get_i32()?;
        let time = dec.get_f32()?;
        for _ in 0..9 {
            dec.get_f32()?;
        }
        // xdr3dfcoord body.
        let size = dec.get_i32()?;
        if size != natoms {
            return Err(XtcError::Format(FormatError::Corrupt(format!(
                "frame at {}: natoms {} != coord size {}",
                offset, natoms, size
            ))));
        }
        if size as usize <= PLAIN_FLOAT_THRESHOLD {
            for _ in 0..size * 3 {
                dec.get_f32()?;
            }
        } else {
            dec.get_f32()?; // precision
            for _ in 0..7 {
                dec.get_i32()?; // minint[3], maxint[3], smallidx
            }
            let nbytes = dec.get_i32()?;
            if nbytes < 0 {
                return Err(XtcError::Format(FormatError::Corrupt(
                    "negative payload length".into(),
                )));
            }
            dec.get_opaque(nbytes as usize)?;
        }
        spans.push(FrameSpan {
            offset,
            len: dec.position() - offset,
            natoms: natoms as usize,
            step,
            time,
        });
    }
    Ok(spans)
}

/// Random-access XTC reader: one cheap header scan up front, then any
/// frame decodes independently — the access pattern of a VMD user
/// scrubbing the timeline (§2.1) without holding the whole trajectory.
#[derive(Debug)]
pub struct XtcIndexedReader<'a> {
    data: &'a [u8],
    spans: Vec<FrameSpan>,
}

impl<'a> XtcIndexedReader<'a> {
    /// Build the frame index (headers only; no coordinate decoding).
    pub fn new(data: &'a [u8]) -> Result<XtcIndexedReader<'a>, XtcError> {
        Ok(XtcIndexedReader {
            data,
            spans: index_frames(data)?,
        })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the file holds no frames.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Frame metadata without decoding.
    pub fn span(&self, i: usize) -> Option<&FrameSpan> {
        self.spans.get(i)
    }

    /// Decode exactly frame `i`.
    pub fn frame(&self, i: usize) -> Result<Frame, XtcError> {
        let span = self.spans.get(i).ok_or_else(|| {
            XtcError::Format(FormatError::Corrupt(format!(
                "frame {} out of range ({} frames)",
                i,
                self.spans.len()
            )))
        })?;
        let mut dec = XdrDecoder::new(&self.data[span.offset..span.offset + span.len]);
        read_frame(&mut dec)
    }
}

/// Decode all frames of an XTC stream in parallel over `nthreads` crossbeam
/// scoped threads. Equivalent to [`read_xtc`] but with the per-frame
/// decompression fanned out after a cheap sequential [`index_frames`] scan.
pub fn decode_frames_parallel(data: &[u8], nthreads: usize) -> Result<Trajectory, XtcError> {
    let spans = index_frames(data)?;
    if spans.is_empty() {
        return Ok(Trajectory::new());
    }
    let nthreads = nthreads.max(1).min(spans.len());
    let mut slots: Vec<Option<Result<Frame, XtcError>>> = Vec::new();
    slots.resize_with(spans.len(), || None);
    let chunk = spans.len().div_ceil(nthreads);

    crossbeam::thread::scope(|scope| {
        for (spans_chunk, slots_chunk) in spans.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (span, slot) in spans_chunk.iter().zip(slots_chunk.iter_mut()) {
                    let bytes = &data[span.offset..span.offset + span.len];
                    let mut dec = XdrDecoder::new(bytes);
                    *slot = Some(read_frame(&mut dec));
                }
            });
        }
    })
    // ada-lint: allow(no-panic-in-lib) scope errs only if a worker panicked; workers run panic-free span decodes over pre-validated offsets
    .expect("decode worker panicked");

    let mut frames = Vec::with_capacity(spans.len());
    for slot in slots {
        // ada-lint: allow(no-panic-in-lib) every slot is filled above: chunks(chunk) and chunks_mut(chunk) zip one-to-one over identical lengths
        frames.push(slot.expect("slot not filled")?);
    }
    Ok(Trajectory::from_frames(frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_traj(nframes: usize, natoms: usize) -> Trajectory {
        let frames = (0..nframes)
            .map(|f| {
                let coords = (0..natoms)
                    .map(|a| {
                        [
                            (a % 17) as f32 * 0.3 + f as f32 * 0.001,
                            ((a / 17) % 13) as f32 * 0.3,
                            (a / 221) as f32 * 0.3 + (f as f32 * 0.27).sin() * 0.05,
                        ]
                    })
                    .collect();
                Frame {
                    step: (f * 100) as i32,
                    time: f as f32 * 2.0,
                    pbc: PbcBox::rectangular(8.0, 8.0, 8.0),
                    coords,
                }
            })
            .collect();
        Trajectory::from_frames(frames)
    }

    fn assert_traj_close(a: &Trajectory, b: &Trajectory, tol: f32) {
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.step, fb.step);
            assert_eq!(fa.time, fb.time);
            assert_eq!(fa.pbc, fb.pbc);
            assert_eq!(fa.coords.len(), fb.coords.len());
            for (ca, cb) in fa.coords.iter().zip(&fb.coords) {
                for d in 0..3 {
                    assert!((ca[d] - cb[d]).abs() <= tol);
                }
            }
        }
    }

    #[test]
    fn multi_frame_roundtrip() {
        let traj = test_traj(5, 300);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let back = read_xtc(&bytes).unwrap();
        assert_traj_close(&traj, &back, 0.5 / DEFAULT_PRECISION + 1e-6);
    }

    #[test]
    fn header_fields_preserved() {
        let traj = test_traj(3, 50);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let back = read_xtc(&bytes).unwrap();
        assert_eq!(back.frames[2].step, 200);
        assert_eq!(back.frames[2].time, 4.0);
        assert_eq!(back.frames[0].pbc, PbcBox::rectangular(8.0, 8.0, 8.0));
    }

    #[test]
    fn index_matches_frames() {
        let traj = test_traj(7, 120);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let spans = index_frames(&bytes).unwrap();
        assert_eq!(spans.len(), 7);
        assert_eq!(spans[0].offset, 0);
        for w in spans.windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
        assert_eq!(
            spans.last().unwrap().offset + spans.last().unwrap().len,
            bytes.len()
        );
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.natoms, 120);
            assert_eq!(s.step, (i * 100) as i32);
        }
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let traj = test_traj(16, 200);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let seq = read_xtc(&bytes).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = decode_frames_parallel(&bytes, threads).unwrap();
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn indexed_reader_random_access() {
        let traj = test_traj(9, 150);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let reader = XtcIndexedReader::new(&bytes).unwrap();
        assert_eq!(reader.len(), 9);
        let seq = read_xtc(&bytes).unwrap();
        // Access out of order; each frame equals the sequential decode.
        for i in [7usize, 0, 4, 8, 4, 2] {
            assert_eq!(reader.frame(i).unwrap(), seq.frames[i]);
        }
        assert!(reader.frame(9).is_err());
        assert_eq!(reader.span(3).unwrap().step, 300);
    }

    #[test]
    fn atom_count_mismatch_across_frames_rejected() {
        let mut w = XtcWriter::new(DEFAULT_PRECISION);
        w.write_frame(&Frame::from_coords(vec![[0.0; 3]; 20]))
            .unwrap();
        let err = w.write_frame(&Frame::from_coords(vec![[0.0; 3]; 21]));
        assert!(err.is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let traj = test_traj(1, 30);
        let mut bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        bytes[3] = 0x07; // clobber magic
        assert!(matches!(read_xtc(&bytes), Err(XtcError::BadMagic(_))));
    }

    #[test]
    fn truncated_file_detected() {
        let traj = test_traj(2, 40);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let cut = &bytes[..bytes.len() - 5];
        assert!(read_xtc(cut).is_err());
        assert!(index_frames(cut).is_err());
    }

    #[test]
    fn empty_stream_is_empty_trajectory() {
        assert!(read_xtc(&[]).unwrap().is_empty());
        assert!(index_frames(&[]).unwrap().is_empty());
        assert_eq!(decode_frames_parallel(&[], 4).unwrap().len(), 0);
    }

    #[test]
    fn small_frames_plain_float_path_in_file() {
        let traj = Trajectory::from_frames(vec![Frame::from_coords(vec![
            [1.0, 2.0, 3.0],
            [-1.0, -2.0, -3.0],
        ])]);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let back = read_xtc(&bytes).unwrap();
        assert_eq!(back.frames[0].coords, traj.frames[0].coords); // lossless
        let spans = index_frames(&bytes).unwrap();
        assert_eq!(spans[0].len, bytes.len());
    }

    #[test]
    fn compression_ratio_on_lattice_data() {
        let traj = test_traj(4, 5000);
        let bytes = write_xtc(&traj, DEFAULT_PRECISION).unwrap();
        let raw = 4 * 5000 * 12;
        assert!(
            bytes.len() * 2 < raw,
            "compressed {} vs raw {}",
            bytes.len(),
            raw
        );
    }
}
