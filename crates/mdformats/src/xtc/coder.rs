//! The `xdr3dfcoord` coordinate compression algorithm.
//!
//! This is a faithful from-scratch port of the coder used by GROMACS'
//! `.xtc` trajectories (libxdrfile's `xdr3dfcoord`):
//!
//! 1. every coordinate is quantized to an integer lattice at a caller-chosen
//!    `precision` (lattice points per nanometre, default 1000);
//! 2. the per-frame integer bounding box (`minint..=maxint`) sets the bit
//!    width for "absolute" coordinates via the mixed-radix
//!    [`size_of_ints`](super::bits::size_of_ints) packing;
//! 3. consecutive atoms that sit close together (water molecules, bonded
//!    atoms) are encoded as *runs* of small displacement triples against a
//!    sliding "small number" scale picked from the `MAGICINTS` table, with
//!    one flag bit per group and a 5-bit run descriptor that also carries
//!    scale up/down adjustments;
//! 4. a first-with-second atom swap heuristic improves water compression.
//!
//! The decompressor is the exact inverse. Compression is lossy (quantized to
//! `1/precision` nm) but decompress∘compress is idempotent on the quantized
//! lattice — properties the test suite checks.

use super::bits::{size_of_int, size_of_ints, BitReader, BitWriter};
use crate::xdr::{XdrDecoder, XdrEncoder};
use crate::FormatError;

/// Errors from the XTC codec.
#[derive(Debug)]
pub enum XtcError {
    /// Underlying XDR / framing problem.
    Format(FormatError),
    /// A quantized coordinate overflowed the 32-bit lattice
    /// (|coord × precision| too large).
    CoordinateOverflow,
    /// Frame magic was not 1995.
    BadMagic(i32),
    /// Precision must be finite and positive.
    BadPrecision(f32),
    /// Negative or absurd atom count in the stream.
    BadAtomCount(i32),
    /// Compressed payload ended prematurely.
    TruncatedPayload,
}

impl From<FormatError> for XtcError {
    fn from(e: FormatError) -> XtcError {
        XtcError::Format(e)
    }
}

impl std::fmt::Display for XtcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtcError::Format(e) => write!(f, "xtc: {}", e),
            XtcError::CoordinateOverflow => write!(f, "xtc: quantized coordinate overflow"),
            XtcError::BadMagic(m) => write!(f, "xtc: bad magic {} (expected 1995)", m),
            XtcError::BadPrecision(p) => write!(f, "xtc: bad precision {}", p),
            XtcError::BadAtomCount(n) => write!(f, "xtc: bad atom count {}", n),
            XtcError::TruncatedPayload => write!(f, "xtc: truncated compressed payload"),
        }
    }
}

impl std::error::Error for XtcError {}

/// The magic bit-scale table: `MAGICINTS[i]³ ≤ 2^i`, so a triple of values
/// each below `MAGICINTS[i]` packs into exactly `i` bits.
pub const MAGICINTS: [i32; 73] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 8, 10, 12, 16, 20, 25, 32, 40, 50, 64, 80, 101, 128, 161, 203, 256,
    322, 406, 512, 645, 812, 1024, 1290, 1625, 2048, 2580, 3250, 4096, 5060, 6501, 8192, 10321,
    13003, 16384, 20642, 26007, 32768, 41285, 52015, 65536, 82570, 104031, 131072, 165140, 208063,
    262144, 330280, 416127, 524287, 660561, 832255, 1048576, 1321122, 1664510, 2097152, 2642245,
    3329021, 4194304, 5284491, 6658042, 8388607, 10568983, 13316085, 16777216,
];

const FIRSTIDX: usize = 9;
const LASTIDX: usize = MAGICINTS.len() - 1;
/// Largest representable |quantized coordinate| (INT_MAX - 2, as in C).
const MAX_ABS: f32 = (i32::MAX - 2) as f32;
/// Frames with at most this many atoms are stored as plain floats.
pub const PLAIN_FLOAT_THRESHOLD: usize = 9;

/// Encode coordinates at `precision` into `enc` (the body that follows the
/// XTC frame header). Layout: natoms, [precision, minint×3, maxint×3,
/// smallidx, nbytes, payload] or plain floats for ≤ 9 atoms.
pub fn encode_3dfcoord(
    enc: &mut XdrEncoder,
    coords: &[[f32; 3]],
    precision: f32,
) -> Result<(), XtcError> {
    let size = coords.len();
    enc.put_i32(size as i32);
    if size <= PLAIN_FLOAT_THRESHOLD {
        for c in coords {
            enc.put_f32_vector(c);
        }
        return Ok(());
    }
    if !(precision.is_finite() && precision > 0.0) {
        return Err(XtcError::BadPrecision(precision));
    }
    enc.put_f32(precision);

    // Pass 1: quantize, track bounds and the minimum consecutive-atom
    // displacement that seeds the small-number scale.
    let mut ints: Vec<[i32; 3]> = Vec::with_capacity(size);
    let mut minint = [i32::MAX; 3];
    let mut maxint = [i32::MIN; 3];
    let mut mindiff: i64 = i64::MAX;
    let mut old = [0i64; 3];
    for (ai, c) in coords.iter().enumerate() {
        let mut q = [0i32; 3];
        for d in 0..3 {
            let lf = if c[d] >= 0.0 {
                c[d] * precision + 0.5
            } else {
                c[d] * precision - 0.5
            };
            // NaN fails this comparison too (hence not `>` on the negation).
            if lf.is_nan() || lf.abs() > MAX_ABS {
                return Err(XtcError::CoordinateOverflow);
            }
            let v = lf as i32; // trunc: round-half-away-from-zero overall
            q[d] = v;
            minint[d] = minint[d].min(v);
            maxint[d] = maxint[d].max(v);
        }
        if ai >= 1 {
            let diff = (old[0] - q[0] as i64).abs()
                + (old[1] - q[1] as i64).abs()
                + (old[2] - q[2] as i64).abs();
            mindiff = mindiff.min(diff);
        }
        old = [q[0] as i64, q[1] as i64, q[2] as i64];
        ints.push(q);
    }

    for d in 0..3 {
        if (maxint[d] as f32 - minint[d] as f32) >= MAX_ABS {
            return Err(XtcError::CoordinateOverflow);
        }
    }
    for &m in &minint {
        enc.put_i32(m);
    }
    for &m in &maxint {
        enc.put_i32(m);
    }

    let mut sizeint = [0u32; 3];
    for d in 0..3 {
        sizeint[d] = (maxint[d] as i64 - minint[d] as i64 + 1) as u32;
    }
    let (bitsize, bitsizeint) = if (sizeint[0] | sizeint[1] | sizeint[2]) > 0xff_ffff {
        (
            0u32,
            [
                size_of_int(sizeint[0]),
                size_of_int(sizeint[1]),
                size_of_int(sizeint[2]),
            ],
        )
    } else {
        (size_of_ints(&sizeint), [0u32; 3])
    };

    let mut smallidx = FIRSTIDX;
    while smallidx < LASTIDX && (MAGICINTS[smallidx] as i64) < mindiff {
        smallidx += 1;
    }
    enc.put_i32(smallidx as i32);

    let maxidx = LASTIDX.min(smallidx + 8);
    let minidx = maxidx - 8;
    let mut smaller = MAGICINTS[FIRSTIDX.max(smallidx - 1)] / 2;
    let mut smallnum = MAGICINTS[smallidx] / 2;
    let mut sizesmall = [MAGICINTS[smallidx] as u32; 3];
    let larger = (MAGICINTS[maxidx] / 2) as i64;

    let mut w = BitWriter::new();
    let mut prevcoord = [0i32; 3];
    let mut prevrun: i32 = -1;
    let mut tmpcoord = [0u32; 30];
    let mut i = 0usize;
    while i < size {
        let mut is_small = false;
        let mut is_smaller: i32 = if smallidx < maxidx
            && i >= 1
            && (ints[i][0] as i64 - prevcoord[0] as i64).abs() < larger
            && (ints[i][1] as i64 - prevcoord[1] as i64).abs() < larger
            && (ints[i][2] as i64 - prevcoord[2] as i64).abs() < larger
        {
            1
        } else if smallidx > minidx {
            -1
        } else {
            0
        };
        if i + 1 < size
            && (ints[i][0] as i64 - ints[i + 1][0] as i64).abs() < smallnum as i64
            && (ints[i][1] as i64 - ints[i + 1][1] as i64).abs() < smallnum as i64
            && (ints[i][2] as i64 - ints[i + 1][2] as i64).abs() < smallnum as i64
        {
            // Swap first with second atom: waters compress better with the
            // oxygen in the middle of the run.
            ints.swap(i, i + 1);
            is_small = true;
        }
        let abs0 = (ints[i][0].wrapping_sub(minint[0])) as u32;
        let abs1 = (ints[i][1].wrapping_sub(minint[1])) as u32;
        let abs2 = (ints[i][2].wrapping_sub(minint[2])) as u32;
        if bitsize == 0 {
            w.send_bits(bitsizeint[0], abs0);
            w.send_bits(bitsizeint[1], abs1);
            w.send_bits(bitsizeint[2], abs2);
        } else {
            w.send_ints(bitsize, &sizeint, &[abs0, abs1, abs2]);
        }
        prevcoord = ints[i];
        i += 1;

        let mut run: usize = 0;
        if !is_small && is_smaller == -1 {
            is_smaller = 0;
        }
        while is_small && run < 8 * 3 {
            if is_smaller == -1 {
                let dx = ints[i][0] as i64 - prevcoord[0] as i64;
                let dy = ints[i][1] as i64 - prevcoord[1] as i64;
                let dz = ints[i][2] as i64 - prevcoord[2] as i64;
                if dx * dx + dy * dy + dz * dz >= (smaller as i64) * (smaller as i64) {
                    is_smaller = 0;
                }
            }
            for d in 0..3 {
                tmpcoord[run] = (ints[i][d] as i64 - prevcoord[d] as i64 + smallnum as i64) as u32;
                run += 1;
            }
            prevcoord = ints[i];
            i += 1;
            is_small = i < size
                && (ints[i][0] as i64 - prevcoord[0] as i64).abs() < smallnum as i64
                && (ints[i][1] as i64 - prevcoord[1] as i64).abs() < smallnum as i64
                && (ints[i][2] as i64 - prevcoord[2] as i64).abs() < smallnum as i64;
        }
        if run as i32 != prevrun || is_smaller != 0 {
            prevrun = run as i32;
            w.send_bits(1, 1);
            w.send_bits(5, (run as i32 + is_smaller + 1) as u32);
        } else {
            w.send_bits(1, 0);
        }
        for k in (0..run).step_by(3) {
            w.send_ints(
                smallidx as u32,
                &sizesmall,
                &[tmpcoord[k], tmpcoord[k + 1], tmpcoord[k + 2]],
            );
        }
        if is_smaller != 0 {
            smallidx = (smallidx as i32 + is_smaller) as usize;
            if is_smaller < 0 {
                smallnum = smaller;
                smaller = MAGICINTS[smallidx - 1] / 2;
            } else {
                smaller = smallnum;
                smallnum = MAGICINTS[smallidx] / 2;
            }
            sizesmall = [MAGICINTS[smallidx] as u32; 3];
        }
    }

    let payload = w.finish();
    enc.put_i32(payload.len() as i32);
    enc.put_opaque(&payload);
    Ok(())
}

/// Decode a coordinate block produced by [`encode_3dfcoord`]. Returns the
/// coordinates and the precision recorded in the stream (`-1.0` for the
/// plain-float small-frame path, matching the C API).
pub fn decode_3dfcoord(dec: &mut XdrDecoder) -> Result<(Vec<[f32; 3]>, f32), XtcError> {
    let lsize = dec.get_i32()?;
    if lsize < 0 {
        return Err(XtcError::BadAtomCount(lsize));
    }
    let size = lsize as usize;
    if size <= PLAIN_FLOAT_THRESHOLD {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            out.push([dec.get_f32()?, dec.get_f32()?, dec.get_f32()?]);
        }
        return Ok((out, -1.0));
    }
    let precision = dec.get_f32()?;
    if !(precision.is_finite() && precision > 0.0) {
        return Err(XtcError::BadPrecision(precision));
    }
    let inv_precision = 1.0 / precision;

    let mut minint = [0i32; 3];
    let mut maxint = [0i32; 3];
    for m in minint.iter_mut() {
        *m = dec.get_i32()?;
    }
    for m in maxint.iter_mut() {
        *m = dec.get_i32()?;
    }
    let mut sizeint = [0u32; 3];
    for d in 0..3 {
        let span = maxint[d] as i64 - minint[d] as i64 + 1;
        if span <= 0 || span > u32::MAX as i64 {
            return Err(XtcError::Format(FormatError::Corrupt(format!(
                "bad coordinate bounds on axis {}",
                d
            ))));
        }
        sizeint[d] = span as u32;
    }
    let (bitsize, bitsizeint) = if (sizeint[0] | sizeint[1] | sizeint[2]) > 0xff_ffff {
        (
            0u32,
            [
                size_of_int(sizeint[0]),
                size_of_int(sizeint[1]),
                size_of_int(sizeint[2]),
            ],
        )
    } else {
        (size_of_ints(&sizeint), [0u32; 3])
    };

    let smallidx_raw = dec.get_i32()?;
    if smallidx_raw < FIRSTIDX as i32 || smallidx_raw > LASTIDX as i32 {
        return Err(XtcError::Format(FormatError::Corrupt(format!(
            "smallidx {} out of range",
            smallidx_raw
        ))));
    }
    let mut smallidx = smallidx_raw as usize;
    let mut smaller = MAGICINTS[FIRSTIDX.max(smallidx - 1)] / 2;
    let mut smallnum = MAGICINTS[smallidx] / 2;
    let mut sizesmall = [MAGICINTS[smallidx] as u32; 3];

    let nbytes = dec.get_i32()?;
    if nbytes < 0 {
        return Err(XtcError::Format(FormatError::Corrupt(
            "negative payload length".into(),
        )));
    }
    let payload = dec.get_opaque(nbytes as usize)?;
    let mut r = BitReader::new(payload);

    // Bound the up-front reservation so a corrupt atom count cannot force a
    // multi-gigabyte allocation before the payload proves itself.
    let mut out: Vec<[f32; 3]> = Vec::with_capacity(size.min(1 << 22));
    let mut run: u32 = 0;
    let mut i = 0usize;
    while i < size {
        let mut this = [0i32; 3];
        if bitsize == 0 {
            for d in 0..3 {
                this[d] = r
                    .receive_bits(bitsizeint[d])
                    .map_err(|_| XtcError::TruncatedPayload)? as i32;
            }
        } else {
            let nums = r
                .receive_ints(bitsize, &sizeint)
                .map_err(|_| XtcError::TruncatedPayload)?;
            this = [nums[0] as i32, nums[1] as i32, nums[2] as i32];
        }
        i += 1;
        for d in 0..3 {
            this[d] = this[d].wrapping_add(minint[d]);
        }
        let mut prevcoord = [this[0], this[1], this[2]];

        let flag = r.receive_bits(1).map_err(|_| XtcError::TruncatedPayload)?;
        let mut is_smaller: i32 = 0;
        if flag == 1 {
            let v = r.receive_bits(5).map_err(|_| XtcError::TruncatedPayload)?;
            is_smaller = (v % 3) as i32;
            run = v - is_smaller as u32;
            is_smaller -= 1;
        }
        if i + run as usize / 3 > size {
            // A valid encoder never starts a run that passes the end of the
            // frame (`is_small` requires another atom to exist).
            return Err(XtcError::Format(FormatError::Corrupt(format!(
                "run of {} exceeds frame size {}",
                run, size
            ))));
        }
        if run > 0 {
            for k in (0..run).step_by(3) {
                let nums = r
                    .receive_ints(smallidx as u32, &sizesmall)
                    .map_err(|_| XtcError::TruncatedPayload)?;
                i += 1;
                let mut this = [0i32; 3];
                for d in 0..3 {
                    this[d] = (nums[d] as i64 + prevcoord[d] as i64 - smallnum as i64) as i32;
                }
                if k == 0 {
                    // Undo the water-swap: emit the (stream-)second atom
                    // first.
                    std::mem::swap(&mut this[0], &mut prevcoord[0]);
                    std::mem::swap(&mut this[1], &mut prevcoord[1]);
                    std::mem::swap(&mut this[2], &mut prevcoord[2]);
                    out.push([
                        prevcoord[0] as f32 * inv_precision,
                        prevcoord[1] as f32 * inv_precision,
                        prevcoord[2] as f32 * inv_precision,
                    ]);
                } else {
                    prevcoord = this;
                }
                out.push([
                    this[0] as f32 * inv_precision,
                    this[1] as f32 * inv_precision,
                    this[2] as f32 * inv_precision,
                ]);
            }
        } else {
            out.push([
                this[0] as f32 * inv_precision,
                this[1] as f32 * inv_precision,
                this[2] as f32 * inv_precision,
            ]);
        }
        smallidx = (smallidx as i32 + is_smaller) as usize;
        if is_smaller < 0 {
            smallnum = smaller;
            smaller = if smallidx > FIRSTIDX {
                MAGICINTS[smallidx - 1] / 2
            } else {
                0
            };
        } else if is_smaller > 0 {
            smaller = smallnum;
            smallnum = MAGICINTS[smallidx] / 2;
        }
        if smallidx > LASTIDX {
            return Err(XtcError::Format(FormatError::Corrupt(
                "smallidx drifted out of range".into(),
            )));
        }
        sizesmall = [MAGICINTS[smallidx] as u32; 3];
        if sizesmall[0] == 0 {
            return Err(XtcError::Format(FormatError::Corrupt(
                "small size underflow".into(),
            )));
        }
    }
    out.truncate(size);
    Ok((out, precision))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(coords: &[[f32; 3]], precision: f32) -> Vec<[f32; 3]> {
        let mut enc = XdrEncoder::new();
        encode_3dfcoord(&mut enc, coords, precision).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = XdrDecoder::new(&bytes);
        let (out, p) = decode_3dfcoord(&mut dec).unwrap();
        if coords.len() > PLAIN_FLOAT_THRESHOLD {
            assert_eq!(p, precision);
        }
        assert!(dec.is_at_end(), "trailing bytes after decode");
        out
    }

    fn assert_close(a: &[[f32; 3]], b: &[[f32; 3]], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            for d in 0..3 {
                assert!(
                    (x[d] - y[d]).abs() <= tol,
                    "coordinate mismatch: {} vs {} (tol {})",
                    x[d],
                    y[d],
                    tol
                );
            }
        }
    }

    #[test]
    fn small_frame_plain_floats() {
        let coords = vec![[1.5, -2.25, 3.75], [0.0, 0.5, -0.5]];
        let out = roundtrip(&coords, 1000.0);
        // Plain float path is lossless.
        assert_eq!(out, coords);
    }

    #[test]
    fn ten_atoms_compressed_path() {
        let coords: Vec<[f32; 3]> = (0..10)
            .map(|i| [i as f32 * 0.1, i as f32 * 0.2, 1.0 - i as f32 * 0.05])
            .collect();
        let out = roundtrip(&coords, 1000.0);
        assert_close(&coords, &out, 0.5 / 1000.0 + 1e-6);
    }

    #[test]
    fn water_like_cluster_uses_runs() {
        // Many clusters of three nearby atoms: exercises the swap heuristic
        // and run coding.
        let mut coords = Vec::new();
        for m in 0..50 {
            let base = [m as f32 * 0.3, (m % 7) as f32 * 0.25, (m % 5) as f32 * 0.4];
            coords.push(base);
            coords.push([base[0] + 0.0957, base[1], base[2]]);
            coords.push([base[0] - 0.024, base[1] + 0.0927, base[2]]);
        }
        let out = roundtrip(&coords, 1000.0);
        assert_close(&coords, &out, 0.5 / 1000.0 + 1e-6);
    }

    #[test]
    fn negative_coordinates() {
        let coords: Vec<[f32; 3]> = (0..40)
            .map(|i| {
                [
                    -5.0 + i as f32 * 0.13,
                    -20.0 + (i * i % 17) as f32 * 0.07,
                    -0.001 * i as f32,
                ]
            })
            .collect();
        let out = roundtrip(&coords, 1000.0);
        assert_close(&coords, &out, 0.5 / 1000.0 + 1e-6);
    }

    #[test]
    fn idempotent_on_quantized_lattice() {
        // decompress(compress(x)) == decompress(compress(decompress(compress(x))))
        let coords: Vec<[f32; 3]> = (0..100)
            .map(|i| {
                [
                    (i as f32 * 0.731).sin() * 3.0,
                    (i as f32 * 0.377).cos() * 3.0,
                    i as f32 * 0.011,
                ]
            })
            .collect();
        let once = roundtrip(&coords, 1000.0);
        let twice = roundtrip(&once, 1000.0);
        assert_eq!(once, twice);
    }

    #[test]
    fn wide_dynamic_range_per_component_path() {
        // Spread > 0xffffff lattice units on one axis forces bitsize == 0
        // (independent per-component widths).
        let mut coords: Vec<[f32; 3]> = (0..20)
            .map(|i| [i as f32 * 0.1, i as f32 * 0.01, i as f32 * 0.02])
            .collect();
        coords.push([20000.0, 0.0, 0.0]); // 2e7 lattice units at prec 1000
        let out = roundtrip(&coords, 1000.0);
        assert_close(&coords, &out, 0.5 / 1000.0 + 2e-3); // f32 rel. error at 2e7
    }

    #[test]
    fn precision_variants() {
        let coords: Vec<[f32; 3]> = (0..30)
            .map(|i| {
                [
                    i as f32 * 0.05,
                    1.0 / (1.0 + i as f32),
                    -2.5 + i as f32 * 0.2,
                ]
            })
            .collect();
        for &prec in &[10.0f32, 100.0, 1000.0, 100000.0] {
            let out = roundtrip(&coords, prec);
            assert_close(&coords, &out, 0.5 / prec + 1e-5);
        }
    }

    #[test]
    fn coordinate_overflow_rejected() {
        let mut coords = vec![[0.0f32; 3]; 12];
        coords[5] = [3.0e6, 0.0, 0.0]; // 3e9 lattice units > i32::MAX
        let mut enc = XdrEncoder::new();
        assert!(matches!(
            encode_3dfcoord(&mut enc, &coords, 1000.0),
            Err(XtcError::CoordinateOverflow)
        ));
    }

    #[test]
    fn bad_precision_rejected() {
        let coords = vec![[0.0f32; 3]; 12];
        let mut enc = XdrEncoder::new();
        assert!(matches!(
            encode_3dfcoord(&mut enc, &coords, 0.0),
            Err(XtcError::BadPrecision(_))
        ));
        let mut enc2 = XdrEncoder::new();
        assert!(matches!(
            encode_3dfcoord(&mut enc2, &coords, f32::NAN),
            Err(XtcError::BadPrecision(_))
        ));
    }

    #[test]
    fn truncated_payload_detected() {
        let coords: Vec<[f32; 3]> = (0..30).map(|i| [i as f32 * 0.1; 3]).collect();
        let mut enc = XdrEncoder::new();
        encode_3dfcoord(&mut enc, &coords, 1000.0).unwrap();
        let bytes = enc.into_bytes();
        // Chop the tail of the opaque payload.
        let cut = &bytes[..bytes.len() - 8];
        let mut dec = XdrDecoder::new(cut);
        assert!(decode_3dfcoord(&mut dec).is_err());
    }

    #[test]
    fn corrupt_bounds_detected() {
        let coords: Vec<[f32; 3]> = (0..12).map(|i| [i as f32 * 0.1; 3]).collect();
        let mut enc = XdrEncoder::new();
        encode_3dfcoord(&mut enc, &coords, 1000.0).unwrap();
        let mut bytes = enc.into_bytes();
        // Swap minint[0] (offset 8) and maxint[0] (offset 20) so the span
        // goes negative.
        for k in 0..4 {
            bytes.swap(8 + k, 20 + k);
        }
        let mut dec = XdrDecoder::new(&bytes);
        assert!(decode_3dfcoord(&mut dec).is_err());
    }

    #[test]
    fn empty_frame() {
        let out = roundtrip(&[], 1000.0);
        assert!(out.is_empty());
    }

    #[test]
    fn compression_beats_plain_floats_on_md_like_data() {
        // An ordered, water-heavy layout should compress well below 12
        // bytes/atom.
        let mut coords = Vec::new();
        for i in 0..3000 {
            let x = (i % 30) as f32 * 0.31;
            let y = ((i / 30) % 10) as f32 * 0.31;
            let z = (i / 300) as f32 * 0.31;
            coords.push([x, y, z]);
        }
        let mut enc = XdrEncoder::new();
        encode_3dfcoord(&mut enc, &coords, 1000.0).unwrap();
        let compressed = enc.len();
        let plain = coords.len() * 12;
        assert!(
            compressed * 2 < plain,
            "expected at least 2x compression, got {} vs {}",
            compressed,
            plain
        );
    }
}
