#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-mdformats — molecular file formats, from scratch
//!
//! The ADA paper's data plane is built around two file types (§2.1):
//!
//! * **`.xtc`** — GROMACS' compressed trajectory format. Frames are XDR
//!   encoded; coordinates go through the `xdr3dfcoord` algorithm (integer
//!   quantization at a given precision, mixed-radix "sizeofints" packing,
//!   and a small-displacement run-length coder). Decompression of this
//!   format is exactly the repeated CPU burden the paper measures (Fig. 8).
//!   Implemented from scratch in [`xtc`].
//! * **`.pdb`** — the Protein Data Bank structure format that *guides* the
//!   categorizer ("One .xtc file is guided by a corresponding .pdb file").
//!   Implemented in [`pdb`].
//!
//! Additionally [`xtcf`] defines **XTCF**, the uncompressed flat frame
//! format ADA uses for the *decompressed* data subsets it stores on its
//! backends (the paper stores decompressed protein/MISC trajectories; the
//! on-disk encoding is unspecified, so we define a simple exact one).

pub mod gro;
pub mod pdb;
pub mod structure;
pub mod traj;
pub mod trr;
pub mod xdr;
pub mod xtc;
pub mod xtcf;

pub use gro::{parse_gro, write_gro, GroError};
pub use pdb::{parse_pdb, write_pdb, PdbError};
pub use structure::{detect_structure, parse_structure, StructureFormat};
pub use traj::{Frame, Trajectory};
pub use trr::{read_trr, write_trr};
pub use xtc::{read_xtc, write_xtc, XtcError, XtcIndexedReader, XtcReader, XtcWriter};
pub use xtcf::{read_xtcf, write_xtcf, XtcfReader, XtcfWriter};

/// Errors shared by the format codecs.
#[derive(Debug)]
pub enum FormatError {
    /// Input ended before a complete record was read.
    UnexpectedEof,
    /// Structural corruption (bad magic, impossible counts, ...).
    Corrupt(String),
    /// A value fell outside what the format can represent.
    OutOfRange(String),
    /// Corruption localized to one chunk of a chunked (XTCF v2) file —
    /// checksum mismatch, bad directory entry, or broken records.
    ChunkCorrupt {
        /// Zero-based chunk index within the file.
        chunk: usize,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::UnexpectedEof => write!(f, "unexpected end of input"),
            FormatError::Corrupt(m) => write!(f, "corrupt data: {}", m),
            FormatError::OutOfRange(m) => write!(f, "value out of range: {}", m),
            FormatError::ChunkCorrupt { chunk, detail } => {
                write!(f, "corrupt chunk {}: {}", chunk, detail)
            }
        }
    }
}

impl std::error::Error for FormatError {}
