//! GROMACS `.trr` trajectory files (full-precision, uncompressed).
//!
//! TRR is GROMACS' lossless sibling of XTC: XDR-encoded frames carrying a
//! fixed header and optional box/velocity/force blocks at single or double
//! precision. The paper's `D` scenarios load "a raw XTC file w/o
//! compression"; TRR is the real-world format such raw trajectories ship
//! in, so the reproduction supports it end to end (single precision,
//! coordinates + box, which is what VMD reads).
//!
//! Frame layout (all XDR):
//!
//! ```text
//! i32 magic      == 1993
//! i32 version    == 13 ("GMX_trn_file" tagged string: i32 len, bytes)
//! i32 ir_size, e_size, box_size, vir_size, pres_size, top_size,
//!     sym_size, x_size, v_size, f_size
//! i32 natoms, step, nre
//! f32 t, lambda
//! [box 9×f32 when box_size > 0]
//! [x natoms×3×f32 when x_size > 0]
//! [v, f likewise]
//! ```

use crate::traj::{Frame, Trajectory};
use crate::xdr::{XdrDecoder, XdrEncoder};
use crate::FormatError;
use ada_mdmodel::PbcBox;

/// TRR frame magic.
pub const TRR_MAGIC: i32 = 1993;
/// TRR format version written by GROMACS.
pub const TRR_VERSION: i32 = 13;
const TRR_TAG: &str = "GMX_trn_file";

/// Encode a trajectory as single-precision TRR (coordinates + box).
pub fn write_trr(traj: &Trajectory) -> Result<Vec<u8>, FormatError> {
    let mut enc = XdrEncoder::new();
    let mut natoms: Option<usize> = None;
    for frame in &traj.frames {
        match natoms {
            None => natoms = Some(frame.len()),
            Some(n) if n != frame.len() => {
                return Err(FormatError::Corrupt(format!(
                    "frame atom count {} != file atom count {}",
                    frame.len(),
                    n
                )))
            }
            _ => {}
        }
        enc.put_i32(TRR_MAGIC);
        enc.put_i32(TRR_VERSION);
        // Tagged version string: length (including NUL, as GROMACS does)
        // then opaque bytes.
        enc.put_i32(TRR_TAG.len() as i32 + 1);
        enc.put_i32(TRR_TAG.len() as i32);
        enc.put_opaque(TRR_TAG.as_bytes());
        let box_size = if frame.pbc.is_zero() { 0 } else { 9 * 4 };
        let x_size = frame.len() as i32 * 12;
        for size in [0, 0, box_size, 0, 0, 0, 0, x_size, 0, 0] {
            enc.put_i32(size);
        }
        enc.put_i32(frame.len() as i32);
        enc.put_i32(frame.step);
        enc.put_i32(0); // nre
        enc.put_f32(frame.time);
        enc.put_f32(0.0); // lambda
        if box_size > 0 {
            for row in &frame.pbc.m {
                enc.put_f32_vector(row);
            }
        }
        for c in &frame.coords {
            enc.put_f32_vector(c);
        }
    }
    Ok(enc.into_bytes())
}

/// Decode a TRR byte stream (single precision; velocity/force blocks are
/// skipped).
pub fn read_trr(data: &[u8]) -> Result<Trajectory, FormatError> {
    let mut dec = XdrDecoder::new(data);
    let mut frames = Vec::new();
    while !dec.is_at_end() {
        let magic = dec.get_i32()?;
        if magic != TRR_MAGIC {
            return Err(FormatError::Corrupt(format!(
                "bad TRR magic {} (expected {})",
                magic, TRR_MAGIC
            )));
        }
        let _version = dec.get_i32()?;
        let tag_len_nul = dec.get_i32()?;
        let tag_len = dec.get_i32()?;
        if tag_len < 0 || tag_len + 1 != tag_len_nul {
            return Err(FormatError::Corrupt("bad TRR tag lengths".into()));
        }
        let _tag = dec.get_opaque(tag_len as usize)?;
        let mut sizes = [0i32; 10];
        for s in sizes.iter_mut() {
            *s = dec.get_i32()?;
            if *s < 0 {
                return Err(FormatError::Corrupt("negative block size".into()));
            }
        }
        let [_ir, _e, box_size, vir_size, pres_size, _top, _sym, x_size, v_size, f_size] = sizes;
        let natoms = dec.get_i32()?;
        if natoms < 0 {
            return Err(FormatError::Corrupt("negative atom count".into()));
        }
        let step = dec.get_i32()?;
        let _nre = dec.get_i32()?;
        let time = dec.get_f32()?;
        let _lambda = dec.get_f32()?;

        let mut pbc = PbcBox::zero();
        if box_size > 0 {
            if box_size != 36 {
                return Err(FormatError::Corrupt(
                    "double-precision TRR boxes are not supported".into(),
                ));
            }
            for r in 0..3 {
                for c in 0..3 {
                    pbc.m[r][c] = dec.get_f32()?;
                }
            }
        }
        for skip in [vir_size, pres_size] {
            for _ in 0..skip / 4 {
                dec.get_f32()?;
            }
        }
        let mut coords = Vec::new();
        if x_size > 0 {
            if x_size != natoms * 12 {
                return Err(FormatError::Corrupt(
                    "double-precision TRR coordinates are not supported".into(),
                ));
            }
            coords.reserve(natoms as usize);
            for _ in 0..natoms {
                coords.push([dec.get_f32()?, dec.get_f32()?, dec.get_f32()?]);
            }
        }
        for skip in [v_size, f_size] {
            for _ in 0..skip / 4 {
                dec.get_f32()?;
            }
        }
        frames.push(Frame {
            step,
            time,
            pbc,
            coords,
        });
    }
    Ok(Trajectory::from_frames(frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_frames(
            (0..3)
                .map(|f| Frame {
                    step: f * 50,
                    time: f as f32 * 2.5,
                    pbc: PbcBox::rectangular(4.0, 5.0, 6.0),
                    coords: (0..40)
                        .map(|a| [a as f32 * 0.1, -(f as f32), a as f32 * 0.01])
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn lossless_roundtrip() {
        let t = traj();
        let bytes = write_trr(&t).unwrap();
        let back = read_trr(&bytes).unwrap();
        assert_eq!(t, back); // full precision, bit exact
    }

    #[test]
    fn zero_box_frames() {
        let t = Trajectory::from_frames(vec![Frame::from_coords(vec![[1.0, 2.0, 3.0]; 5])]);
        let bytes = write_trr(&t).unwrap();
        let back = read_trr(&bytes).unwrap();
        assert!(back.frames[0].pbc.is_zero());
        assert_eq!(back.frames[0].coords, t.frames[0].coords);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_trr(&traj()).unwrap();
        bytes[0] ^= 0x55;
        assert!(read_trr(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = write_trr(&traj()).unwrap();
        assert!(read_trr(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn mixed_atom_counts_rejected() {
        let t = Trajectory::from_frames(vec![
            Frame::from_coords(vec![[0.0; 3]; 3]),
            Frame::from_coords(vec![[0.0; 3]; 4]),
        ]);
        assert!(write_trr(&t).is_err());
    }

    #[test]
    fn trr_larger_than_xtc() {
        // TRR stores full floats; XTC should compress the same data.
        let w = crate::xtc::write_xtc(&traj(), 1000.0).unwrap();
        let t = write_trr(&traj()).unwrap();
        assert!(t.len() > w.len(), "trr {} vs xtc {}", t.len(), w.len());
    }

    #[test]
    fn empty_stream() {
        assert!(read_trr(&[]).unwrap().is_empty());
    }
}
