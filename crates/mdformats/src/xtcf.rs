//! XTCF — the uncompressed "XTC-Flat" frame format.
//!
//! ADA stores *decompressed* data subsets on its backends so that reads skip
//! the decompression step entirely (that is the whole point of the paper:
//! "only decompressed active data will be transferred to compute nodes").
//! The paper does not specify the byte layout of those stored subsets, so we
//! define a minimal exact little-endian format:
//!
//! ```text
//! magic   u32      == 0x41444146 ("ADAF")
//! version u32      == 1
//! per frame:
//!   step  i32
//!   time  f32
//!   box   9 × f32
//!   n     u32      atom count
//!   xyz   n × 3 × f32
//! ```
//!
//! Unlike XTC this format is bit-exact (no quantization) and trivially
//! seekable: every frame of a file has the same length.

use crate::traj::{Frame, Trajectory};
use crate::FormatError;
use ada_mdmodel::PbcBox;

/// XTCF magic bytes ("ADAF" as a little-endian u32).
pub const XTCF_MAGIC: u32 = 0x4144_4146;
/// Current format version.
pub const XTCF_VERSION: u32 = 1;
/// File header length in bytes.
pub const XTCF_HEADER_LEN: usize = 8;

/// Per-frame record length for `natoms`.
pub fn frame_record_len(natoms: usize) -> usize {
    4 + 4 + 36 + 4 + natoms * 12
}

/// Total encoded size for a trajectory of `nframes` × `natoms`.
pub fn encoded_len(nframes: usize, natoms: usize) -> usize {
    XTCF_HEADER_LEN + nframes * frame_record_len(natoms)
}

/// Streaming XTCF writer.
#[derive(Debug)]
pub struct XtcfWriter {
    buf: Vec<u8>,
    natoms: Option<usize>,
}

impl Default for XtcfWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl XtcfWriter {
    /// New writer with the file header emitted.
    pub fn new() -> XtcfWriter {
        XtcfWriter::with_buf(Vec::new())
    }

    /// New writer whose buffer is sized for `nframes` × `natoms` up front
    /// (see [`encoded_len`]), so encoding a subset of known shape never
    /// re-allocates.
    pub fn with_capacity(nframes: usize, natoms: usize) -> XtcfWriter {
        XtcfWriter::with_buf(Vec::with_capacity(encoded_len(nframes, natoms)))
    }

    fn with_buf(mut buf: Vec<u8>) -> XtcfWriter {
        buf.extend_from_slice(&XTCF_MAGIC.to_le_bytes());
        buf.extend_from_slice(&XTCF_VERSION.to_le_bytes());
        XtcfWriter { buf, natoms: None }
    }

    /// Append one frame. Atom counts must be uniform.
    pub fn write_frame(&mut self, frame: &Frame) -> Result<(), FormatError> {
        self.write_frame_parts(frame.step, frame.time, &frame.pbc, &frame.coords)
    }

    /// Append one frame from its parts, without requiring a [`Frame`]:
    /// callers that gather coordinates into a reusable buffer encode
    /// straight from that buffer. Atom counts must be uniform.
    pub fn write_frame_parts(
        &mut self,
        step: i32,
        time: f32,
        pbc: &PbcBox,
        coords: &[[f32; 3]],
    ) -> Result<(), FormatError> {
        if let Some(n) = self.natoms {
            if n != coords.len() {
                return Err(FormatError::Corrupt(format!(
                    "frame atom count {} != file atom count {}",
                    coords.len(),
                    n
                )));
            }
        } else {
            self.natoms = Some(coords.len());
        }
        self.buf.reserve(frame_record_len(coords.len()));
        self.buf.extend_from_slice(&step.to_le_bytes());
        self.buf.extend_from_slice(&time.to_le_bytes());
        for row in &pbc.m {
            for &v in row {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        self.buf
            .extend_from_slice(&(coords.len() as u32).to_le_bytes());
        for c in coords {
            for &v in c {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Ok(())
    }

    /// Finish, returning the file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True right after construction (header only).
    pub fn is_empty(&self) -> bool {
        self.buf.len() == XTCF_HEADER_LEN
    }

    /// Current buffer capacity in bytes (for allocation regression tests).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Copy the first four bytes of a slice the caller has already
/// length-checked (header bounds or `take(4)`), so little-endian reads
/// need no fallible `try_into`.
fn le_bytes4(b: &[u8]) -> [u8; 4] {
    [b[0], b[1], b[2], b[3]]
}

/// Streaming XTCF reader.
#[derive(Debug)]
pub struct XtcfReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> XtcfReader<'a> {
    /// Validate the header and position at the first frame.
    pub fn new(data: &'a [u8]) -> Result<XtcfReader<'a>, FormatError> {
        if data.len() < XTCF_HEADER_LEN {
            return Err(FormatError::UnexpectedEof);
        }
        let magic = u32::from_le_bytes(le_bytes4(&data[0..4]));
        if magic != XTCF_MAGIC {
            return Err(FormatError::Corrupt(format!("bad magic {:#x}", magic)));
        }
        let version = u32::from_le_bytes(le_bytes4(&data[4..8]));
        if version != XTCF_VERSION {
            return Err(FormatError::Corrupt(format!("bad version {}", version)));
        }
        Ok(XtcfReader {
            data,
            pos: XTCF_HEADER_LEN,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.data.len() - self.pos < n {
            return Err(FormatError::UnexpectedEof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read the next frame, `Ok(None)` at a clean end.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FormatError> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        let step = i32::from_le_bytes(le_bytes4(self.take(4)?));
        let time = f32::from_le_bytes(le_bytes4(self.take(4)?));
        let mut pbc = PbcBox::zero();
        for r in 0..3 {
            for c in 0..3 {
                pbc.m[r][c] = f32::from_le_bytes(le_bytes4(self.take(4)?));
            }
        }
        let n = u32::from_le_bytes(le_bytes4(self.take(4)?)) as usize;
        let body = self.take(n * 12)?;
        let mut coords = Vec::with_capacity(n);
        for chunk in body.chunks_exact(12) {
            coords.push([
                f32::from_le_bytes(le_bytes4(&chunk[0..4])),
                f32::from_le_bytes(le_bytes4(&chunk[4..8])),
                f32::from_le_bytes(le_bytes4(&chunk[8..12])),
            ]);
        }
        Ok(Some(Frame {
            step,
            time,
            pbc,
            coords,
        }))
    }
}

/// Encode a whole trajectory.
pub fn write_xtcf(traj: &Trajectory) -> Result<Vec<u8>, FormatError> {
    let mut w = XtcfWriter::new();
    for f in &traj.frames {
        w.write_frame(f)?;
    }
    Ok(w.into_bytes())
}

/// Decode a whole XTCF byte stream.
pub fn read_xtcf(data: &[u8]) -> Result<Trajectory, FormatError> {
    let mut r = XtcfReader::new(data)?;
    let mut frames = Vec::new();
    while let Some(f) = r.next_frame()? {
        frames.push(f);
    }
    Ok(Trajectory::from_frames(frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_frames(
            (0..4)
                .map(|f| Frame {
                    step: f * 10,
                    time: f as f32 * 0.5,
                    pbc: PbcBox::rectangular(3.0, 4.0, 5.0),
                    coords: (0..25)
                        .map(|a| [a as f32 * 0.1, f as f32, -(a as f32)])
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn lossless_roundtrip() {
        let t = traj();
        let bytes = write_xtcf(&t).unwrap();
        assert_eq!(bytes.len(), encoded_len(4, 25));
        let back = read_xtcf(&bytes).unwrap();
        assert_eq!(t, back); // bit exact
    }

    #[test]
    fn empty_trajectory() {
        let bytes = write_xtcf(&Trajectory::new()).unwrap();
        assert_eq!(bytes.len(), XTCF_HEADER_LEN);
        assert!(read_xtcf(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_xtcf(&traj()).unwrap();
        bytes[0] ^= 0xFF;
        assert!(read_xtcf(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = write_xtcf(&traj()).unwrap();
        bytes[4] = 9;
        assert!(read_xtcf(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = write_xtcf(&traj()).unwrap();
        assert!(read_xtcf(&bytes[..bytes.len() - 1]).is_err());
        assert!(read_xtcf(&bytes[..5]).is_err());
    }

    #[test]
    fn mixed_atom_counts_rejected() {
        let mut w = XtcfWriter::new();
        w.write_frame(&Frame::from_coords(vec![[0.0; 3]; 3]))
            .unwrap();
        assert!(w
            .write_frame(&Frame::from_coords(vec![[0.0; 3]; 4]))
            .is_err());
    }

    #[test]
    fn with_capacity_never_reallocates() {
        let t = traj();
        let mut w = XtcfWriter::with_capacity(t.len(), t.natoms());
        let cap0 = w.capacity();
        assert_eq!(cap0, encoded_len(t.len(), t.natoms()));
        for f in &t.frames {
            w.write_frame(f).unwrap();
        }
        assert_eq!(w.capacity(), cap0, "pre-sized writer grew its buffer");
        assert_eq!(w.len(), encoded_len(t.len(), t.natoms()));
        assert_eq!(w.into_bytes(), write_xtcf(&t).unwrap());
    }

    #[test]
    fn with_capacity_zero_frames_matches_header() {
        let w = XtcfWriter::with_capacity(0, 0);
        assert_eq!(w.capacity(), XTCF_HEADER_LEN);
        assert!(w.is_empty());
    }

    #[test]
    fn record_len_matches() {
        let t = traj();
        let bytes = write_xtcf(&t).unwrap();
        let body = bytes.len() - XTCF_HEADER_LEN;
        assert_eq!(body % frame_record_len(25), 0);
        assert_eq!(body / frame_record_len(25), 4);
    }
}
