//! XTCF — the uncompressed "XTC-Flat" frame format.
//!
//! ADA stores *decompressed* data subsets on its backends so that reads skip
//! the decompression step entirely (that is the whole point of the paper:
//! "only decompressed active data will be transferred to compute nodes").
//! The paper does not specify the byte layout of those stored subsets, so we
//! define a minimal exact little-endian format:
//!
//! ```text
//! magic   u32      == 0x41444146 ("ADAF")
//! version u32      == 1 or 2
//! per frame:
//!   step  i32
//!   time  f32
//!   box   9 × f32
//!   n     u32      atom count
//!   xyz   n × 3 × f32
//! ```
//!
//! Unlike XTC this format is bit-exact (no quantization) and trivially
//! seekable: every frame of a file has the same length.
//!
//! **Version 2** keeps the v1 frame records byte-identical and appends a
//! self-describing chunk directory after the body, so range reads can
//! decode only the chunks they touch and verify each chunk's integrity:
//!
//! ```text
//! header      (v1 layout, version == 2)
//! body        v1 frame records, grouped into fixed frame-count chunks
//! directory   per chunk, 20 bytes:
//!   offset  u64   absolute byte offset of the chunk's first record
//!   nframes u32   frames in this chunk (never zero)
//!   natoms  u32   atom count (uniform across chunks)
//!   crc     u32   IEEE CRC-32 of the chunk's body bytes
//! trailer     12 bytes at the file end:
//!   nchunks      u32
//!   chunk_frames u32   the nominal chunk size the file was sealed with
//!   magic        u32   == XTCF_FOOTER_MAGIC
//! ```
//!
//! [`XtcfReader`] auto-detects the version: v1 files decode exactly as
//! before, and v2 files stream their body transparently (the directory is
//! parsed up front, so streaming stops at the directory; streaming reads
//! do *not* verify chunk CRCs — use [`decode_chunk`] for verified
//! random access).

use crate::traj::{Frame, Trajectory};
use crate::FormatError;
use ada_mdmodel::PbcBox;

/// XTCF magic bytes ("ADAF" as a little-endian u32).
pub const XTCF_MAGIC: u32 = 0x4144_4146;
/// Version 1: a bare stream of frame records.
pub const XTCF_VERSION: u32 = 1;
/// Version 2: v1 body plus a chunk directory and trailer.
pub const XTCF_VERSION_V2: u32 = 2;
/// File header length in bytes.
pub const XTCF_HEADER_LEN: usize = 8;
/// Trailer magic sealing a v2 chunk directory ("ADCF" little-endian).
pub const XTCF_FOOTER_MAGIC: u32 = 0x4144_4346;
/// Size of one v2 chunk-directory entry in bytes.
pub const XTCF_DIR_ENTRY_LEN: usize = 20;
/// Size of the v2 trailer in bytes.
pub const XTCF_TRAILER_LEN: usize = 12;

/// Per-frame record length for `natoms` (saturating: an impossible shape
/// yields `usize::MAX` instead of wrapping).
pub fn frame_record_len(natoms: usize) -> usize {
    (4usize + 4 + 36 + 4).saturating_add(natoms.saturating_mul(12))
}

/// Total encoded v1 size for a trajectory of `nframes` × `natoms`
/// (saturating: adversarial shapes yield `usize::MAX` instead of
/// wrapping to a small, wrong size).
pub fn encoded_len(nframes: usize, natoms: usize) -> usize {
    XTCF_HEADER_LEN.saturating_add(nframes.saturating_mul(frame_record_len(natoms)))
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) — used for chunk checksums.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Streaming XTCF writer.
#[derive(Debug)]
pub struct XtcfWriter {
    buf: Vec<u8>,
    natoms: Option<usize>,
}

impl Default for XtcfWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl XtcfWriter {
    /// New writer with the file header emitted.
    pub fn new() -> XtcfWriter {
        XtcfWriter::with_buf(Vec::new())
    }

    /// New writer whose buffer is sized for `nframes` × `natoms` up front
    /// (see [`encoded_len`]), so encoding a subset of known shape never
    /// re-allocates.
    pub fn with_capacity(nframes: usize, natoms: usize) -> XtcfWriter {
        let cap = encoded_len(nframes, natoms);
        // A saturated size means the shape cannot exist in memory anyway;
        // grow on demand instead of attempting a doomed huge reservation.
        let buf = if cap == usize::MAX {
            Vec::new()
        } else {
            Vec::with_capacity(cap)
        };
        XtcfWriter::with_buf(buf)
    }

    fn with_buf(mut buf: Vec<u8>) -> XtcfWriter {
        buf.extend_from_slice(&XTCF_MAGIC.to_le_bytes());
        buf.extend_from_slice(&XTCF_VERSION.to_le_bytes());
        XtcfWriter { buf, natoms: None }
    }

    /// Append one frame. Atom counts must be uniform.
    pub fn write_frame(&mut self, frame: &Frame) -> Result<(), FormatError> {
        self.write_frame_parts(frame.step, frame.time, &frame.pbc, &frame.coords)
    }

    /// Append one frame from its parts, without requiring a [`Frame`]:
    /// callers that gather coordinates into a reusable buffer encode
    /// straight from that buffer. Atom counts must be uniform.
    pub fn write_frame_parts(
        &mut self,
        step: i32,
        time: f32,
        pbc: &PbcBox,
        coords: &[[f32; 3]],
    ) -> Result<(), FormatError> {
        if let Some(n) = self.natoms {
            if n != coords.len() {
                return Err(FormatError::Corrupt(format!(
                    "frame atom count {} != file atom count {}",
                    coords.len(),
                    n
                )));
            }
        } else {
            self.natoms = Some(coords.len());
        }
        self.buf.reserve(frame_record_len(coords.len()));
        self.buf.extend_from_slice(&step.to_le_bytes());
        self.buf.extend_from_slice(&time.to_le_bytes());
        for row in &pbc.m {
            for &v in row {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        self.buf
            .extend_from_slice(&(coords.len() as u32).to_le_bytes());
        for c in coords {
            for &v in c {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Ok(())
    }

    /// Finish, returning the file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True right after construction (header only).
    pub fn is_empty(&self) -> bool {
        self.buf.len() == XTCF_HEADER_LEN
    }

    /// Current buffer capacity in bytes (for allocation regression tests).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Copy the first four bytes of a slice the caller has already
/// length-checked (header bounds or `take(4)`), so little-endian reads
/// need no fallible `try_into`.
fn le_bytes4(b: &[u8]) -> [u8; 4] {
    [b[0], b[1], b[2], b[3]]
}

/// Streaming XTCF reader. Auto-detects the file version: v2 files stream
/// their body exactly like v1 (the chunk directory is parsed up front and
/// never surfaces as frames).
#[derive(Debug)]
pub struct XtcfReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// End of the frame-record body (`data.len()` for v1, the directory
    /// start for v2).
    body_end: usize,
    version: u32,
    directory: Option<ChunkDirectory>,
}

impl<'a> XtcfReader<'a> {
    /// Validate the header (and, for v2, the chunk directory) and position
    /// at the first frame.
    pub fn new(data: &'a [u8]) -> Result<XtcfReader<'a>, FormatError> {
        let directory = parse_directory(data)?;
        let (version, body_end) = match &directory {
            None => (XTCF_VERSION, data.len()),
            Some(dir) => (
                XTCF_VERSION_V2,
                data.len() - XTCF_TRAILER_LEN - dir.nchunks() * XTCF_DIR_ENTRY_LEN,
            ),
        };
        Ok(XtcfReader {
            data,
            pos: XTCF_HEADER_LEN,
            body_end,
            version,
            directory,
        })
    }

    /// Raw cursor over a record span the caller has already bounds-checked
    /// (chunk decoding).
    fn at(data: &'a [u8], pos: usize, body_end: usize) -> XtcfReader<'a> {
        XtcfReader {
            data,
            pos,
            body_end,
            version: XTCF_VERSION_V2,
            directory: None,
        }
    }

    /// The detected format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The chunk directory, for v2 files.
    pub fn directory(&self) -> Option<&ChunkDirectory> {
        self.directory.as_ref()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.body_end - self.pos < n {
            return Err(FormatError::UnexpectedEof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read the next frame, `Ok(None)` at a clean end.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FormatError> {
        if self.pos == self.body_end {
            return Ok(None);
        }
        let step = i32::from_le_bytes(le_bytes4(self.take(4)?));
        let time = f32::from_le_bytes(le_bytes4(self.take(4)?));
        let mut pbc = PbcBox::zero();
        for r in 0..3 {
            for c in 0..3 {
                pbc.m[r][c] = f32::from_le_bytes(le_bytes4(self.take(4)?));
            }
        }
        let n = u32::from_le_bytes(le_bytes4(self.take(4)?)) as usize;
        // The atom count is untrusted on-disk input: bound it against the
        // remaining bytes before sizing any allocation, and multiply
        // checked so 32-bit targets cannot wrap into a short slice.
        let remaining = self.body_end - self.pos;
        let need = match n.checked_mul(12) {
            Some(need) if need <= remaining => need,
            _ => {
                return Err(FormatError::Corrupt(format!(
                    "frame atom count {} overruns the remaining {} bytes",
                    n, remaining
                )))
            }
        };
        let body = self.take(need)?;
        let mut coords = Vec::with_capacity(n);
        for chunk in body.chunks_exact(12) {
            coords.push([
                f32::from_le_bytes(le_bytes4(&chunk[0..4])),
                f32::from_le_bytes(le_bytes4(&chunk[4..8])),
                f32::from_le_bytes(le_bytes4(&chunk[8..12])),
            ]);
        }
        Ok(Some(Frame {
            step,
            time,
            pbc,
            coords,
        }))
    }
}

/// One v2 chunk-directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the chunk's first frame record.
    pub offset: u64,
    /// Frames in this chunk (never zero in a valid file).
    pub nframes: u32,
    /// Atom count (uniform across a file's chunks).
    pub natoms: u32,
    /// IEEE CRC-32 of the chunk's body bytes.
    pub crc: u32,
}

/// The parsed chunk directory of a v2 file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDirectory {
    /// Directory entries, in body order.
    pub entries: Vec<ChunkEntry>,
    /// The nominal chunk size (frames) the file was sealed with.
    pub chunk_frames: u32,
}

impl ChunkDirectory {
    /// Number of chunks.
    pub fn nchunks(&self) -> usize {
        self.entries.len()
    }

    /// Total frames across all chunks.
    pub fn nframes(&self) -> usize {
        self.entries.iter().map(|e| e.nframes as usize).sum()
    }

    /// Per-chunk frame counts, in body order.
    pub fn chunk_nframes(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.nframes).collect()
    }

    /// The chunk holding file-local frame index `local`, if in range.
    pub fn chunk_of_frame(&self, local: usize) -> Option<usize> {
        let mut at = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            at += e.nframes as usize;
            if local < at {
                return Some(i);
            }
        }
        None
    }

    /// The `[start, end)` file-local frame span of chunk `chunk`.
    pub fn frame_span(&self, chunk: usize) -> Option<(usize, usize)> {
        if chunk >= self.entries.len() {
            return None;
        }
        let start: usize = self.entries[..chunk]
            .iter()
            .map(|e| e.nframes as usize)
            .sum();
        Some((start, start + self.entries[chunk].nframes as usize))
    }
}

/// Parse a file's chunk directory. `Ok(None)` means a valid v1 header (no
/// directory); `Ok(Some(..))` a validated v2 directory; unknown versions
/// and structurally broken directories are `Err`.
pub fn parse_directory(data: &[u8]) -> Result<Option<ChunkDirectory>, FormatError> {
    if data.len() < XTCF_HEADER_LEN {
        return Err(FormatError::UnexpectedEof);
    }
    let magic = u32::from_le_bytes(le_bytes4(&data[0..4]));
    if magic != XTCF_MAGIC {
        return Err(FormatError::Corrupt(format!("bad magic {:#x}", magic)));
    }
    let version = u32::from_le_bytes(le_bytes4(&data[4..8]));
    if version == XTCF_VERSION {
        return Ok(None);
    }
    if version != XTCF_VERSION_V2 {
        return Err(FormatError::Corrupt(format!("bad version {}", version)));
    }
    if data.len() < XTCF_HEADER_LEN + XTCF_TRAILER_LEN {
        return Err(FormatError::Corrupt(format!(
            "v2 file of {} bytes cannot hold a trailer",
            data.len()
        )));
    }
    let t = data.len() - XTCF_TRAILER_LEN;
    let nchunks = u32::from_le_bytes(le_bytes4(&data[t..t + 4])) as usize;
    let chunk_frames = u32::from_le_bytes(le_bytes4(&data[t + 4..t + 8]));
    let footer = u32::from_le_bytes(le_bytes4(&data[t + 8..t + 12]));
    if footer != XTCF_FOOTER_MAGIC {
        return Err(FormatError::Corrupt(format!(
            "bad footer magic {:#x}",
            footer
        )));
    }
    let dir_start = nchunks
        .checked_mul(XTCF_DIR_ENTRY_LEN)
        .and_then(|len| t.checked_sub(len))
        .filter(|&s| s >= XTCF_HEADER_LEN)
        .ok_or_else(|| {
            FormatError::Corrupt(format!("truncated chunk directory ({} entries)", nchunks))
        })?;
    let mut entries: Vec<ChunkEntry> = Vec::with_capacity(nchunks);
    let mut expect = XTCF_HEADER_LEN as u64;
    for i in 0..nchunks {
        let at = dir_start + i * XTCF_DIR_ENTRY_LEN;
        let e = ChunkEntry {
            offset: u64::from_le_bytes([
                data[at],
                data[at + 1],
                data[at + 2],
                data[at + 3],
                data[at + 4],
                data[at + 5],
                data[at + 6],
                data[at + 7],
            ]),
            nframes: u32::from_le_bytes(le_bytes4(&data[at + 8..at + 12])),
            natoms: u32::from_le_bytes(le_bytes4(&data[at + 12..at + 16])),
            crc: u32::from_le_bytes(le_bytes4(&data[at + 16..at + 20])),
        };
        if e.nframes == 0 {
            return Err(FormatError::ChunkCorrupt {
                chunk: i,
                detail: "chunk declares zero frames".to_string(),
            });
        }
        if e.offset != expect {
            return Err(FormatError::ChunkCorrupt {
                chunk: i,
                detail: format!(
                    "chunk offset {} out of place (expected {})",
                    e.offset, expect
                ),
            });
        }
        if i > 0 && e.natoms != entries[0].natoms {
            return Err(FormatError::ChunkCorrupt {
                chunk: i,
                detail: format!(
                    "chunk atom count {} != file atom count {}",
                    e.natoms, entries[0].natoms
                ),
            });
        }
        expect += e.nframes as u64 * frame_record_len(e.natoms as usize) as u64;
        entries.push(e);
    }
    if expect != dir_start as u64 {
        return Err(FormatError::Corrupt(format!(
            "chunk directory covers {} body bytes, file holds {}",
            expect - XTCF_HEADER_LEN as u64,
            dir_start - XTCF_HEADER_LEN
        )));
    }
    Ok(Some(ChunkDirectory {
        entries,
        chunk_frames,
    }))
}

/// Seal a v1 byte stream of `natoms`-atom frames into a v2 chunked
/// container with at most `chunk_frames` frames per chunk (`0` means one
/// single chunk). The frame records are left byte-identical; only the
/// version field flips and a directory + trailer are appended.
pub fn seal_v2(
    mut payload: Vec<u8>,
    natoms: usize,
    chunk_frames: usize,
) -> Result<Vec<u8>, FormatError> {
    if payload.len() < XTCF_HEADER_LEN {
        return Err(FormatError::UnexpectedEof);
    }
    let magic = u32::from_le_bytes(le_bytes4(&payload[0..4]));
    if magic != XTCF_MAGIC {
        return Err(FormatError::Corrupt(format!("bad magic {:#x}", magic)));
    }
    let version = u32::from_le_bytes(le_bytes4(&payload[4..8]));
    if version != XTCF_VERSION {
        return Err(FormatError::Corrupt(format!(
            "can only seal a v1 stream, got version {}",
            version
        )));
    }
    let record = frame_record_len(natoms);
    let body = payload.len() - XTCF_HEADER_LEN;
    if !body.is_multiple_of(record) {
        return Err(FormatError::Corrupt(format!(
            "body of {} bytes is not a multiple of the {}-byte record for {} atoms",
            body, record, natoms
        )));
    }
    let nframes = body / record;
    let per_chunk = if chunk_frames == 0 {
        nframes.max(1)
    } else {
        chunk_frames
    };
    payload[4..8].copy_from_slice(&XTCF_VERSION_V2.to_le_bytes());
    let nchunks = nframes.div_ceil(per_chunk);
    payload.reserve(nchunks * XTCF_DIR_ENTRY_LEN + XTCF_TRAILER_LEN);
    let mut off = XTCF_HEADER_LEN;
    let mut left = nframes;
    let mut dir = Vec::with_capacity(nchunks * XTCF_DIR_ENTRY_LEN);
    while left > 0 {
        let take = left.min(per_chunk);
        let len = take * record;
        let take32 = u32::try_from(take)
            .map_err(|_| FormatError::OutOfRange(format!("chunk of {} frames", take)))?;
        dir.extend_from_slice(&(off as u64).to_le_bytes());
        dir.extend_from_slice(&take32.to_le_bytes());
        dir.extend_from_slice(&(natoms as u32).to_le_bytes());
        dir.extend_from_slice(&crc32(&payload[off..off + len]).to_le_bytes());
        off += len;
        left -= take;
    }
    payload.extend_from_slice(&dir);
    payload.extend_from_slice(&(nchunks as u32).to_le_bytes());
    payload.extend_from_slice(&u32::try_from(per_chunk).unwrap_or(u32::MAX).to_le_bytes());
    payload.extend_from_slice(&XTCF_FOOTER_MAGIC.to_le_bytes());
    Ok(payload)
}

/// Decode one chunk of a v2 file with its CRC verified first. Corruption
/// surfaces as [`FormatError::ChunkCorrupt`] carrying the chunk id.
pub fn decode_chunk(
    data: &[u8],
    dir: &ChunkDirectory,
    chunk: usize,
) -> Result<Vec<Frame>, FormatError> {
    let e = dir.entries.get(chunk).ok_or(FormatError::ChunkCorrupt {
        chunk,
        detail: format!("chunk index out of range ({} chunks)", dir.entries.len()),
    })?;
    let start = e.offset as usize;
    let len = (e.nframes as usize).saturating_mul(frame_record_len(e.natoms as usize));
    let end = start
        .checked_add(len)
        .filter(|&end| end <= data.len())
        .ok_or(FormatError::ChunkCorrupt {
            chunk,
            detail: format!(
                "chunk span {}+{} exceeds the {}-byte file",
                start,
                len,
                data.len()
            ),
        })?;
    let computed = crc32(&data[start..end]);
    if computed != e.crc {
        return Err(FormatError::ChunkCorrupt {
            chunk,
            detail: format!(
                "checksum mismatch (stored {:#010x}, computed {:#010x})",
                e.crc, computed
            ),
        });
    }
    let mut r = XtcfReader::at(data, start, end);
    let mut frames = Vec::with_capacity(e.nframes as usize);
    loop {
        match r.next_frame() {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => break,
            Err(err) => {
                return Err(FormatError::ChunkCorrupt {
                    chunk,
                    detail: err.to_string(),
                })
            }
        }
    }
    if frames.len() != e.nframes as usize {
        return Err(FormatError::ChunkCorrupt {
            chunk,
            detail: format!(
                "decoded {} frames, directory declares {}",
                frames.len(),
                e.nframes
            ),
        });
    }
    Ok(frames)
}

/// Encode a whole trajectory.
pub fn write_xtcf(traj: &Trajectory) -> Result<Vec<u8>, FormatError> {
    let mut w = XtcfWriter::new();
    for f in &traj.frames {
        w.write_frame(f)?;
    }
    Ok(w.into_bytes())
}

/// Decode a whole XTCF byte stream.
pub fn read_xtcf(data: &[u8]) -> Result<Trajectory, FormatError> {
    let mut r = XtcfReader::new(data)?;
    let mut frames = Vec::new();
    while let Some(f) = r.next_frame()? {
        frames.push(f);
    }
    Ok(Trajectory::from_frames(frames))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_frames(
            (0..4)
                .map(|f| Frame {
                    step: f * 10,
                    time: f as f32 * 0.5,
                    pbc: PbcBox::rectangular(3.0, 4.0, 5.0),
                    coords: (0..25)
                        .map(|a| [a as f32 * 0.1, f as f32, -(a as f32)])
                        .collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn lossless_roundtrip() {
        let t = traj();
        let bytes = write_xtcf(&t).unwrap();
        assert_eq!(bytes.len(), encoded_len(4, 25));
        let back = read_xtcf(&bytes).unwrap();
        assert_eq!(t, back); // bit exact
    }

    #[test]
    fn empty_trajectory() {
        let bytes = write_xtcf(&Trajectory::new()).unwrap();
        assert_eq!(bytes.len(), XTCF_HEADER_LEN);
        assert!(read_xtcf(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_xtcf(&traj()).unwrap();
        bytes[0] ^= 0xFF;
        assert!(read_xtcf(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = write_xtcf(&traj()).unwrap();
        bytes[4] = 9;
        assert!(read_xtcf(&bytes).is_err());
    }

    #[test]
    fn truncation_detected() {
        let bytes = write_xtcf(&traj()).unwrap();
        assert!(read_xtcf(&bytes[..bytes.len() - 1]).is_err());
        assert!(read_xtcf(&bytes[..5]).is_err());
    }

    #[test]
    fn mixed_atom_counts_rejected() {
        let mut w = XtcfWriter::new();
        w.write_frame(&Frame::from_coords(vec![[0.0; 3]; 3]))
            .unwrap();
        assert!(w
            .write_frame(&Frame::from_coords(vec![[0.0; 3]; 4]))
            .is_err());
    }

    #[test]
    fn with_capacity_never_reallocates() {
        let t = traj();
        let mut w = XtcfWriter::with_capacity(t.len(), t.natoms());
        let cap0 = w.capacity();
        assert_eq!(cap0, encoded_len(t.len(), t.natoms()));
        for f in &t.frames {
            w.write_frame(f).unwrap();
        }
        assert_eq!(w.capacity(), cap0, "pre-sized writer grew its buffer");
        assert_eq!(w.len(), encoded_len(t.len(), t.natoms()));
        assert_eq!(w.into_bytes(), write_xtcf(&t).unwrap());
    }

    #[test]
    fn with_capacity_zero_frames_matches_header() {
        let w = XtcfWriter::with_capacity(0, 0);
        assert_eq!(w.capacity(), XTCF_HEADER_LEN);
        assert!(w.is_empty());
    }

    #[test]
    fn record_len_matches() {
        let t = traj();
        let bytes = write_xtcf(&t).unwrap();
        let body = bytes.len() - XTCF_HEADER_LEN;
        assert_eq!(body % frame_record_len(25), 0);
        assert_eq!(body / frame_record_len(25), 4);
    }

    #[test]
    fn encoded_len_saturates_instead_of_wrapping() {
        assert_eq!(frame_record_len(usize::MAX), usize::MAX);
        assert_eq!(encoded_len(usize::MAX, usize::MAX), usize::MAX);
        assert_eq!(encoded_len(usize::MAX, 3), usize::MAX);
        // Sane shapes are unchanged.
        assert_eq!(
            encoded_len(4, 25),
            XTCF_HEADER_LEN + 4 * frame_record_len(25)
        );
    }

    #[test]
    fn with_capacity_survives_adversarial_shapes() {
        let mut w = XtcfWriter::with_capacity(usize::MAX, usize::MAX);
        assert!(w.is_empty());
        w.write_frame(&Frame::from_coords(vec![[1.0; 3]; 2]))
            .unwrap();
        let bytes = w.into_bytes();
        assert_eq!(read_xtcf(&bytes).unwrap().len(), 1);
    }

    #[test]
    fn oversized_atom_count_is_corrupt_not_an_allocation() {
        // Header plus one frame record that claims u32::MAX atoms but
        // carries a single coordinate row.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&XTCF_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&XTCF_VERSION.to_le_bytes());
        bytes.extend_from_slice(&1i32.to_le_bytes());
        bytes.extend_from_slice(&0.5f32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 36]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        match read_xtcf(&bytes) {
            Err(FormatError::Corrupt(m)) => assert!(m.contains("atom count"), "{}", m),
            other => panic!("expected Corrupt, got {:?}", other),
        }
    }

    #[test]
    fn seal_v2_roundtrips_bit_identically() {
        let t = traj();
        let v1 = write_xtcf(&t).unwrap();
        let sealed = seal_v2(v1.clone(), 25, 3).unwrap();
        // Body bytes untouched, directory appended.
        assert_eq!(&sealed[XTCF_HEADER_LEN..v1.len()], &v1[XTCF_HEADER_LEN..]);
        let r = XtcfReader::new(&sealed).unwrap();
        assert_eq!(r.version(), XTCF_VERSION_V2);
        let dir = r.directory().unwrap().clone();
        assert_eq!(dir.nchunks(), 2); // 3 + 1 frames
        assert_eq!(dir.nframes(), 4);
        assert_eq!(dir.chunk_frames, 3);
        assert_eq!(dir.frame_span(1), Some((3, 4)));
        assert_eq!(dir.chunk_of_frame(3), Some(1));
        assert_eq!(dir.chunk_of_frame(4), None);
        // Streaming shim: the v2 file decodes exactly like the v1 stream.
        assert_eq!(read_xtcf(&sealed).unwrap(), t);
        // Random access: chunk concatenation equals the frames.
        let mut frames = Vec::new();
        for c in 0..dir.nchunks() {
            frames.extend(decode_chunk(&sealed, &dir, c).unwrap());
        }
        assert_eq!(frames, t.frames);
    }

    #[test]
    fn seal_v2_zero_frames_has_no_chunks() {
        let sealed = seal_v2(write_xtcf(&Trajectory::new()).unwrap(), 0, 4).unwrap();
        let dir = parse_directory(&sealed).unwrap().unwrap();
        assert_eq!(dir.nchunks(), 0);
        assert!(read_xtcf(&sealed).unwrap().is_empty());
    }

    #[test]
    fn flipped_body_byte_fails_the_chunk_checksum() {
        let mut sealed = seal_v2(write_xtcf(&traj()).unwrap(), 25, 2).unwrap();
        let dir = parse_directory(&sealed).unwrap().unwrap();
        // Flip one coordinate byte inside chunk 1.
        let off = dir.entries[1].offset as usize + 50;
        sealed[off] ^= 0xFF;
        assert!(decode_chunk(&sealed, &dir, 0).is_ok());
        match decode_chunk(&sealed, &dir, 1) {
            Err(FormatError::ChunkCorrupt { chunk, detail }) => {
                assert_eq!(chunk, 1);
                assert!(detail.contains("checksum"), "{}", detail);
            }
            other => panic!("expected ChunkCorrupt, got {:?}", other),
        }
    }

    #[test]
    fn truncated_directory_is_corrupt() {
        let sealed = seal_v2(write_xtcf(&traj()).unwrap(), 25, 2).unwrap();
        // Cut into the trailer, and into the directory.
        assert!(parse_directory(&sealed[..sealed.len() - 1]).is_err());
        assert!(parse_directory(&sealed[..sealed.len() - XTCF_TRAILER_LEN]).is_err());
        // Drop one directory entry but keep a consistent-looking trailer.
        let mut cut = sealed[..sealed.len() - XTCF_TRAILER_LEN - XTCF_DIR_ENTRY_LEN].to_vec();
        cut.extend_from_slice(&sealed[sealed.len() - XTCF_TRAILER_LEN..]);
        assert!(parse_directory(&cut).is_err());
    }

    #[test]
    fn zero_frame_chunk_entry_is_rejected() {
        // Handcraft: v2 header, empty body, one directory entry declaring
        // zero frames, trailer saying one chunk.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&XTCF_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&XTCF_VERSION_V2.to_le_bytes());
        bytes.extend_from_slice(&(XTCF_HEADER_LEN as u64).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // nframes == 0
        bytes.extend_from_slice(&25u32.to_le_bytes());
        bytes.extend_from_slice(&crc32(&[]).to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&XTCF_FOOTER_MAGIC.to_le_bytes());
        match parse_directory(&bytes) {
            Err(FormatError::ChunkCorrupt { chunk: 0, detail }) => {
                assert!(detail.contains("zero frames"), "{}", detail)
            }
            other => panic!("expected ChunkCorrupt, got {:?}", other),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
