//! Protein Data Bank (`.pdb`) structure files.
//!
//! The fixed-column PDB records the categorizer needs: `ATOM`/`HETATM`
//! (atom name, residue name, residue number, chain, coordinates), `CRYST1`
//! (periodic box), `TITLE`, `TER`, `MODEL`/`ENDMDL`, `END`. Coordinates in
//! PDB files are Ångström; this crate's in-memory unit is the nanometre
//! (XTC convention), so the parser divides by 10 and the writer multiplies
//! back.

use ada_mdmodel::{Atom, Element, MolecularSystem, PbcBox};

/// Error from the PDB parser.
#[derive(Debug)]
pub struct PdbError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pdb line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PdbError {}

fn field(line: &str, start: usize, end: usize) -> &str {
    let bytes = line.as_bytes();
    let s = start.min(bytes.len());
    let e = end.min(bytes.len());
    // PDB files are ASCII; byte slicing is safe for well-formed input and
    // str::get returns None (→ empty) otherwise.
    line.get(s..e).unwrap_or("")
}

/// Parse a PDB text into a [`MolecularSystem`]. Only the first MODEL of a
/// multi-model file is read (VMD loads subsequent models as frames; ADA's
/// categorizer needs only the topology).
pub fn parse_pdb(text: &str) -> Result<MolecularSystem, PdbError> {
    let mut title = String::new();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut coords: Vec<[f32; 3]> = Vec::new();
    let mut pbc = PbcBox::zero();
    let mut in_first_model = true;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let record = field(line, 0, 6).trim_end();
        match record {
            "TITLE" => {
                let t = field(line, 10, 80).trim();
                if !title.is_empty() {
                    title.push(' ');
                }
                title.push_str(t);
            }
            "CRYST1" => {
                let a: f32 = parse_f32(line, 6, 15, lineno, "CRYST1 a")?;
                let b: f32 = parse_f32(line, 15, 24, lineno, "CRYST1 b")?;
                let c: f32 = parse_f32(line, 24, 33, lineno, "CRYST1 c")?;
                // Å → nm.
                pbc = PbcBox::rectangular(a / 10.0, b / 10.0, c / 10.0);
            }
            "MODEL" => {}
            "ENDMDL" => {
                // Stop after the first model.
                in_first_model = false;
            }
            "END" => break,
            "ATOM" | "HETATM" if in_first_model => {
                let serial: u32 = field(line, 6, 11).trim().parse().unwrap_or(0);
                let name = field(line, 12, 16).trim().to_string();
                if name.is_empty() {
                    return Err(PdbError {
                        line: lineno,
                        message: "empty atom name".into(),
                    });
                }
                let resname = field(line, 17, 21).trim().to_string();
                let chain = field(line, 21, 22).chars().next().unwrap_or(' ');
                let resid: i32 = field(line, 22, 26).trim().parse().unwrap_or(0);
                let x = parse_f32(line, 30, 38, lineno, "x")?;
                let y = parse_f32(line, 38, 46, lineno, "y")?;
                let z = parse_f32(line, 46, 54, lineno, "z")?;
                let element_field = field(line, 76, 78).trim();
                let element = if element_field.is_empty() {
                    Element::from_pdb_atom_name(&name, &resname)
                } else {
                    Element::from_pdb_atom_name(element_field, &resname)
                };
                atoms.push(Atom {
                    serial,
                    name,
                    resname,
                    resid,
                    chain,
                    element,
                    hetero: record == "HETATM",
                });
                coords.push([x / 10.0, y / 10.0, z / 10.0]);
            }
            _ => {}
        }
    }
    Ok(MolecularSystem::from_atoms(title, atoms, coords, pbc))
}

fn parse_f32(line: &str, s: usize, e: usize, lineno: usize, what: &str) -> Result<f32, PdbError> {
    field(line, s, e).trim().parse().map_err(|_| PdbError {
        line: lineno,
        message: format!("bad {} field: '{}'", what, field(line, s, e)),
    })
}

/// Serialize a system back to PDB text (reference coordinates, first model).
pub fn write_pdb(system: &MolecularSystem) -> String {
    // ~81 bytes/record.
    let mut out = String::with_capacity(system.len() * 81 + 256);
    if !system.title.is_empty() {
        out.push_str(&format!("TITLE     {}\n", system.title));
    }
    if !system.pbc.is_zero() {
        let l = system.pbc.lengths();
        out.push_str(&format!(
            "CRYST1{:9.3}{:9.3}{:9.3}{:7.2}{:7.2}{:7.2} P 1           1\n",
            l[0] * 10.0,
            l[1] * 10.0,
            l[2] * 10.0,
            90.0,
            90.0,
            90.0
        ));
    }
    for (atom, c) in system.atoms.iter().zip(&system.coords) {
        let record = if atom.hetero { "HETATM" } else { "ATOM  " };
        // PDB atom-name column convention: names shorter than 4 chars start
        // in column 14 unless they begin with a digit.
        let name = if atom.name.len() >= 4 || atom.name.starts_with(|c: char| c.is_ascii_digit()) {
            format!("{:<4}", atom.name)
        } else {
            format!(" {:<3}", atom.name)
        };
        out.push_str(&format!(
            "{}{:5} {} {:<4}{}{:4}    {:8.3}{:8.3}{:8.3}{:6.2}{:6.2}          {:>2}\n",
            record,
            atom.serial % 100000,
            name,
            atom.resname,
            atom.chain,
            atom.resid % 10000,
            c[0] * 10.0,
            c[1] * 10.0,
            c[2] * 10.0,
            1.0,
            0.0,
            atom.element.symbol(),
        ));
    }
    out.push_str("END\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::Category;

    const SAMPLE: &str = "\
TITLE     CB1 receptor test slab
CRYST1   80.000   80.000  100.000  90.00  90.00  90.00 P 1           1
ATOM      1  N   ALA A   1      10.000  20.000  30.000  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.400  20.100  30.200  1.00  0.00           C
ATOM      3  C   ALA A   1      12.100  21.300  29.700  1.00  0.00           C
ATOM      4  OW  SOL W 100       1.000   2.000   3.000  1.00  0.00           O
HETATM    5 NA   SOD I 200       5.000   5.000   5.000  1.00  0.00          NA
END
";

    #[test]
    fn parse_sample() {
        let s = parse_pdb(SAMPLE).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.title, "CB1 receptor test slab");
        assert_eq!(s.atoms[0].name, "N");
        assert_eq!(s.atoms[0].resname, "ALA");
        assert_eq!(s.atoms[0].chain, 'A');
        assert_eq!(s.atoms[0].resid, 1);
        assert!(!s.atoms[0].hetero);
        assert!(s.atoms[4].hetero);
        // Å → nm.
        assert!((s.coords[0][0] - 1.0).abs() < 1e-6);
        assert!((s.coords[0][2] - 3.0).abs() < 1e-6);
        assert_eq!(s.pbc.lengths(), [8.0, 8.0, 10.0]);
        assert_eq!(s.residues.len(), 3);
    }

    #[test]
    fn categories_from_parsed_file() {
        let s = parse_pdb(SAMPLE).unwrap();
        let counts = s.category_counts();
        assert_eq!(counts[&Category::Protein], 3);
        assert_eq!(counts[&Category::Water], 1);
        assert_eq!(counts[&Category::Ion], 1);
    }

    #[test]
    fn roundtrip_through_writer() {
        let s = parse_pdb(SAMPLE).unwrap();
        let text = write_pdb(&s);
        let back = parse_pdb(&text).unwrap();
        assert_eq!(back.len(), s.len());
        for (a, b) in s.atoms.iter().zip(&back.atoms) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.resname, b.resname);
            assert_eq!(a.resid, b.resid);
            assert_eq!(a.chain, b.chain);
            assert_eq!(a.hetero, b.hetero);
        }
        for (ca, cb) in s.coords.iter().zip(&back.coords) {
            for d in 0..3 {
                assert!((ca[d] - cb[d]).abs() < 1e-3);
            }
        }
        assert_eq!(back.pbc, s.pbc);
    }

    #[test]
    fn only_first_model_parsed() {
        let multi = "\
MODEL        1
ATOM      1  CA  GLY A   1       0.000   0.000   0.000  1.00  0.00           C
ENDMDL
MODEL        2
ATOM      1  CA  GLY A   1       9.000   9.000   9.000  1.00  0.00           C
ENDMDL
END
";
        let s = parse_pdb(multi).unwrap();
        assert_eq!(s.len(), 1);
        assert!((s.coords[0][0] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn bad_coordinate_is_error() {
        let bad = "ATOM      1  CA  GLY A   1      xx.000   0.000   0.000\n";
        let err = parse_pdb(bad).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad x"));
    }

    #[test]
    fn short_lines_and_unknown_records_ignored() {
        let text = "REMARK hello\nJUNK\n\nEND\n";
        let s = parse_pdb(text).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn records_after_end_ignored() {
        let text = "\
END
ATOM      1  CA  GLY A   1       0.000   0.000   0.000  1.00  0.00           C
";
        let s = parse_pdb(text).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn element_fallback_from_name() {
        // No element columns at all.
        let text = "ATOM      1  CA  GLY A   1       0.000   0.000   0.000\n";
        let s = parse_pdb(text).unwrap();
        assert_eq!(s.atoms[0].element, Element::C);
    }

    #[test]
    fn writer_name_column_convention() {
        let s = parse_pdb(SAMPLE).unwrap();
        let text = write_pdb(&s);
        let ca_line = text.lines().find(|l| l.contains(" CA ")).unwrap();
        // Short names occupy columns 14-16 (index 13..).
        assert_eq!(&ca_line[12..16], " CA ");
    }
}
