//! XDR (RFC 4506) primitives, the serialization layer under XTC.
//!
//! XDR encodes everything big-endian in 4-byte units; opaque byte strings
//! are zero-padded to a multiple of four. Only the subset XTC needs is
//! implemented: `int`, `unsigned int`, `float`, float vectors, and counted
//! opaque data.

use crate::FormatError;

/// Append-only XDR encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// New empty encoder.
    pub fn new() -> XdrEncoder {
        XdrEncoder::default()
    }

    /// Encoder writing into an existing buffer (appends).
    pub fn with_buffer(buf: Vec<u8>) -> XdrEncoder {
        XdrEncoder { buf }
    }

    /// Finish, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a 32-bit signed integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a 32-bit unsigned integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write an IEEE-754 single float.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a float vector (fixed length; the count is *not* written,
    /// matching xdr_vector semantics).
    pub fn put_f32_vector(&mut self, v: &[f32]) {
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Write counted opaque data: a u32 length followed by the bytes padded
    /// with zeros to a multiple of 4 (xdr_opaque writes only the bytes; XTC
    /// writes the length separately, so this helper takes a flag).
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        let pad = (4 - data.len() % 4) % 4;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
    }
}

/// Cursor-based XDR decoder over a byte slice.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Decoder at the start of `data`.
    pub fn new(data: &'a [u8]) -> XdrDecoder<'a> {
        XdrDecoder { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the cursor is at the end of the input.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.remaining() < n {
            return Err(FormatError::UnexpectedEof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a 32-bit signed integer.
    pub fn get_i32(&mut self) -> Result<i32, FormatError> {
        let b = self.take(4)?;
        Ok(i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a 32-bit unsigned integer.
    pub fn get_u32(&mut self) -> Result<u32, FormatError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read an IEEE-754 single float.
    pub fn get_f32(&mut self) -> Result<f32, FormatError> {
        let b = self.take(4)?;
        Ok(f32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read `n` floats.
    pub fn get_f32_vector(&mut self, n: usize, out: &mut Vec<f32>) -> Result<(), FormatError> {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(())
    }

    /// Read `len` opaque bytes plus padding to a 4-byte boundary.
    pub fn get_opaque(&mut self, len: usize) -> Result<&'a [u8], FormatError> {
        let padded = len + (4 - len % 4) % 4;
        let s = self.take(padded)?;
        Ok(&s[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn int_roundtrip_endianness() {
        let mut e = XdrEncoder::new();
        e.put_i32(-2);
        e.put_u32(0xDEADBEEF);
        let bytes = e.into_bytes();
        assert_eq!(bytes[..4], [0xFF, 0xFF, 0xFF, 0xFE]);
        assert_eq!(bytes[4..], [0xDE, 0xAD, 0xBE, 0xEF]);
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_i32().unwrap(), -2);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert!(d.is_at_end());
    }

    #[test]
    fn float_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_f32(3.5);
        e.put_f32(-0.0);
        e.put_f32(f32::INFINITY);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_f32().unwrap(), 3.5);
        assert_eq!(d.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.get_f32().unwrap(), f32::INFINITY);
    }

    #[test]
    fn opaque_padding() {
        for len in 0..9usize {
            let data: Vec<u8> = (0..len as u8).collect();
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            let bytes = e.into_bytes();
            assert_eq!(bytes.len() % 4, 0, "len {} not padded", len);
            let mut d = XdrDecoder::new(&bytes);
            assert_eq!(d.get_opaque(len).unwrap(), &data[..]);
            assert!(d.is_at_end());
        }
    }

    #[test]
    fn eof_detection() {
        let mut d = XdrDecoder::new(&[0, 0]);
        assert!(matches!(d.get_i32(), Err(FormatError::UnexpectedEof)));
        let mut d2 = XdrDecoder::new(&[0, 0, 0, 1]);
        assert!(matches!(d2.get_opaque(5), Err(FormatError::UnexpectedEof)));
    }

    proptest! {
        #[test]
        fn prop_i32_roundtrip(v: i32) {
            let mut e = XdrEncoder::new();
            e.put_i32(v);
            let b = e.into_bytes();
            prop_assert_eq!(XdrDecoder::new(&b).get_i32().unwrap(), v);
        }

        #[test]
        fn prop_f32_bits_roundtrip(bits: u32) {
            let v = f32::from_bits(bits);
            let mut e = XdrEncoder::new();
            e.put_f32(v);
            let b = e.into_bytes();
            prop_assert_eq!(XdrDecoder::new(&b).get_f32().unwrap().to_bits(), bits);
        }

        #[test]
        fn prop_opaque_roundtrip(data in prop::collection::vec(any::<u8>(), 0..64)) {
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            let b = e.into_bytes();
            prop_assert_eq!(b.len() % 4, 0);
            let mut d = XdrDecoder::new(&b);
            prop_assert_eq!(d.get_opaque(data.len()).unwrap(), &data[..]);
        }

        #[test]
        fn prop_mixed_sequence(ints in prop::collection::vec(any::<i32>(), 0..16),
                               floats in prop::collection::vec(any::<u32>(), 0..16)) {
            let mut e = XdrEncoder::new();
            for &i in &ints { e.put_i32(i); }
            for &f in &floats { e.put_f32(f32::from_bits(f)); }
            let b = e.into_bytes();
            let mut d = XdrDecoder::new(&b);
            for &i in &ints { prop_assert_eq!(d.get_i32().unwrap(), i); }
            for &f in &floats { prop_assert_eq!(d.get_f32().unwrap().to_bits(), f); }
            prop_assert!(d.is_at_end());
        }
    }
}
