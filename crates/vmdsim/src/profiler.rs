//! Phase-level CPU accounting — the Fig. 8 instrument.
//!
//! The paper profiles VMD's CPU bursts and visualizes them as a flame
//! graph, concluding that "data decompression weights more than 50% of the
//! CPU burst time". [`PhaseProfiler`] accumulates named phase durations and
//! reports shares; the repro harness prints the same breakdown.

use ada_storagesim::SimDuration;
use std::collections::BTreeMap;

/// Accumulates virtual time per named phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    phases: BTreeMap<String, SimDuration>,
    order: Vec<String>,
}

impl PhaseProfiler {
    /// Empty profiler.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Add `d` to `phase`.
    pub fn record(&mut self, phase: &str, d: SimDuration) {
        if !self.phases.contains_key(phase) {
            self.order.push(phase.to_string());
        }
        *self
            .phases
            .entry(phase.to_string())
            .or_insert(SimDuration::ZERO) += d;
    }

    /// Total time across phases.
    pub fn total(&self) -> SimDuration {
        self.phases.values().copied().sum()
    }

    /// Time of one phase.
    pub fn of(&self, phase: &str) -> SimDuration {
        self.phases.get(phase).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Share of one phase in the total (0..=1; 0 when empty).
    pub fn share(&self, phase: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.of(phase).as_secs_f64() / total
    }

    /// `(phase, duration, share)` rows in first-recorded order — the
    /// flame-graph data.
    pub fn breakdown(&self) -> Vec<(String, SimDuration, f64)> {
        self.order
            .iter()
            .map(|p| (p.clone(), self.of(p), self.share(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut p = PhaseProfiler::new();
        p.record("decompress", SimDuration::from_secs_f64(6.0));
        p.record("scan", SimDuration::from_secs_f64(1.0));
        p.record("render", SimDuration::from_secs_f64(3.0));
        p.record("decompress", SimDuration::from_secs_f64(2.0));
        assert!((p.total().as_secs_f64() - 12.0).abs() < 1e-9);
        assert!((p.share("decompress") - 8.0 / 12.0).abs() < 1e-9);
        let sum: f64 = p.breakdown().iter().map(|(_, _, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn order_preserved() {
        let mut p = PhaseProfiler::new();
        p.record("b", SimDuration::from_secs_f64(1.0));
        p.record("a", SimDuration::from_secs_f64(1.0));
        let names: Vec<_> = p.breakdown().into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn empty_profiler() {
        let p = PhaseProfiler::new();
        assert_eq!(p.total(), SimDuration::ZERO);
        assert_eq!(p.share("x"), 0.0);
        assert!(p.breakdown().is_empty());
    }
}
