#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-vmdsim — a VMD-like visualization front end
//!
//! The paper uses VMD as the fixed downstream consumer: it loads a
//! structure (`mol new foo.pdb`), loads trajectory data
//! (`mol addfile /mnt/bar.xtc [tag p]`), derives bonds, builds 3D geometry
//! per frame and replays the animation. This crate reproduces that consumer
//! with real code:
//!
//! * [`mol`] — the command layer: a [`mol::VmdSession`] holding loaded
//!   molecules, with plain-FS loading (decompress-on-compute-node, the
//!   traditional path) and ADA-backed tagged loading;
//! * [`render`] — an actual software renderer (rotation + orthographic
//!   projection + Bresenham bond drawing into a framebuffer), parallel
//!   across frames with crossbeam;
//! * [`profiler`] — per-phase time accounting, the Fig. 8 instrument;
//! * [`playback`] — the §2.1 motivation: an LRU frame cache replaying
//!   access patterns ("replaying the frames back and forth") with hit-rate
//!   accounting.

pub mod analysis;
pub mod console;
pub mod mol;
pub mod playback;
pub mod profiler;
pub mod render;

pub use analysis::{center_of_mass, com_drift, radius_of_gyration, rmsd, rmsd_series, rmsf};
pub use console::VmdConsole;
pub use mol::{MolId, Molecule, Representation, VmdSession};
pub use playback::{AccessPattern, FrameCache, ReplayStats};
pub use profiler::PhaseProfiler;
pub use render::{render_frame, render_trajectory, DrawStyle, RenderOptions, RenderStats};
