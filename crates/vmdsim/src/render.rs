//! Software rendering of molecular frames.
//!
//! A deliberately real (if small) graphics pipeline: rotate the frame,
//! project orthographically, draw atoms as points and bonds as Bresenham
//! lines into an RGBA framebuffer with per-category colors. The per-frame
//! work scales with delivered atoms — the property the platform model's
//! render-cost constant abstracts.

use ada_mdmodel::{Bond, Category, MolecularSystem};

/// Drawing style, mirroring VMD's representation methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrawStyle {
    /// One pixel per atom, bonds as lines (VMD "Lines").
    #[default]
    Lines,
    /// Atoms only, no bonds (VMD "Points").
    Points,
    /// Filled discs scaled by covalent radius (VMD "VDW").
    Vdw,
    /// Thick bonds + small atom discs (VMD "Licorice").
    Licorice,
}

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Framebuffer width in pixels.
    pub width: usize,
    /// Framebuffer height in pixels.
    pub height: usize,
    /// Rotation about the vertical axis, radians.
    pub yaw: f32,
    /// Rotation about the horizontal axis, radians.
    pub pitch: f32,
    /// Draw bonds as lines (atoms-only when false).
    pub draw_bonds: bool,
    /// Representation style.
    pub style: DrawStyle,
}

impl Default for RenderOptions {
    fn default() -> RenderOptions {
        RenderOptions {
            width: 256,
            height: 256,
            yaw: 0.6,
            pitch: 0.3,
            draw_bonds: true,
            style: DrawStyle::Lines,
        }
    }
}

/// Result of rendering one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderStats {
    /// Atom points drawn.
    pub atoms_drawn: usize,
    /// Bond lines drawn.
    pub bonds_drawn: usize,
    /// Pixels with non-background color.
    pub pixels_filled: usize,
    /// The framebuffer (RGBA8 packed into u32), row-major.
    pub framebuffer: Vec<u32>,
}

impl RenderStats {
    /// Export the framebuffer as a binary PPM (P6) image of the given
    /// dimensions (`width × height` must equal the framebuffer length).
    /// Background pixels come out black.
    pub fn to_ppm(&self, width: usize, height: usize) -> Vec<u8> {
        assert_eq!(width * height, self.framebuffer.len(), "dimension mismatch");
        let mut out = Vec::with_capacity(32 + self.framebuffer.len() * 3);
        out.extend_from_slice(format!("P6\n{} {}\n255\n", width, height).as_bytes());
        for &px in &self.framebuffer {
            out.push((px >> 16) as u8); // R
            out.push((px >> 8) as u8); // G
            out.push(px as u8); // B
        }
        out
    }
}

fn color_of(category: Category) -> u32 {
    match category {
        Category::Protein => 0xFF4C_8BF5,     // blue
        Category::Water => 0xFF9E_D9E8,       // pale cyan
        Category::Lipid => 0xFFE8_C468,       // tan
        Category::Ion => 0xFF77_DD77,         // green
        Category::NucleicAcid => 0xFFBA_68C8, // purple
        Category::Ligand => 0xFFFF_7043,      // orange
        Category::Other => 0xFFBD_BDBD,       // grey
    }
}

/// Render one frame of `coords` for `system` (atom counts must match).
pub fn render_frame(
    system: &MolecularSystem,
    bonds: &[Bond],
    coords: &[[f32; 3]],
    opts: &RenderOptions,
) -> RenderStats {
    assert_eq!(system.len(), coords.len(), "coords must match system");
    let mut span = ada_telemetry::span!("render.frame");
    span.add_frames(1);
    span.add_bytes(std::mem::size_of_val(coords) as u64);
    let mut fb = vec![0u32; opts.width * opts.height];
    if coords.is_empty() {
        return RenderStats {
            atoms_drawn: 0,
            bonds_drawn: 0,
            pixels_filled: 0,
            framebuffer: fb,
        };
    }

    // Rotate and project.
    let (sy, cy) = opts.yaw.sin_cos();
    let (sp, cp) = opts.pitch.sin_cos();
    let projected: Vec<(f32, f32)> = coords
        .iter()
        .map(|c| {
            let x1 = c[0] * cy + c[2] * sy;
            let z1 = -c[0] * sy + c[2] * cy;
            let y1 = c[1] * cp - z1 * sp;
            (x1, y1)
        })
        .collect();

    // Fit to the framebuffer with a 5 % margin.
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for &(x, y) in &projected {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(1e-6);
    let span_y = (max_y - min_y).max(1e-6);
    let scale = ((opts.width as f32 * 0.9) / span_x).min((opts.height as f32 * 0.9) / span_y);
    let to_px = |p: (f32, f32)| -> (i64, i64) {
        let x = ((p.0 - min_x) * scale + opts.width as f32 * 0.05) as i64;
        let y = ((p.1 - min_y) * scale + opts.height as f32 * 0.05) as i64;
        (x, y)
    };

    // Category color per atom (residue-granular lookup flattened once).
    let mut colors = vec![0u32; system.len()];
    for res in &system.residues {
        let c = color_of(res.category());
        for slot in &mut colors[res.atom_start..res.atom_end] {
            *slot = c;
        }
    }

    let mut atoms_drawn = 0usize;
    for (i, &p) in projected.iter().enumerate() {
        let (x, y) = to_px(p);
        let drew = match opts.style {
            DrawStyle::Lines | DrawStyle::Points => {
                put_pixel(&mut fb, opts.width, opts.height, x, y, colors[i])
            }
            DrawStyle::Vdw => {
                let r_px = (system.atoms[i].element.covalent_radius_nm() * 2.0 * scale)
                    .clamp(1.0, 12.0) as i64;
                draw_disc(&mut fb, opts.width, opts.height, x, y, r_px, colors[i])
            }
            DrawStyle::Licorice => draw_disc(&mut fb, opts.width, opts.height, x, y, 1, colors[i]),
        };
        if drew {
            atoms_drawn += 1;
        }
    }

    let mut bonds_drawn = 0usize;
    let bonds_visible =
        opts.draw_bonds && matches!(opts.style, DrawStyle::Lines | DrawStyle::Licorice);
    if bonds_visible {
        let thick = opts.style == DrawStyle::Licorice;
        for b in bonds {
            let pa = to_px(projected[b.a as usize]);
            let pb = to_px(projected[b.b as usize]);
            draw_line(
                &mut fb,
                opts.width,
                opts.height,
                pa,
                pb,
                colors[b.a as usize],
            );
            if thick {
                // A second, offset stroke approximates bond thickness.
                draw_line(
                    &mut fb,
                    opts.width,
                    opts.height,
                    (pa.0 + 1, pa.1),
                    (pb.0 + 1, pb.1),
                    colors[b.a as usize],
                );
            }
            bonds_drawn += 1;
        }
    }

    let pixels_filled = fb.iter().filter(|&&p| p != 0).count();
    RenderStats {
        atoms_drawn,
        bonds_drawn,
        pixels_filled,
        framebuffer: fb,
    }
}

fn put_pixel(fb: &mut [u32], w: usize, h: usize, x: i64, y: i64, color: u32) -> bool {
    if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
        return false;
    }
    fb[y as usize * w + x as usize] = color;
    true
}

fn draw_disc(fb: &mut [u32], w: usize, h: usize, cx: i64, cy: i64, r: i64, color: u32) -> bool {
    let mut any = false;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy <= r * r {
                any |= put_pixel(fb, w, h, cx + dx, cy + dy, color);
            }
        }
    }
    any
}

fn draw_line(fb: &mut [u32], w: usize, h: usize, a: (i64, i64), b: (i64, i64), color: u32) {
    // Bresenham.
    let (mut x0, mut y0) = a;
    let (x1, y1) = b;
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        put_pixel(fb, w, h, x0, y0, color);
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Render every frame of a trajectory in parallel over `nthreads` crossbeam
/// scoped threads (frames are independent). Framebuffers are dropped;
/// aggregate stats are returned per frame.
pub fn render_trajectory(
    system: &MolecularSystem,
    bonds: &[Bond],
    frames: &[ada_mdformats::Frame],
    opts: &RenderOptions,
    nthreads: usize,
) -> Vec<RenderStats> {
    if frames.is_empty() {
        return Vec::new();
    }
    let nthreads = nthreads.max(1).min(frames.len());
    let chunk = frames.len().div_ceil(nthreads);
    let mut out: Vec<Option<RenderStats>> = Vec::new();
    out.resize_with(frames.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (f_chunk, o_chunk) in frames.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (f, slot) in f_chunk.iter().zip(o_chunk.iter_mut()) {
                    let mut stats = render_frame(system, bonds, &f.coords, opts);
                    stats.framebuffer = Vec::new(); // keep memory flat
                    *slot = Some(stats);
                }
            });
        }
    })
    // ada-lint: allow(no-panic-in-lib) scope errs only if a worker panicked; render_frame is pure rasterization arithmetic
    .expect("render worker panicked");
    out.into_iter()
        // ada-lint: allow(no-panic-in-lib) every slot is filled above: the chunked zip covers all frames one-to-one
        .map(|s| s.expect("frame rendered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::infer_bonds;

    fn workload() -> (MolecularSystem, Vec<ada_mdformats::Frame>, Vec<Bond>) {
        let w = ada_workload::gpcr_workload(1200, 4, 21);
        let bonds = infer_bonds(
            &w.system,
            &w.system.coords,
            ada_mdmodel::bonds::DEFAULT_TOLERANCE,
        );
        (w.system, w.trajectory.frames, bonds)
    }

    #[test]
    fn renders_nonempty_image() {
        let (sys, frames, bonds) = workload();
        let stats = render_frame(&sys, &bonds, &frames[0].coords, &RenderOptions::default());
        assert!(stats.atoms_drawn > sys.len() / 2);
        assert!(stats.bonds_drawn > 0);
        assert!(stats.pixels_filled > 100);
        assert_eq!(stats.framebuffer.len(), 256 * 256);
    }

    #[test]
    fn atoms_only_mode() {
        let (sys, frames, bonds) = workload();
        let opts = RenderOptions {
            draw_bonds: false,
            ..RenderOptions::default()
        };
        let stats = render_frame(&sys, &bonds, &frames[0].coords, &opts);
        assert_eq!(stats.bonds_drawn, 0);
        assert!(stats.atoms_drawn > 0);
    }

    #[test]
    fn empty_frame() {
        let sys = MolecularSystem::default();
        let stats = render_frame(&sys, &[], &[], &RenderOptions::default());
        assert_eq!(stats.pixels_filled, 0);
    }

    #[test]
    fn deterministic() {
        let (sys, frames, bonds) = workload();
        let a = render_frame(&sys, &bonds, &frames[1].coords, &RenderOptions::default());
        let b = render_frame(&sys, &bonds, &frames[1].coords, &RenderOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (sys, frames, bonds) = workload();
        let opts = RenderOptions::default();
        let seq: Vec<RenderStats> = frames
            .iter()
            .map(|f| {
                let mut s = render_frame(&sys, &bonds, &f.coords, &opts);
                s.framebuffer = Vec::new();
                s
            })
            .collect();
        for threads in [1, 2, 3] {
            let par = render_trajectory(&sys, &bonds, &frames, &opts, threads);
            assert_eq!(par, seq, "threads={}", threads);
        }
    }

    #[test]
    fn ppm_export_wellformed() {
        let (sys, frames, bonds) = workload();
        let stats = render_frame(&sys, &bonds, &frames[0].coords, &RenderOptions::default());
        let ppm = stats.to_ppm(256, 256);
        assert!(ppm.starts_with(b"P6\n256 256\n255\n"));
        let header_len = b"P6\n256 256\n255\n".len();
        assert_eq!(ppm.len(), header_len + 256 * 256 * 3);
        // Some pixel is non-black.
        assert!(ppm[header_len..].iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic]
    fn ppm_dimension_mismatch_panics() {
        let (sys, frames, bonds) = workload();
        let stats = render_frame(&sys, &bonds, &frames[0].coords, &RenderOptions::default());
        stats.to_ppm(100, 100);
    }

    #[test]
    fn vdw_fills_more_pixels_than_points() {
        let (sys, frames, bonds) = workload();
        let points = render_frame(
            &sys,
            &bonds,
            &frames[0].coords,
            &RenderOptions {
                style: DrawStyle::Points,
                ..RenderOptions::default()
            },
        );
        let vdw = render_frame(
            &sys,
            &bonds,
            &frames[0].coords,
            &RenderOptions {
                style: DrawStyle::Vdw,
                ..RenderOptions::default()
            },
        );
        assert!(vdw.pixels_filled > points.pixels_filled);
        assert_eq!(vdw.bonds_drawn, 0); // VDW hides bonds
    }

    #[test]
    fn licorice_draws_thick_bonds() {
        let (sys, frames, bonds) = workload();
        let lines = render_frame(&sys, &bonds, &frames[0].coords, &RenderOptions::default());
        let licorice = render_frame(
            &sys,
            &bonds,
            &frames[0].coords,
            &RenderOptions {
                style: DrawStyle::Licorice,
                ..RenderOptions::default()
            },
        );
        assert_eq!(licorice.bonds_drawn, lines.bonds_drawn);
        assert!(licorice.pixels_filled >= lines.pixels_filled);
    }

    #[test]
    fn fewer_atoms_render_fewer_pixels() {
        // The protein-only subset draws strictly less than the full system
        // (the Fig. 1a vs 1b contrast, numerically).
        let (sys, frames, _) = workload();
        let prot_ranges = sys.category_ranges(Category::Protein);
        let prot_sys = sys.subset(&prot_ranges);
        let prot_coords = prot_ranges.gather(&frames[0].coords);
        let full = render_frame(&sys, &[], &frames[0].coords, &RenderOptions::default());
        let prot = render_frame(&prot_sys, &[], &prot_coords, &RenderOptions::default());
        assert!(prot.atoms_drawn < full.atoms_drawn);
    }
}
