//! A VMD-like text console.
//!
//! The paper drives VMD through its command console:
//!
//! ```text
//! $ mol new foo.pdb
//! $ mol addfile /mnt/bar.xtc tag p
//! ```
//!
//! [`VmdConsole`] interprets that command language over a
//! [`VmdSession`], resolving file names against a registered file store
//! (plain bytes) or an attached ADA instance (for `tag` loads).

use crate::mol::{MolId, VmdSession};
use crate::render::{DrawStyle, RenderOptions};
use ada_core::{Ada, AdaError};
use ada_mdmodel::Tag;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Console state: a session plus name→bytes file registry and an optional
/// ADA mount.
#[derive(Debug)]
pub struct VmdConsole {
    session: VmdSession,
    files: BTreeMap<String, Vec<u8>>,
    ada: Option<Arc<Ada>>,
    top: Option<MolId>,
}

impl Default for VmdConsole {
    fn default() -> Self {
        Self::new()
    }
}

impl VmdConsole {
    /// Console with no files registered.
    pub fn new() -> VmdConsole {
        VmdConsole {
            session: VmdSession::new(),
            files: BTreeMap::new(),
            ada: None,
            top: None,
        }
    }

    /// Register a file the console can `mol new` / `mol addfile`.
    pub fn put_file(&mut self, name: &str, bytes: Vec<u8>) {
        self.files.insert(name.to_string(), bytes);
    }

    /// Attach an ADA middleware; `mol addfile <dataset>.xtc tag <t>` will
    /// query it.
    pub fn mount_ada(&mut self, ada: Arc<Ada>) {
        self.ada = Some(ada);
    }

    /// The underlying session.
    pub fn session(&self) -> &VmdSession {
        &self.session
    }

    /// The "top" (most recently created) molecule.
    pub fn top(&self) -> Option<MolId> {
        self.top
    }

    /// Execute one or more `;`/newline-separated commands; returns one
    /// output line per command.
    pub fn exec(&mut self, script: &str) -> Result<Vec<String>, AdaError> {
        let mut out = Vec::new();
        for raw in script.split([';', '\n']) {
            let line = raw.trim().trim_start_matches('$').trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push(self.exec_one(line)?);
        }
        Ok(out)
    }

    fn exec_one(&mut self, line: &str) -> Result<String, AdaError> {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["mol", "new", file] => {
                let bytes = self.file(file)?;
                let text = String::from_utf8(bytes)
                    .map_err(|_| AdaError::Pdb(format!("{} is not text", file)))?;
                let id = self.session.mol_new(&text)?;
                self.top = Some(id);
                Ok(format!(
                    "mol {}: {} atoms from {}",
                    id.0,
                    self.session.molecule(id).system.len(),
                    file
                ))
            }
            ["mol", "addfile", file] => {
                let id = self.require_top()?;
                let bytes = self.file(file)?;
                let n = self.session.mol_addfile_xtc(id, &bytes)?;
                Ok(format!("mol {}: loaded {} frames from {}", id.0, n, file))
            }
            ["mol", "addfile", file, "tag", tag] => {
                let id = self.require_top()?;
                let ada = self
                    .ada
                    .clone()
                    .ok_or_else(|| AdaError::Pdb("no ADA middleware mounted".into()))?;
                let dataset = dataset_of(file);
                let t = Tag::new(*tag);
                let n = self.session.mol_addfile_ada(id, &ada, dataset, Some(&t))?;
                Ok(format!(
                    "mol {}: loaded {} frames (tag {}) from ADA:{}",
                    id.0, n, tag, dataset
                ))
            }
            ["mol", "addrep", style, selection @ ..] if !selection.is_empty() => {
                let id = self.require_top()?;
                let style = parse_style(style)?;
                let rep = self.session.mol_addrep(id, &selection.join(" "), style)?;
                Ok(format!("mol {}: rep {} added", id.0, rep))
            }
            ["mol", "showrep", rep, flag] => {
                let id = self.require_top()?;
                let rep: usize = rep
                    .parse()
                    .map_err(|_| AdaError::Pdb(format!("bad rep index '{}'", rep)))?;
                let visible = matches!(*flag, "on" | "1" | "true");
                self.session.mol_showrep(id, rep, visible);
                Ok(format!(
                    "mol {}: rep {} {}",
                    id.0,
                    rep,
                    if visible { "on" } else { "off" }
                ))
            }
            ["animate"] => {
                let id = self.require_top()?;
                let stats = self.session.animate(id, &RenderOptions::default(), 4);
                let px: usize = stats.iter().map(|s| s.pixels_filled).sum();
                Ok(format!("animated {} frames, {} px total", stats.len(), px))
            }
            _ => Err(AdaError::Pdb(format!("unknown command: '{}'", line))),
        }
    }

    fn require_top(&self) -> Result<MolId, AdaError> {
        self.top
            .ok_or_else(|| AdaError::Pdb("no molecule loaded (run 'mol new' first)".into()))
    }

    fn file(&self, name: &str) -> Result<Vec<u8>, AdaError> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| AdaError::Pdb(format!("no such file '{}'", name)))
    }
}

fn parse_style(s: &str) -> Result<DrawStyle, AdaError> {
    match s.to_ascii_lowercase().as_str() {
        "lines" => Ok(DrawStyle::Lines),
        "points" => Ok(DrawStyle::Points),
        "vdw" => Ok(DrawStyle::Vdw),
        "licorice" => Ok(DrawStyle::Licorice),
        other => Err(AdaError::Pdb(format!("unknown style '{}'", other))),
    }
}

/// Dataset name for a path: the file stem ("/mnt/bar.xtc" → "bar").
fn dataset_of(path: &str) -> &str {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".xtc").unwrap_or(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_core::{AdaConfig, IngestInput};
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};

    fn rig() -> (VmdConsole, ada_workload::Workload) {
        let w = ada_workload::gpcr_workload(1200, 3, 404);
        let pdb = ada_mdformats::write_pdb(&w.system).into_bytes();
        let xtc =
            ada_mdformats::xtc::write_xtc(&w.trajectory, ada_mdformats::xtc::DEFAULT_PRECISION)
                .unwrap();

        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let cs = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        let ada = Arc::new(Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd));
        ada.ingest(
            "bar",
            IngestInput::Real {
                pdb_text: String::from_utf8(pdb.clone()).unwrap(),
                xtc_bytes: xtc.clone(),
            },
        )
        .unwrap();

        let mut console = VmdConsole::new();
        console.put_file("foo.pdb", pdb);
        console.put_file("bar.xtc", xtc);
        console.mount_ada(ada);
        (console, w)
    }

    #[test]
    fn paper_command_sequence() {
        let (mut console, w) = rig();
        // The exact §3.4 flow.
        let out = console
            .exec("$ mol new foo.pdb\n$ mol addfile /mnt/bar.xtc tag p")
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("atoms"));
        assert!(out[1].contains("tag p"));
        let id = console.top().unwrap();
        let prot = w
            .system
            .category_ranges(ada_mdmodel::Category::Protein)
            .count();
        assert_eq!(console.session().molecule(id).system.len(), prot);
    }

    #[test]
    fn traditional_sequence_with_reps_and_animate() {
        let (mut console, _w) = rig();
        let out = console
            .exec(
                "mol new foo.pdb; mol addfile bar.xtc; \
                 mol addrep licorice protein; mol addrep points water; \
                 mol showrep 1 off; animate",
            )
            .unwrap();
        assert_eq!(out.len(), 6);
        assert!(out[5].starts_with("animated 3 frames"));
    }

    #[test]
    fn errors_are_reported() {
        let (mut console, _) = rig();
        assert!(console.exec("mol addfile bar.xtc").is_err()); // no mol new yet
        assert!(console.exec("mol new nope.pdb").is_err());
        console.exec("mol new foo.pdb").unwrap();
        assert!(console.exec("mol addfile bar.xtc tag zzz").is_err());
        assert!(console.exec("frobnicate").is_err());
        assert!(console.exec("mol addrep cartoon protein").is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (mut console, _) = rig();
        let out = console
            .exec("# a comment\n\n  \nmol new foo.pdb\n")
            .unwrap();
        assert_eq!(out.len(), 1);
    }
}
