//! Animation playback with a bounded frame cache.
//!
//! §2.1: "Recently retrieved frames should be evacuated from the limited
//! memory to make room for subsequent phases of frames. Frequent data
//! swapping operations cause a low data hit rate under random frames
//! accesses (e.g., replaying the frames back and forth)". This module
//! models that consumer: an LRU cache of decoded frames with a byte
//! budget, replayed under several access patterns. Smaller frames (ADA's
//! protein subset) fit more frames in the same budget — higher hit rate,
//! smoother animation.

use ada_telemetry::Counter;
use std::collections::VecDeque;
use std::sync::Arc;

/// Frame access patterns of an analyst at the VMD timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// One forward sweep 0..n.
    Sweep,
    /// Back-and-forth scrubbing: forward then backward, `cycles` times.
    BackAndForth {
        /// Full forward+backward passes.
        cycles: usize,
    },
    /// Uniform random access of `count` frames.
    Random {
        /// Number of accesses.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl AccessPattern {
    /// Materialize the frame index sequence for `nframes`.
    pub fn sequence(&self, nframes: usize) -> Vec<usize> {
        if nframes == 0 {
            return Vec::new();
        }
        match *self {
            AccessPattern::Sweep => (0..nframes).collect(),
            AccessPattern::BackAndForth { cycles } => {
                let mut seq = Vec::with_capacity(2 * nframes * cycles);
                for _ in 0..cycles {
                    seq.extend(0..nframes);
                    seq.extend((0..nframes).rev());
                }
                seq
            }
            AccessPattern::Random { count, seed } => {
                // SplitMix64: deterministic, dependency-free.
                let mut state = seed;
                (0..count)
                    .map(|_| {
                        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        ((z ^ (z >> 31)) % nframes as u64) as usize
                    })
                    .collect()
            }
        }
    }
}

/// Replay statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayStats {
    /// Frame accesses served from cache.
    pub hits: usize,
    /// Accesses that had to re-fetch (and possibly evict).
    pub misses: usize,
    /// Frames evicted over the replay.
    pub evictions: usize,
}

impl ReplayStats {
    /// Hit rate in 0..=1 (0 for an empty replay).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// LRU frame cache with a byte budget.
///
/// ```
/// use ada_vmdsim::{AccessPattern, FrameCache};
///
/// // 60-frame animation, cache holding 30 raw frames' worth of bytes.
/// let mut raw = FrameCache::new(30 * 522_000, 522_000);
/// let mut ada = FrameCache::new(30 * 522_000, 222_000); // protein frames
/// let pattern = AccessPattern::BackAndForth { cycles: 3 };
/// let raw_stats = raw.replay(pattern, 60);
/// let ada_stats = ada.replay(pattern, 60);
/// assert!(ada_stats.hit_rate() > raw_stats.hit_rate());
/// ```
#[derive(Debug)]
pub struct FrameCache {
    capacity_bytes: u64,
    frame_bytes: u64,
    /// Most-recent at the back.
    resident: VecDeque<usize>,
    stats: ReplayStats,
    /// Global hit/miss/eviction counters (`vmd.cache.*`), registered once
    /// at construction so `access` never touches the registry lock; absent
    /// when telemetry is off.
    telemetry: Option<[Arc<Counter>; 3]>,
}

impl FrameCache {
    /// Cache with `capacity_bytes` holding frames of `frame_bytes` each.
    pub fn new(capacity_bytes: u64, frame_bytes: u64) -> FrameCache {
        assert!(frame_bytes > 0, "frame size must be positive");
        let telemetry = ada_telemetry::enabled().then(|| {
            let reg = ada_telemetry::global();
            [
                reg.counter("vmd.cache.hits"),
                reg.counter("vmd.cache.misses"),
                reg.counter("vmd.cache.evictions"),
            ]
        });
        FrameCache {
            capacity_bytes,
            frame_bytes,
            resident: VecDeque::new(),
            stats: ReplayStats {
                hits: 0,
                misses: 0,
                evictions: 0,
            },
            telemetry,
        }
    }

    /// Frames that fit at once.
    pub fn capacity_frames(&self) -> usize {
        (self.capacity_bytes / self.frame_bytes) as usize
    }

    /// Touch frame `idx`; returns true on hit.
    pub fn access(&mut self, idx: usize) -> bool {
        if let Some(pos) = self.resident.iter().position(|&f| f == idx) {
            self.resident.remove(pos);
            self.resident.push_back(idx);
            self.stats.hits += 1;
            if let Some([hits, _, _]) = &self.telemetry {
                hits.inc();
            }
            return true;
        }
        self.stats.misses += 1;
        if let Some([_, misses, _]) = &self.telemetry {
            misses.inc();
        }
        let cap = self.capacity_frames();
        if cap == 0 {
            return false;
        }
        while self.resident.len() >= cap {
            self.resident.pop_front();
            self.stats.evictions += 1;
            if let Some([_, _, evictions]) = &self.telemetry {
                evictions.inc();
            }
        }
        self.resident.push_back(idx);
        false
    }

    /// Replay a pattern over `nframes`; returns the stats of this replay.
    pub fn replay(&mut self, pattern: AccessPattern, nframes: usize) -> ReplayStats {
        let before = self.stats;
        for idx in pattern.sequence(nframes) {
            self.access(idx);
        }
        ReplayStats {
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
            evictions: self.stats.evictions - before.evictions,
        }
    }

    /// Lifetime stats.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_all_misses_when_cold() {
        let mut c = FrameCache::new(10 * 100, 100); // 10 frames
        let s = c.replay(AccessPattern::Sweep, 30);
        assert_eq!(s.misses, 30);
        assert_eq!(s.hits, 0);
        assert_eq!(s.evictions, 20);
    }

    #[test]
    fn everything_fits_back_and_forth_hits() {
        let mut c = FrameCache::new(100 * 100, 100); // 100 frames
        let s = c.replay(AccessPattern::BackAndForth { cycles: 2 }, 50);
        // First 50 accesses miss; the remaining 150 hit.
        assert_eq!(s.misses, 50);
        assert_eq!(s.hits, 150);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lru_thrash_on_back_and_forth() {
        // Cache half the frames: forward sweep then reverse — LRU keeps the
        // most recent half, so the first reverse half hits.
        let mut c = FrameCache::new(25 * 100, 100);
        let s = c.replay(AccessPattern::BackAndForth { cycles: 1 }, 50);
        assert!(s.hit_rate() < 0.5, "hit rate {}", s.hit_rate());
        assert!(s.hits > 0);
    }

    #[test]
    fn smaller_frames_raise_hit_rate() {
        // Same byte budget, ADA-sized frames (42.5 % of raw) vs raw frames.
        let budget = 30 * 522_000u64;
        let nframes = 60usize;
        let mut raw = FrameCache::new(budget, 522_000);
        let mut ada = FrameCache::new(budget, 222_000);
        let pattern = AccessPattern::BackAndForth { cycles: 3 };
        let s_raw = raw.replay(pattern, nframes);
        let s_ada = ada.replay(pattern, nframes);
        assert!(
            s_ada.hit_rate() > s_raw.hit_rate() + 0.1,
            "ada {} vs raw {}",
            s_ada.hit_rate(),
            s_raw.hit_rate()
        );
    }

    #[test]
    fn random_pattern_deterministic() {
        let a = AccessPattern::Random {
            count: 100,
            seed: 9,
        }
        .sequence(40);
        let b = AccessPattern::Random {
            count: 100,
            seed: 9,
        }
        .sequence(40);
        let c = AccessPattern::Random {
            count: 100,
            seed: 10,
        }
        .sequence(40);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&i| i < 40));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = FrameCache::new(50, 100); // can't hold even one frame
        let s = c.replay(AccessPattern::Sweep, 10);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 10);
    }

    #[test]
    fn empty_replay() {
        let mut c = FrameCache::new(1000, 100);
        let s = c.replay(AccessPattern::Sweep, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }
}
