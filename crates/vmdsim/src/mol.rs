//! The `mol` command layer.
//!
//! Mirrors the workflow of §3.4:
//!
//! ```text
//! $ mol new foo.pdb
//! $ mol addfile /mnt/bar.xtc           # traditional: decompress locally
//! $ mol addfile /mnt/bar.xtc tag p     # ADA: fetch the protein subset
//! ```

use crate::render::{render_frame, render_trajectory, DrawStyle, RenderOptions, RenderStats};
use ada_core::{Ada, AdaError, RetrievedData};
use ada_mdformats::pdb::parse_pdb;
use ada_mdformats::{read_xtc, Frame};
use ada_mdmodel::{infer_bonds, parse_selection, Bond, IndexRanges, MolecularSystem, Tag};

/// One representation of a molecule: a selection drawn in a style (VMD's
/// `mol addrep` / `mol modselect` / `mol modstyle`).
#[derive(Debug, Clone)]
pub struct Representation {
    /// Selection text the rep was created with.
    pub selection_text: String,
    /// Atom ranges the selection resolved to.
    pub atoms: IndexRanges,
    /// Drawing style.
    pub style: DrawStyle,
    /// Whether the rep is drawn.
    pub visible: bool,
}

/// Identifier of a loaded molecule within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MolId(pub usize);

/// A loaded molecule: structure + frames + derived bonds + representations.
#[derive(Debug)]
pub struct Molecule {
    /// Structure (possibly a tagged subset of the ingested one).
    pub system: MolecularSystem,
    /// Loaded trajectory frames.
    pub frames: Vec<Frame>,
    /// Bonds derived from the reference coordinates.
    pub bonds: Vec<Bond>,
    /// Representations (empty = draw everything with default style).
    pub reps: Vec<Representation>,
}

impl Molecule {
    /// Resident memory of the loaded frames in bytes.
    pub fn frames_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.nbytes() as u64).sum()
    }
}

/// A VMD-like session.
#[derive(Debug, Default)]
pub struct VmdSession {
    molecules: Vec<Molecule>,
    last_query_profile: Option<ada_core::StageProfile>,
}

impl VmdSession {
    /// Empty session.
    pub fn new() -> VmdSession {
        VmdSession::default()
    }

    /// Loaded molecules.
    pub fn molecules(&self) -> &[Molecule] {
        &self.molecules
    }

    /// Stage attribution of the most recent ADA-backed `mol addfile`
    /// (present when telemetry is enabled): where the retrieval spent its
    /// time — index, per-backend read, decode, reassemble — so playback
    /// tooling can report load latency without reaching into ADA.
    pub fn last_query_profile(&self) -> Option<&ada_core::StageProfile> {
        self.last_query_profile.as_ref()
    }

    /// Access one molecule.
    pub fn molecule(&self, id: MolId) -> &Molecule {
        &self.molecules[id.0]
    }

    /// `mol new foo.pdb` — load a structure, derive bonds.
    pub fn mol_new(&mut self, pdb_text: &str) -> Result<MolId, AdaError> {
        let system = parse_pdb(pdb_text).map_err(|e| AdaError::Pdb(e.to_string()))?;
        let bonds = infer_bonds(
            &system,
            &system.coords,
            ada_mdmodel::bonds::DEFAULT_TOLERANCE,
        );
        self.molecules.push(Molecule {
            system,
            frames: Vec::new(),
            bonds,
            reps: Vec::new(),
        });
        Ok(MolId(self.molecules.len() - 1))
    }

    /// `mol addfile bar.xtc` — traditional path: the compute node gets the
    /// compressed bytes and decompresses them itself.
    pub fn mol_addfile_xtc(&mut self, id: MolId, xtc_bytes: &[u8]) -> Result<usize, AdaError> {
        let traj = read_xtc(xtc_bytes)?;
        let mol = &mut self.molecules[id.0];
        if let Some(f) = traj.frames.first() {
            if f.len() != mol.system.len() {
                return Err(AdaError::AtomMismatch {
                    pdb: mol.system.len(),
                    xtc: f.len(),
                });
            }
        }
        let added = traj.len();
        mol.frames.extend(traj.frames);
        Ok(added)
    }

    /// `mol addfile /mnt/bar.xtc tag p` — ADA path: fetch a pre-decompressed
    /// subset; the molecule's structure is narrowed to the tag's atoms so
    /// rendering and selections keep working.
    pub fn mol_addfile_ada(
        &mut self,
        id: MolId,
        ada: &Ada,
        dataset: &str,
        tag: Option<&Tag>,
    ) -> Result<usize, AdaError> {
        let report = ada.query(dataset, tag)?;
        self.last_query_profile = report.profile.clone();
        let traj = match report.data {
            RetrievedData::Real(t) => t,
            RetrievedData::Synthetic { .. } => {
                return Err(AdaError::Pdb(
                    "cannot load a synthetic dataset into a VMD session".into(),
                ))
            }
        };
        let mol = &mut self.molecules[id.0];
        if let Some(t) = tag {
            let label = ada.label(dataset)?;
            let ranges = label.ranges(t)?;
            if ranges.count() != traj.natoms() && !traj.is_empty() {
                return Err(AdaError::AtomMismatch {
                    pdb: ranges.count(),
                    xtc: traj.natoms(),
                });
            }
            // Narrow the structure to the subset and rebuild bonds.
            let sub = mol.system.subset(ranges);
            mol.bonds = infer_bonds(&sub, &sub.coords, ada_mdmodel::bonds::DEFAULT_TOLERANCE);
            mol.system = sub;
        } else if let Some(f) = traj.frames.first() {
            if f.len() != mol.system.len() {
                return Err(AdaError::AtomMismatch {
                    pdb: mol.system.len(),
                    xtc: f.len(),
                });
            }
        }
        let added = traj.len();
        mol.frames.extend(traj.frames);
        Ok(added)
    }

    /// Render the loaded animation (all frames), parallel across frames.
    pub fn animate(&self, id: MolId, opts: &RenderOptions, nthreads: usize) -> Vec<RenderStats> {
        let mol = &self.molecules[id.0];
        render_trajectory(&mol.system, &mol.bonds, &mol.frames, opts, nthreads)
    }

    /// `mol addrep`: add a representation drawing `selection` in `style`.
    /// Returns the rep index.
    pub fn mol_addrep(
        &mut self,
        id: MolId,
        selection: &str,
        style: DrawStyle,
    ) -> Result<usize, AdaError> {
        let mol = &mut self.molecules[id.0];
        let sel = parse_selection(selection).map_err(AdaError::Pdb)?;
        let atoms = sel.evaluate(&mol.system);
        mol.reps.push(Representation {
            selection_text: selection.to_string(),
            atoms,
            style,
            visible: true,
        });
        Ok(mol.reps.len() - 1)
    }

    /// `mol showrep`: toggle a representation's visibility.
    pub fn mol_showrep(&mut self, id: MolId, rep: usize, visible: bool) {
        self.molecules[id.0].reps[rep].visible = visible;
    }

    /// Render one frame through the molecule's representations: each
    /// visible rep draws its selection in its own style; per-rep stats are
    /// returned in rep order (hidden reps yield empty stats).
    pub fn render_reps(
        &self,
        id: MolId,
        frame_idx: usize,
        opts: &RenderOptions,
    ) -> Vec<RenderStats> {
        let mol = &self.molecules[id.0];
        let frame = &mol.frames[frame_idx];
        // One coordinate buffer reused across reps (gather_into), instead
        // of a fresh allocation per rep.
        let mut sub_coords: Vec<[f32; 3]> = Vec::new();
        mol.reps
            .iter()
            .map(|rep| {
                if !rep.visible || rep.atoms.is_empty() {
                    return RenderStats {
                        atoms_drawn: 0,
                        bonds_drawn: 0,
                        pixels_filled: 0,
                        framebuffer: Vec::new(),
                    };
                }
                let sub_sys = mol.system.subset(&rep.atoms);
                rep.atoms.gather_into(&frame.coords, &mut sub_coords);
                // Remap bonds into the subset's index space.
                let index_map: std::collections::HashMap<usize, u32> = rep
                    .atoms
                    .iter_indices()
                    .enumerate()
                    .map(|(new, old)| (old, new as u32))
                    .collect();
                let sub_bonds: Vec<Bond> = mol
                    .bonds
                    .iter()
                    .filter_map(|b| {
                        let a = index_map.get(&(b.a as usize))?;
                        let c = index_map.get(&(b.b as usize))?;
                        Some(Bond::new(*a, *c))
                    })
                    .collect();
                let rep_opts = RenderOptions {
                    style: rep.style,
                    ..*opts
                };
                render_frame(&sub_sys, &sub_bonds, &sub_coords, &rep_opts)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_core::{AdaConfig, IngestInput};
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};
    use std::sync::Arc;

    fn setup() -> (Ada, ada_workload::Workload, String, Vec<u8>) {
        let w = ada_workload::gpcr_workload(1500, 3, 13);
        let pdb_text = write_pdb(&w.system);
        let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let cs = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd);
        ada.ingest(
            "bar",
            IngestInput::Real {
                pdb_text: pdb_text.clone(),
                xtc_bytes: xtc_bytes.clone(),
            },
        )
        .unwrap();
        (ada, w, pdb_text, xtc_bytes)
    }

    #[test]
    fn traditional_load_and_animate() {
        let (_ada, w, pdb_text, xtc_bytes) = setup();
        let mut vmd = VmdSession::new();
        let id = vmd.mol_new(&pdb_text).unwrap();
        let n = vmd.mol_addfile_xtc(id, &xtc_bytes).unwrap();
        assert_eq!(n, 3);
        assert_eq!(vmd.molecule(id).system.len(), w.system.len());
        let stats = vmd.animate(id, &RenderOptions::default(), 2);
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.pixels_filled > 0));
    }

    #[test]
    fn ada_tagged_load_narrows_structure() {
        let (ada, w, pdb_text, _) = setup();
        let mut vmd = VmdSession::new();
        let id = vmd.mol_new(&pdb_text).unwrap();
        let n = vmd
            .mol_addfile_ada(id, &ada, "bar", Some(&Tag::protein()))
            .unwrap();
        assert_eq!(n, 3);
        let prot_atoms = w
            .system
            .category_ranges(ada_mdmodel::Category::Protein)
            .count();
        assert_eq!(vmd.molecule(id).system.len(), prot_atoms);
        assert!((vmd.molecule(id).system.protein_fraction() - 1.0).abs() < 1e-9);
        // Less memory than the traditional load would need.
        assert!(vmd.molecule(id).frames_bytes() < (w.trajectory.nbytes() as u64));
        let stats = vmd.animate(id, &RenderOptions::default(), 2);
        assert_eq!(stats.len(), 3);
        assert!(stats[0].pixels_filled > 0);
    }

    #[test]
    fn ada_untagged_load_matches_traditional() {
        let (ada, _w, pdb_text, xtc_bytes) = setup();
        let mut trad = VmdSession::new();
        let t_id = trad.mol_new(&pdb_text).unwrap();
        trad.mol_addfile_xtc(t_id, &xtc_bytes).unwrap();

        let mut viaada = VmdSession::new();
        let a_id = viaada.mol_new(&pdb_text).unwrap();
        viaada.mol_addfile_ada(a_id, &ada, "bar", None).unwrap();

        let a = &trad.molecule(t_id).frames;
        let b = &viaada.molecule(a_id).frames;
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.coords.len(), fb.coords.len());
            for (ca, cb) in fa.coords.iter().zip(&fb.coords) {
                for d in 0..3 {
                    // Both went through the same lossy XTC quantization.
                    assert!((ca[d] - cb[d]).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn representations_draw_selections() {
        let (_ada, _w, pdb_text, xtc_bytes) = setup();
        let mut vmd = VmdSession::new();
        let id = vmd.mol_new(&pdb_text).unwrap();
        vmd.mol_addfile_xtc(id, &xtc_bytes).unwrap();
        let prot_rep = vmd
            .mol_addrep(id, "protein", crate::render::DrawStyle::Licorice)
            .unwrap();
        let wat_rep = vmd
            .mol_addrep(id, "water", crate::render::DrawStyle::Points)
            .unwrap();
        let stats = vmd.render_reps(id, 0, &RenderOptions::default());
        assert_eq!(stats.len(), 2);
        assert!(stats[prot_rep].atoms_drawn > 0);
        assert!(stats[prot_rep].bonds_drawn > 0); // licorice draws bonds
        assert!(stats[wat_rep].atoms_drawn > 0);
        assert_eq!(stats[wat_rep].bonds_drawn, 0); // points hide bonds

        // Hide water: its stats go empty.
        vmd.mol_showrep(id, wat_rep, false);
        let stats2 = vmd.render_reps(id, 0, &RenderOptions::default());
        assert_eq!(stats2[wat_rep].atoms_drawn, 0);
        assert_eq!(stats2[prot_rep].atoms_drawn, stats[prot_rep].atoms_drawn);
    }

    #[test]
    fn bad_rep_selection_rejected() {
        let (_ada, _w, pdb_text, _) = setup();
        let mut vmd = VmdSession::new();
        let id = vmd.mol_new(&pdb_text).unwrap();
        assert!(vmd
            .mol_addrep(id, "resname", crate::render::DrawStyle::Lines)
            .is_err());
    }

    #[test]
    fn atom_mismatch_rejected() {
        let (_ada, _w, pdb_text, _) = setup();
        let other = ada_workload::gpcr_workload(400, 1, 99);
        let bad_xtc = write_xtc(&other.trajectory, DEFAULT_PRECISION).unwrap();
        let mut vmd = VmdSession::new();
        let id = vmd.mol_new(&pdb_text).unwrap();
        assert!(matches!(
            vmd.mol_addfile_xtc(id, &bad_xtc),
            Err(AdaError::AtomMismatch { .. })
        ));
    }

    #[test]
    fn ada_load_retains_query_profile() {
        let (ada, _w, pdb_text, _) = setup();
        let mut vmd = VmdSession::new();
        assert!(vmd.last_query_profile().is_none());
        let id = vmd.mol_new(&pdb_text).unwrap();
        vmd.mol_addfile_ada(id, &ada, "bar", Some(&Tag::protein()))
            .unwrap();
        let p = vmd.last_query_profile().expect("telemetry on by default");
        assert_eq!(p.mode, "query_parallel");
        for stage in ["index", "read", "decode", "reassemble"] {
            assert!(p.stages_ns.contains_key(stage), "missing stage {}", stage);
        }
        // A failed load leaves the previous profile in place.
        assert!(vmd.mol_addfile_ada(id, &ada, "nope", None).is_err());
        assert!(vmd.last_query_profile().is_some());
    }

    #[test]
    fn bad_pdb_rejected() {
        let mut vmd = VmdSession::new();
        assert!(vmd
            .mol_new("ATOM      1  CA  GLY A   1      bogus\n")
            .is_err());
    }
}
