//! Trajectory analysis — the "analyze" half of "animate and analyze the
//! trajectory of an MD simulation".
//!
//! Implements the measures a VMD user runs over loaded frames: RMSD against
//! a reference, per-atom RMSF, radius of gyration, and center-of-mass
//! drift. All of them consume exactly the frames ADA delivered — which is
//! the point: for a protein study, the protein subset suffices, so the
//! analyses run on 42 % of the data.
//!
//! Frame-parallel measures fan out with crossbeam scoped threads.

use ada_mdformats::Frame;
use ada_mdmodel::MolecularSystem;

/// Mass-weighted center of mass of one frame.
pub fn center_of_mass(system: &MolecularSystem, coords: &[[f32; 3]]) -> [f64; 3] {
    assert_eq!(system.len(), coords.len());
    let mut acc = [0.0f64; 3];
    let mut total = 0.0f64;
    for (atom, c) in system.atoms.iter().zip(coords) {
        let m = atom.element.mass() as f64;
        total += m;
        for d in 0..3 {
            acc[d] += m * c[d] as f64;
        }
    }
    if total > 0.0 {
        for a in acc.iter_mut() {
            *a /= total;
        }
    }
    acc
}

/// Mass-weighted radius of gyration (nm) of one frame.
pub fn radius_of_gyration(system: &MolecularSystem, coords: &[[f32; 3]]) -> f64 {
    let com = center_of_mass(system, coords);
    let mut acc = 0.0f64;
    let mut total = 0.0f64;
    for (atom, c) in system.atoms.iter().zip(coords) {
        let m = atom.element.mass() as f64;
        total += m;
        let mut r2 = 0.0f64;
        for d in 0..3 {
            let dd = c[d] as f64 - com[d];
            r2 += dd * dd;
        }
        acc += m * r2;
    }
    if total == 0.0 {
        0.0
    } else {
        (acc / total).sqrt()
    }
}

/// RMSD (nm) between a frame and a reference, without fitting (the frames
/// of one trajectory share a frame of reference).
pub fn rmsd(reference: &[[f32; 3]], coords: &[[f32; 3]]) -> f64 {
    assert_eq!(reference.len(), coords.len());
    if reference.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (a, b) in reference.iter().zip(coords) {
        for d in 0..3 {
            let dd = a[d] as f64 - b[d] as f64;
            acc += dd * dd;
        }
    }
    (acc / reference.len() as f64).sqrt()
}

/// Per-frame RMSD series against the first frame, parallel across frames.
pub fn rmsd_series(frames: &[Frame], nthreads: usize) -> Vec<f64> {
    let Some(first) = frames.first() else {
        return Vec::new();
    };
    let reference = &first.coords;
    let nthreads = nthreads.max(1).min(frames.len());
    let chunk = frames.len().div_ceil(nthreads);
    let mut out = vec![0.0f64; frames.len()];
    crossbeam::thread::scope(|scope| {
        for (f_chunk, o_chunk) in frames.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (f, slot) in f_chunk.iter().zip(o_chunk.iter_mut()) {
                    *slot = rmsd(reference, &f.coords);
                }
            });
        }
    })
    // ada-lint: allow(no-panic-in-lib) scope errs only if a worker panicked; workers do pure per-frame arithmetic on equal-length zips
    .expect("rmsd worker panicked");
    out
}

/// Per-atom root-mean-square fluctuation (nm) around the mean structure.
pub fn rmsf(frames: &[Frame]) -> Vec<f64> {
    let Some(first) = frames.first() else {
        return Vec::new();
    };
    let natoms = first.len();
    // Mean position per atom.
    let mut mean = vec![[0.0f64; 3]; natoms];
    for f in frames {
        assert_eq!(f.len(), natoms, "uniform atom count required");
        for (m, c) in mean.iter_mut().zip(&f.coords) {
            for d in 0..3 {
                m[d] += c[d] as f64;
            }
        }
    }
    let nf = frames.len() as f64;
    for m in mean.iter_mut() {
        for axis in m.iter_mut() {
            *axis /= nf;
        }
    }
    // Fluctuation around the mean.
    let mut acc = vec![0.0f64; natoms];
    for f in frames {
        for ((a, c), m) in acc.iter_mut().zip(&f.coords).zip(&mean) {
            for d in 0..3 {
                let dd = c[d] as f64 - m[d];
                *a += dd * dd;
            }
        }
    }
    acc.into_iter().map(|a| (a / nf).sqrt()).collect()
}

/// Center-of-mass displacement (nm) of each frame from frame 0.
pub fn com_drift(system: &MolecularSystem, frames: &[Frame]) -> Vec<f64> {
    let Some(first) = frames.first() else {
        return Vec::new();
    };
    let com0 = center_of_mass(system, &first.coords);
    frames
        .iter()
        .map(|f| {
            let com = center_of_mass(system, &f.coords);
            let mut r2 = 0.0f64;
            for d in 0..3 {
                let dd = com[d] - com0[d];
                r2 += dd * dd;
            }
            r2.sqrt()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_mdmodel::Category;

    fn workload() -> (MolecularSystem, Vec<Frame>) {
        let w = ada_workload::gpcr_workload(1500, 10, 31);
        (w.system, w.trajectory.frames)
    }

    #[test]
    fn rmsd_zero_against_self() {
        let (_, frames) = workload();
        assert_eq!(rmsd(&frames[0].coords, &frames[0].coords), 0.0);
        let series = rmsd_series(&frames, 3);
        assert_eq!(series[0], 0.0);
        // Random-walk motion: RMSD grows (statistically) over frames.
        assert!(series[9] > series[1]);
    }

    #[test]
    fn rmsd_known_value() {
        let a = vec![[0.0f32; 3]; 4];
        let b = vec![[1.0f32, 0.0, 0.0]; 4];
        assert!((rmsd(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rmsd_series_parallel_matches_serial() {
        let (_, frames) = workload();
        let s1 = rmsd_series(&frames, 1);
        let s4 = rmsd_series(&frames, 4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn radius_of_gyration_scales() {
        let (sys, frames) = workload();
        let rg = radius_of_gyration(&sys, &frames[0].coords);
        assert!(rg > 0.5 && rg < 20.0, "rg {}", rg);
        // Doubling all coordinates doubles Rg.
        let scaled: Vec<[f32; 3]> = frames[0]
            .coords
            .iter()
            .map(|c| [c[0] * 2.0, c[1] * 2.0, c[2] * 2.0])
            .collect();
        let rg2 = radius_of_gyration(&sys, &scaled);
        assert!((rg2 / rg - 2.0).abs() < 1e-3);
    }

    #[test]
    fn com_translation_invariance_of_rg() {
        let (sys, frames) = workload();
        let rg = radius_of_gyration(&sys, &frames[0].coords);
        let moved: Vec<[f32; 3]> = frames[0]
            .coords
            .iter()
            .map(|c| [c[0] + 5.0, c[1] - 3.0, c[2] + 1.0])
            .collect();
        assert!((radius_of_gyration(&sys, &moved) - rg).abs() < 1e-3);
    }

    #[test]
    fn rmsf_tracks_category_mobility() {
        // Water jitters more than protein in the motion model; RMSF must
        // see that through the frames.
        let (sys, frames) = workload();
        let fluct = rmsf(&frames);
        let mean_of = |cat: Category| -> f64 {
            let r = sys.category_ranges(cat);
            let n = r.count().max(1);
            r.iter_indices().map(|i| fluct[i]).sum::<f64>() / n as f64
        };
        assert!(
            mean_of(Category::Water) > 2.0 * mean_of(Category::Protein),
            "water {} vs protein {}",
            mean_of(Category::Water),
            mean_of(Category::Protein)
        );
    }

    #[test]
    fn com_drift_starts_at_zero() {
        let (sys, frames) = workload();
        let drift = com_drift(&sys, &frames);
        assert_eq!(drift[0], 0.0);
        assert!(drift.iter().all(|&d| d.is_finite()));
    }

    #[test]
    fn empty_inputs() {
        let sys = MolecularSystem::default();
        assert_eq!(rmsd_series(&[], 4), Vec::<f64>::new());
        assert_eq!(rmsf(&[]), Vec::<f64>::new());
        assert_eq!(com_drift(&sys, &[]), Vec::<f64>::new());
        assert_eq!(radius_of_gyration(&sys, &[]), 0.0);
    }
}
