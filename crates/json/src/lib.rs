#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! Minimal JSON support for ADA's persistence formats (label files and
//! PLFS container indexes).
//!
//! The repository previously serialized these through `serde_json`; the
//! formats are tiny and fixed, so a small hand-rolled value model keeps
//! the build dependency-free. Numbers are stored as `f64`, which is exact
//! for integers up to 2^53 — far beyond any offset this system produces.
//!
//! Output is deterministic: objects serialize in insertion order and the
//! writer has a single canonical rendering (no whitespace).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (exact for integers below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved and keys are looked up
    /// linearly (objects here have a handful of keys).
    Obj(Vec<(String, Value)>),
}

/// Parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Integer-valued number.
    pub fn num_u(n: u64) -> Value {
        Value::Num(n as f64)
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field, or an error naming the missing key.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field '{}'", key)))
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => err(format!("expected string, got {:?}", other)),
        }
    }

    /// Non-negative integer content.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Ok(*n as u64),
            other => err(format!("expected unsigned integer, got {:?}", other)),
        }
    }

    /// Non-negative integer as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(items) => Ok(items),
            other => err(format!("expected array, got {:?}", other)),
        }
    }

    /// Object pairs, if this is an object.
    pub fn as_obj(&self) -> Result<&[(String, Value)], JsonError> {
        match self {
            Value::Obj(pairs) => Ok(pairs),
            other => err(format!("expected object, got {:?}", other)),
        }
    }

    /// Canonical compact rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Canonical compact rendering as bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.to_json().into_bytes()
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{}", n);
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (rejects trailing garbage).
pub fn parse(bytes: &[u8]) -> Result<Value, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError("invalid utf-8".into()))?;
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return err("trailing characters after document");
    }
    Ok(v)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), JsonError> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => err(format!("expected '{}' at byte {}, got '{}'", want, i, c)),
            None => err(format!("expected '{}', got end of input", want)),
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(Value::Str(self.string()?)),
            Some((_, 't')) => self.literal("true", Value::Bool(true)),
            Some((_, 'f')) => self.literal("false", Value::Bool(false)),
            Some((_, 'n')) => self.literal("null", Value::Null),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((i, c)) => err(format!("unexpected '{}' at byte {}", c, i)),
            None => err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return err(format!("invalid literal (expected '{}')", word)),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self
            .chars
            .peek()
            .map(|(i, _)| *i)
            .unwrap_or(self.text.len());
        let mut end = start;
        while let Some((i, c)) = self.chars.peek().copied() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.text[start..end]
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError(format!("invalid number '{}'", &self.text[start..end])))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or_else(|| JsonError("bad \\u escape".into()))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return err(format!("bad escape {:?}", other)),
                },
                Some((_, c)) => out.push(c),
                None => return err("unterminated string"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Value::Arr(items)),
                _ => return err("expected ',' or ']' in array"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_char('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Value::Obj(pairs)),
                _ => return err("expected ',' or '}' in object"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj(vec![
            ("name", Value::str("trj\"x\"")),
            ("natoms", Value::num_u(40923)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "ranges",
                Value::Arr(vec![
                    Value::Arr(vec![Value::num_u(0), Value::num_u(10)]),
                    Value::Arr(vec![Value::num_u(20), Value::num_u(30)]),
                ]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(text.as_bytes()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = parse(br#"{"a": 3, "b": "x", "c": [1, 2]}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_u64().unwrap(), 3);
        assert_eq!(v.field("b").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.field("c").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.field("zzz").is_err());
        assert!(v.field("b").unwrap().as_u64().is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(b"{not json").is_err());
        assert!(parse(b"").is_err());
        assert!(parse(b"{} trailing").is_err());
        assert!(parse(b"{\"a\": }").is_err());
        assert!(parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn whitespace_and_escapes() {
        let v = parse(b" { \"k\" : \"line\\nbreak\\u0041\" } ").unwrap();
        assert_eq!(v.field("k").unwrap().as_str().unwrap(), "line\nbreakA");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::num_u(123456789).to_json(), "123456789");
        assert_eq!(Value::Num(1.5).to_json(), "1.5");
    }
}
