#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! # ada-bench — benchmark harness and figure regeneration
//!
//! Two surfaces:
//!
//! * the **`repro` binary** (`cargo run -p ada-bench --bin repro -- all`)
//!   regenerates every table and figure of the paper's evaluation,
//!   printing model values next to the published ones;
//! * **Criterion benches** (`cargo bench`) measure this repository's real
//!   kernels: the XTC codec, the categorizer/splitter, PLFS dispatch, the
//!   striped file system, and the renderer — one bench group per
//!   experiment family, plus ablations (see `benches/`).
//!
//! The library part hosts shared helpers used by both.

use ada_platforms::figures::FigureSeries;
use ada_platforms::report::format_table;

/// Render a [`FigureSeries`] as an ASCII table: one row per frame count,
/// one column per scenario; killed runs are marked `KILLED`.
pub fn render_figure(fig: &FigureSeries) -> String {
    let mut headers: Vec<&str> = vec!["frames"];
    for (label, _) in &fig.series {
        headers.push(label.as_str());
    }
    let frames: Vec<u64> = fig.series[0].1.iter().map(|p| p.frames).collect();
    let rows: Vec<Vec<String>> = frames
        .iter()
        .map(|&f| {
            let mut row = vec![f.to_string()];
            for (_, pts) in &fig.series {
                let p = pts.iter().find(|p| p.frames == f).expect("aligned series");
                if p.killed {
                    row.push(format!("{:.1} (KILLED)", p.value));
                } else {
                    row.push(format!("{:.2}", p.value));
                }
            }
            row
        })
        .collect();
    format_table(
        &format!("{} — {} [{}]", fig.id, fig.title, fig.unit),
        &headers,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_platforms::figures::fig7;

    #[test]
    fn figure_renders_all_scenarios() {
        let [a, _, _] = fig7();
        let text = render_figure(&a);
        assert!(text.contains("C-ext4"));
        assert!(text.contains("D-ADA (protein)"));
        assert!(text.contains("626"));
        assert!(text.contains("5006"));
    }
}
