//! Regenerate every table and figure of the ADA paper's evaluation.
//!
//! ```text
//! cargo run --release -p ada-bench --bin repro -- all
//! cargo run --release -p ada-bench --bin repro -- fig7b fig10d table2
//! ```

use ada_bench::render_figure;
use ada_mdmodel::Tag;
use ada_platforms::figures::{fig10, fig7, fig8, fig9, table1, table2, table6};
use ada_platforms::report::{fmt_secs, format_table};
use ada_platforms::Platform;
use ada_vmdsim::{render_frame, RenderOptions};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--metrics-out <path>`: after all requested items ran, write the
    // global telemetry snapshot (counters, gauges, histograms) as JSON.
    let mut metrics_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--metrics-out") {
        args.remove(i);
        if i < args.len() {
            metrics_out = Some(args.remove(i));
        } else {
            eprintln!("--metrics-out needs a path argument");
            std::process::exit(2);
        }
    }
    // `--trace-out <path>`: after all requested items ran, export the
    // flight recorder's traces as Chrome trace-event JSON (open in
    // Perfetto or chrome://tracing). Combine with `bench-contention`,
    // `bench-sampling`, or `profile-query` to see their span trees.
    let mut trace_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        args.remove(i);
        if i < args.len() {
            trace_out = Some(args.remove(i));
        } else {
            eprintln!("--trace-out needs a path argument");
            std::process::exit(2);
        }
    }
    // `--json` (for `repro lint`): also write LINT.json next to the
    // terminal report.
    let mut lint_json = false;
    if let Some(i) = args.iter().position(|a| a == "--json") {
        args.remove(i);
        lint_json = true;
    }
    // `--selftest` (for `repro trace`): validate the emitted Chrome
    // trace against the trace-event schema and exit non-zero on any
    // violation, so CI can gate on the export staying loadable.
    let mut trace_selftest = false;
    if let Some(i) = args.iter().position(|a| a == "--selftest") {
        args.remove(i);
        trace_selftest = true;
    }
    // `--port <N>` (for `repro serve`): TCP port to bind. Defaults to 0,
    // which picks a free port and prints it.
    let mut port: u16 = 0;
    if let Some(i) = args.iter().position(|a| a == "--port") {
        args.remove(i);
        if i < args.len() {
            port = args.remove(i).parse().unwrap_or_else(|_| {
                eprintln!("--port needs a numeric port argument");
                std::process::exit(2);
            });
        } else {
            eprintln!("--port needs a numeric port argument");
            std::process::exit(2);
        }
    }
    // `--smoke` (for `repro serve`): after the server starts, run a
    // loopback ping/ingest/query/range/cache-stats round trip against it
    // over real TCP, then shut down and exit. CI's liveness gate.
    let mut smoke = false;
    if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        smoke = true;
    }
    // `--remote` (for `repro bench-contention`): run the contention sweep
    // over real TCP server fleets and the consistent-hash router instead
    // of the in-process front-end — an alias for `bench-network`.
    let mut remote = false;
    if let Some(i) = args.iter().position(|a| a == "--remote") {
        args.remove(i);
        remote = true;
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig1",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablations",
            "playback",
            "amortization",
            "contention",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for item in wanted {
        match item {
            "table1" => print_table1(),
            "table2" => print_table2(),
            "table3" => print_table3(),
            "table4" => print_table4(),
            "table5" => print_table5(),
            "table6" => print_table6(),
            "fig1" => print_fig1(),
            "fig7" => print_fig7(None),
            "fig7a" => print_fig7(Some(0)),
            "fig7b" => print_fig7(Some(1)),
            "fig7c" => print_fig7(Some(2)),
            "fig8" => print_fig8(),
            "fig9" => print_fig9(None),
            "fig9a" => print_fig9(Some(0)),
            "fig9b" => print_fig9(Some(1)),
            "fig9c" => print_fig9(Some(2)),
            "fig10" => print_fig10(None),
            "fig10a" => print_fig10(Some(0)),
            "fig10b" => print_fig10(Some(1)),
            "fig10c" => print_fig10(Some(2)),
            "fig10d" => print_fig10(Some(3)),
            "ablations" => print_ablations(),
            "playback" => print_playback(),
            "amortization" => print_amortization(),
            "contention" => print_contention(),
            "bench-ingest" => bench_ingest(),
            "profile-ingest" => profile_ingest(),
            "bench-query" => bench_query(),
            "profile-query" => profile_query(),
            "bench-contention" => {
                if remote {
                    bench_network()
                } else {
                    bench_contention()
                }
            }
            "bench-network" => bench_network(),
            "bench-sampling" => bench_sampling(),
            "serve" => serve(port, smoke),
            "trace" => run_trace(trace_selftest),
            "lint" => run_lint(lint_json),
            other => eprintln!("unknown item '{}'", other),
        }
    }

    if let Some(path) = metrics_out {
        ada_telemetry::flush();
        let snap = ada_telemetry::snapshot_with_traces();
        std::fs::write(&path, snap.to_vec()).expect("write metrics snapshot");
        eprintln!("wrote metrics snapshot to {}", path);
    }
    if let Some(path) = trace_out {
        let json = ada_telemetry::trace::recorder().export_chrome();
        std::fs::write(&path, json.to_vec()).expect("write chrome trace");
        eprintln!("wrote chrome trace to {}", path);
    }
}

/// `repro trace` — run a small mixed workload through the front-end (an
/// ingest, tag/full/range queries, one failing request), then export the
/// flight recorder's span trees as `TRACE_events.json` (Chrome
/// trace-event JSON — load it in Perfetto or chrome://tracing). With
/// `--selftest`, re-parse the export and validate the event schema plus
/// the tree invariants CI cares about, exiting non-zero on violation.
fn run_trace(selftest: bool) {
    use ada_core::IngestInput;
    use ada_frontend::{Frontend, FrontendConfig};
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use std::sync::Arc;

    let recorder = ada_telemetry::trace::recorder();
    recorder.clear();
    recorder.set_latency_threshold(Some(std::time::Duration::from_millis(250)));

    let w = ada_workload::gpcr_workload(2_000, 100, 7);
    let fe = Frontend::new(Arc::new(query_bench_ada(2)), FrontendConfig::default());
    fe.ingest(
        "demo-client",
        "demo",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .expect("demo ingest");
    fe.query("demo-client", "demo", Some(&Tag::protein()))
        .expect("protein query");
    fe.query("demo-client", "demo", None).expect("full query");
    fe.query_range("demo-client", "demo", &Tag::protein(), 0..64, 4)
        .expect("range query");
    // One failing request, so the export demonstrates a flagged trace.
    let err = fe
        .query("demo-client", "no-such-dataset", None)
        .expect_err("unknown dataset must fail");

    let traces = recorder.all();
    let retained = recorder.retained();
    let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    let json = recorder.export_chrome();
    std::fs::write("TRACE_events.json", json.to_vec()).expect("write TRACE_events.json");
    println!(
        "repro trace: {} trace(s), {} span(s), {} retained (flagged: {:?})",
        traces.len(),
        spans,
        retained.len(),
        retained
            .iter()
            .filter_map(|t| t.flag.clone())
            .collect::<Vec<_>>()
    );
    println!("  wrote TRACE_events.json — open in Perfetto or chrome://tracing\n");

    if !selftest {
        return;
    }
    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, msg: &str| {
        if !ok {
            failures.push(msg.to_string());
        }
    };

    check(err.kind() == "unknown_dataset", "failing request kind");
    check(traces.len() == 5, "expected 5 traces (1 ingest, 4 queries)");
    check(
        retained
            .iter()
            .any(|t| t.flag.as_deref() == Some("error:unknown_dataset")),
        "errored trace retained with its kind",
    );
    for t in &traces {
        check(
            t.spans.iter().filter(|s| s.parent.is_none()).count() == 1,
            "exactly one root span per trace",
        );
        for s in &t.spans {
            if let Some(p) = s.parent {
                check(
                    t.spans.iter().any(|o| o.id == p),
                    "parent links resolve within the trace",
                );
            }
        }
    }
    check(
        traces.iter().any(|t| {
            let threads: std::collections::BTreeSet<&str> =
                t.spans.iter().map(|s| s.thread.as_str()).collect();
            threads.len() >= 2
        }),
        "at least one trace crosses a thread boundary",
    );

    // Round-trip the written file through the JSON parser and validate
    // the Chrome trace-event schema.
    let bytes = std::fs::read("TRACE_events.json").expect("read back TRACE_events.json");
    match ada_json::parse(&bytes) {
        Err(e) => check(false, &format!("export must re-parse: {:?}", e)),
        Ok(parsed) => match parsed.field("traceEvents").and_then(Value::as_arr) {
            Err(_) => check(false, "export must contain a traceEvents array"),
            Ok(events) => {
                check(!events.is_empty(), "traceEvents must be non-empty");
                let mut xs = 0usize;
                for ev in events {
                    let ph = ev.field("ph").and_then(Value::as_str).unwrap_or("");
                    check(ph == "X" || ph == "M", "event phase must be X or M");
                    check(
                        ev.field("name").and_then(Value::as_str).is_ok(),
                        "event name",
                    );
                    check(ev.field("pid").and_then(Value::as_u64).is_ok(), "event pid");
                    check(ev.field("tid").and_then(Value::as_u64).is_ok(), "event tid");
                    if ph == "X" {
                        xs += 1;
                        check(
                            matches!(ev.field("ts"), Ok(Value::Num(n)) if *n >= 0.0),
                            "X event ts",
                        );
                        check(
                            matches!(ev.field("dur"), Ok(Value::Num(n)) if *n >= 0.0),
                            "X event dur",
                        );
                        check(
                            ev.field("args")
                                .and_then(|a| a.field("trace"))
                                .and_then(Value::as_str)
                                .is_ok(),
                            "X event args.trace id",
                        );
                    }
                }
                check(xs == spans, "one X event per recorded span");
            }
        },
    }

    recorder.set_latency_threshold(None);
    if failures.is_empty() {
        println!("repro trace --selftest: ok ({} spans validated)\n", spans);
    } else {
        failures.sort();
        failures.dedup();
        for f in &failures {
            eprintln!("repro trace --selftest: FAIL: {}", f);
        }
        std::process::exit(1);
    }
}

/// `repro lint` — run the in-tree static analysis (see DESIGN.md §9) over
/// the workspace and print per-rule counts; with `--json`, also write
/// `LINT.json`. Exits non-zero on any unsuppressed finding so scripted
/// callers can gate on it like `--deny`.
fn run_lint(write_json: bool) {
    let cwd = std::env::current_dir().expect("current directory");
    let root = ada_lint::find_workspace_root(&cwd).expect("workspace root");
    let report = ada_lint::run_workspace(&root).expect("lint scan");

    for d in report.unsuppressed() {
        println!("{}:{}:{} [{}] {}", d.path, d.line, d.col, d.rule, d.message);
    }
    let open = report.unsuppressed().count();
    println!(
        "ada-lint: {} finding{} ({} suppressed) across {} files",
        open,
        if open == 1 { "" } else { "s" },
        report.suppressed().count(),
        report.files_scanned
    );
    for (rule, u, s) in report.rule_counts() {
        println!("  {:<28} {:>4} open {:>4} suppressed", rule, u, s);
    }
    if write_json {
        std::fs::write("LINT.json", report.to_json().to_vec()).expect("write LINT.json");
        println!("  wrote LINT.json\n");
    }
    if open > 0 {
        std::process::exit(1);
    }
}

fn print_contention() {
    use ada_platforms::contention::cluster_contention;
    let clients = [1usize, 3, 9];
    let runs = cluster_contention(5006, &clients);
    let labels = ["C-PVFS", "D-PVFS", "D-ADA (all)", "D-ADA (protein)"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .map(|label| {
            let mut row = vec![label.to_string()];
            for &c in &clients {
                let t = runs
                    .iter()
                    .find(|r| r.label == *label && r.clients == c)
                    .unwrap()
                    .turnaround_s;
                row.push(format!("{:.1} s", t));
            }
            row
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Contention (cluster, 5,006 frames): per-client turnaround under concurrent readers",
            &["scenario", "1 client", "3 clients", "9 clients"],
            &rows
        )
    );
    println!(
        "  ADA ships less through the shared storage: its advantage grows with client count\n"
    );
}

fn print_amortization() {
    use ada_platforms::amortization::ingest_amortization;
    let rows: Vec<Vec<String>> = [626u64, 1877, 5006]
        .iter()
        .map(|&frames| {
            let a = ingest_amortization(frames);
            vec![
                frames.to_string(),
                format!("{:.1} s", a.ingest_s),
                format!("{:.2} s", a.ada_query_s),
                format!("{:.1} s", a.traditional_query_s),
                a.break_even_queries.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Ingest amortization (SSD server): when does ADA's one-time pre-processing pay off?",
            &[
                "frames",
                "ADA ingest (once)",
                "ADA query",
                "traditional query",
                "break-even queries"
            ],
            &rows
        )
    );
    println!("  biologists 'repeatedly study the behaviors of proteins' (§2.1): the investment returns within a couple of reads\n");
}

fn print_playback() {
    use ada_platforms::playback::playback_sweep;
    use ada_vmdsim::AccessPattern;
    let rows: Vec<Vec<String>> = playback_sweep(
        500,
        AccessPattern::BackAndForth { cycles: 3 },
        &[0.1, 0.25, 0.5, 0.75, 1.0],
    )
    .into_iter()
    .map(|r| {
        vec![
            format!("{:.0}%", r.budget_fraction * 100.0),
            format!("{:.1}%", r.raw_hit_rate * 100.0),
            format!("{:.1}%", r.ada_hit_rate * 100.0),
            format!("{:.1} GB", r.raw_refetch_bytes as f64 / 1e9),
            format!("{:.1} GB", r.ada_refetch_bytes as f64 / 1e9),
        ]
    })
    .collect();
    println!(
        "{}",
        format_table(
            "Playback (§2.1): frame-cache hit rate, 500-frame animation scrubbed back and forth x3",
            &[
                "cache budget (of raw)",
                "raw hit rate",
                "ADA-protein hit rate",
                "raw re-fetch",
                "ADA re-fetch"
            ],
            &rows
        )
    );
    println!(
        "  smaller (protein-only) frames keep more of the animation resident: fluent replay\n"
    );
}

fn print_ablations() {
    use ada_platforms::ablations::*;

    let rows: Vec<Vec<String>> = dispatch_policy_ablation(5006)
        .into_iter()
        .map(|r| {
            vec![
                r.policy,
                format!("{:.2} s", r.protein_read_s),
                format!("{:.2} s", r.all_read_s),
                format!("{:.0} MB", r.ssd_bytes as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Ablation — dispatch policy (cluster, 5,006 frames)",
            &["policy", "protein read", "full read", "SSD-tier bytes"],
            &rows
        )
    );

    let rows: Vec<Vec<String>> = decompress_rate_sweep(&[14.3, 28.6, 57.2, 114.4, 500.0])
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.rate_mbps),
                format!("{:.1} s", r.c_ext4_s),
                format!("{:.2} s", r.ada_protein_s),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Ablation — decompression-rate sensitivity of the 13.4x headline",
            &["decomp MB/s", "C-ext4", "D-ADA(protein)", "speedup"],
            &rows
        )
    );

    let rows: Vec<Vec<String>> = render_overhead_sweep(&[0.0, 0.016, 0.032, 0.064, 0.25])
        .into_iter()
        .map(|r| {
            let fmt = |k: Option<u64>| k.map_or("survives all".to_string(), |f| f.to_string());
            vec![
                format!("{:.1}%", r.fraction * 100.0),
                fmt(r.xfs_kill_frames),
                fmt(r.ada_protein_kill_frames),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Ablation — render working-set fraction vs fat-node OOM boundary",
            &["overhead", "XFS killed at", "ADA(protein) killed at"],
            &rows
        )
    );

    let rows: Vec<Vec<String>> = indexer_cost_ablation(&[1, 16, 256, 4096])
        .into_iter()
        .map(|r| {
            vec![
                r.droppings.to_string(),
                format!("{:.2} ms", r.indexer_s * 1e3),
                format!("{:.2}%", r.penalty_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Ablation — indexer cost vs container dropping count (5,006-frame dataset)",
            &["droppings", "indexer time", "penalty vs full read"],
            &rows
        )
    );
}

fn print_table1() {
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|r| {
            vec![
                r.paper.frames.to_string(),
                format!("{:.0}", r.paper.complete_mb),
                format!("{:.0}", r.paper.protein_mb),
                format!("{:.1}", r.paper.fraction_pct),
                format!("{:.1}", r.model_complete_mb),
                format!("{:.1}", r.model_protein_mb),
                format!("{:.1}", r.model_protein_mb / r.model_complete_mb * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Table 1 — Data components of three .xtc files (paper | model)",
            &[
                "frames",
                "paper complete (MB)",
                "paper protein (MB)",
                "paper %",
                "model complete (MB)",
                "model protein (MB)",
                "model %"
            ],
            &rows
        )
    );
}

fn size_table(title: &str, rows: Vec<ada_platforms::figures::SizeCmp>) {
    let body: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.paper.frames.to_string(),
                format!("{:.0}", r.paper.compressed_mb),
                format!("{:.1}", r.model_compressed_mb),
                format!("{:.0}", r.paper.ada_protein_mb),
                format!("{:.1}", r.model_protein_mb),
                format!("{:.0}", r.paper.raw_mb),
                format!("{:.1}", r.model_raw_mb),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            title,
            &[
                "frames",
                "compressed paper (MB)",
                "compressed model (MB)",
                "ADA protein paper (MB)",
                "ADA protein model (MB)",
                "raw paper (MB)",
                "raw model (MB)"
            ],
            &body
        )
    );
}

fn print_table2() {
    size_table(
        "Table 2 — Data size comparisons, SSD server (ext4 vs ADA)",
        table2(),
    );
}

fn print_table6() {
    size_table(
        "Table 6 — Data size comparisons, fat node (XFS vs ADA)",
        table6(),
    );
}

fn print_table3() {
    let rows = vec![
        vec!["C".into(), "VMD loads a compressed XTC file".into()],
        vec![
            "D".into(),
            "VMD loads a raw XTC file w/o compression".into(),
        ],
        vec![
            "ADA (all)".into(),
            "ADA transfers the entire raw data".into(),
        ],
        vec![
            "ADA (protein)".into(),
            "ADA transfers the protein data".into(),
        ],
    ];
    println!(
        "{}",
        format_table(
            "Table 3 — Notations of Fig. 7",
            &["Notes", "Description"],
            &rows
        )
    );
}

fn print_table4() {
    let p = Platform::cluster9();
    let rows = vec![
        vec!["CPU".into(), p.cpu.name.clone()],
        vec!["File system".into(), "PVFS (OrangeFS-like, striped)".into()],
        vec!["Node quantity".into(), "9 (3 compute, 3 HDD, 3 SSD)".into()],
        vec!["HDD".into(), "WD 1TB SATA, 126 MB/s max, 6 devices".into()],
        vec![
            "SSD".into(),
            "Plextor 256GB PCI-e, 3000/1000 MB/s peak, 6 devices".into(),
        ],
        vec![
            "Average power per node".into(),
            format!("{} W", Platform::CLUSTER_NODE_AVG_POWER_W),
        ],
    ];
    println!(
        "{}",
        format_table(
            "Table 4 — Cluster system parameters",
            &["Item", "Value"],
            &rows
        )
    );
}

fn print_table5() {
    let p = Platform::fatnode();
    let rows = vec![
        vec![
            "CPU".into(),
            format!("{} ({} cores)", p.cpu.name, p.cpu.cores),
        ],
        vec![
            "Main memory".into(),
            format!("{} GB DDR4", p.memory_bytes / 1_000_000_000),
        ],
        vec!["File system".into(), "XFS".into()],
        vec!["Disk array".into(), "WD HDD 1TB x10, RAID 50".into()],
    ];
    println!(
        "{}",
        format_table(
            "Table 5 — Fat-node server parameters",
            &["Item", "Value"],
            &rows
        )
    );
}

fn print_fig1() {
    // Numeric stand-in for the paper's renders: subset sizes and drawn
    // geometry for raw vs protein vs MISC of a synthetic GPCR system.
    let w = ada_workload::gpcr_workload(6000, 1, 42);
    let labeler =
        ada_core::categorize_algo1(&w.system, &ada_mdmodel::category::Taxonomy::paper_default());
    let frame = &w.trajectory.frames[0];
    let opts = RenderOptions::default();
    let mut rows = Vec::new();
    let full = render_frame(&w.system, &[], &frame.coords, &opts);
    rows.push(vec![
        "original raw data (Fig. 1a)".to_string(),
        w.system.len().to_string(),
        full.atoms_drawn.to_string(),
        full.pixels_filled.to_string(),
    ]);
    for (tag, name) in [
        (Tag::protein(), "protein dataset (Fig. 1b)"),
        (Tag::misc(), "MISC dataset (Fig. 1c)"),
    ] {
        let ranges = &labeler[&tag];
        let sub = w.system.subset(ranges);
        let coords = ranges.gather(&frame.coords);
        let stats = render_frame(&sub, &[], &coords, &opts);
        rows.push(vec![
            name.to_string(),
            sub.len().to_string(),
            stats.atoms_drawn.to_string(),
            stats.pixels_filled.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            "Fig. 1 — Raw vs protein vs MISC (numeric render stats)",
            &["dataset", "atoms", "atoms drawn", "pixels filled"],
            &rows
        )
    );
}

fn print_fig7(which: Option<usize>) {
    let figs = fig7();
    for (i, f) in figs.iter().enumerate() {
        if which.is_none() || which == Some(i) {
            println!("{}", render_figure(f));
        }
    }
    if which.is_none() || which == Some(1) {
        let b = &figs[1];
        let c = b.value("C-ext4", 5006).unwrap();
        let p = b.value("D-ADA (protein)", 5006).unwrap();
        println!(
            "  headline: D-ADA(protein) turnaround speedup vs C-ext4 at 5,006 frames = {:.1}x (paper: up to 13.4x)\n",
            c / p
        );
    }
}

fn print_fig8() {
    for (label, phases) in fig8() {
        let rows: Vec<Vec<String>> = phases
            .iter()
            .map(|(n, secs, share)| {
                vec![n.clone(), fmt_secs(*secs), format!("{:.1}%", share * 100.0)]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &format!("Fig. 8 — CPU burst breakdown, {} at 5,006 frames", label),
                &["phase", "CPU time", "share"],
                &rows
            )
        );
    }
    println!("  paper: decompression weighs more than 50% of the CPU burst time under ext4\n");
}

fn print_fig9(which: Option<usize>) {
    for (i, f) in fig9().iter().enumerate() {
        if which.is_none() || which == Some(i) {
            println!("{}", render_figure(f));
        }
    }
}

fn print_fig10(which: Option<usize>) {
    for (i, f) in fig10().iter().enumerate() {
        if which.is_none() || which == Some(i) {
            println!("{}", render_figure(f));
        }
    }
    if which.is_none() || which == Some(3) {
        println!("  paper anchors: XFS >12,500 kJ, ADA(all) <5,000 kJ, ADA(protein) ~2,200 kJ at 1,876,800 frames\n");
    }
}

/// `repro bench-ingest` — wall-clock the serial vs pipelined ingest
/// paths (splitter and streaming pipeline at 1/2/4/8 threads) over a
/// 1,000-frame GPCR workload, print a table and write BENCH_ingest.json.
fn bench_ingest() {
    use ada_core::{
        categorize_algo1, split_trajectory_opts, split_trajectory_serial, Ada, AdaConfig,
        SplitOptions,
    };
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use ada_mdmodel::category::Taxonomy;
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};
    use std::sync::Arc;
    use std::time::Instant;

    const THREADS: [usize; 4] = [1, 2, 4, 8];
    const REPS: usize = 5;

    fn time<F: FnMut()>(mut f: F) -> f64 {
        f(); // warm up caches and the allocator
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }

    fn ada_with(split_threads: usize, pipeline_depth: usize) -> Ada {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let containers = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        let config = AdaConfig {
            split_threads,
            pipeline_depth,
            ..AdaConfig::paper_prototype("ssd", "hdd")
        };
        Ada::new(config, containers, ssd)
    }

    let w = ada_workload::gpcr_workload(2_000, 1_000, 7);
    let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let raw_bytes = w.trajectory.nbytes() as u64;
    let mib = raw_bytes as f64 / (1024.0 * 1024.0);

    let mut results: Vec<(String, f64)> = Vec::new();
    results.push((
        "split/serial".into(),
        time(|| {
            split_trajectory_serial(&w.trajectory, &labeler).unwrap();
        }),
    ));
    for t in THREADS {
        results.push((
            format!("split/parallel/{}", t),
            time(|| {
                split_trajectory_opts(&w.trajectory, &labeler, SplitOptions::with_threads(t))
                    .unwrap();
            }),
        ));
    }
    results.push((
        "streaming/serial".into(),
        time(|| {
            ada_with(1, 1)
                .ingest_streaming("bench", &pdb_text, &xtc_bytes, 128)
                .unwrap();
        }),
    ));
    for t in THREADS {
        results.push((
            format!("streaming/pipelined/{}", t),
            time(|| {
                ada_with(t, 2)
                    .ingest_streaming("bench", &pdb_text, &xtc_bytes, 128)
                    .unwrap();
            }),
        ));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, s)| {
            vec![
                name.clone(),
                format!("{:.1}", s * 1e3),
                format!("{:.1}", mib / s),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "Ingest pipeline — best of {} (GPCR, 1,000 frames × {} atoms, {} core(s))",
                REPS,
                w.system.len(),
                cores
            ),
            &["path", "time (ms)", "throughput (MiB/s)"],
            &rows
        )
    );

    // One measured run per mode for the telemetry section: real per-stage
    // busy times and queue high-water marks of exactly this workload.
    let serial_profile = ada_with(1, 1)
        .ingest_streaming("bench", &pdb_text, &xtc_bytes, 128)
        .unwrap()
        .profile;
    let pipelined_profile = ada_with(cores.min(4), 2)
        .ingest_streaming("bench", &pdb_text, &xtc_bytes, 128)
        .unwrap()
        .profile;
    let profile_json = |p: Option<ada_core::StageProfile>| match p {
        Some(p) => p.to_json(),
        None => Value::Null,
    };

    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
                ("raw_bytes", Value::num_u(raw_bytes)),
            ]),
        ),
        ("cores", Value::num_u(cores as u64)),
        ("reps", Value::num_u(REPS as u64)),
        (
            "results",
            Value::Arr(
                results
                    .iter()
                    .map(|(name, s)| {
                        Value::obj(vec![
                            ("name", Value::str(name)),
                            ("seconds", Value::Num(*s)),
                            ("mib_per_s", Value::Num(mib / s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "profile",
            Value::obj(vec![
                ("serial", profile_json(serial_profile)),
                ("pipelined", profile_json(pipelined_profile)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_ingest.json", json.to_vec()).expect("write BENCH_ingest.json");
    println!("  wrote BENCH_ingest.json\n");
}

/// `repro profile-ingest` — answer "is decode, split, or dispatch the
/// wall-clock ceiling?" with measured telemetry: run the serial and the
/// pipelined ingest over the same workload, print each stage's busy time
/// and share, and write the machine-readable PROFILE_ingest.json.
fn profile_ingest() {
    use ada_core::{Ada, AdaConfig, IngestInput};
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};
    use std::sync::Arc;

    fn fresh_ada() -> Ada {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let containers = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), containers, ssd)
    }

    let w = ada_workload::gpcr_workload(2_000, 500, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();

    let serial = fresh_ada()
        .ingest(
            "profiled",
            IngestInput::Real {
                pdb_text: pdb_text.clone(),
                xtc_bytes: xtc_bytes.clone(),
            },
        )
        .unwrap()
        .profile
        .expect("telemetry must be enabled for profile-ingest");
    let pipelined = fresh_ada()
        .ingest_streaming("profiled", &pdb_text, &xtc_bytes, 64)
        .unwrap()
        .profile
        .expect("telemetry must be enabled for profile-ingest");

    print_stage_profile("Ingest", &serial);
    print_stage_profile("Ingest", &pipelined);

    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
            ]),
        ),
        ("serial", serial.to_json()),
        ("pipelined", pipelined.to_json()),
    ]);
    std::fs::write("PROFILE_ingest.json", json.to_vec()).expect("write PROFILE_ingest.json");
    println!("  wrote PROFILE_ingest.json\n");
}

/// Print one `StageProfile` as a stage/busy-time/share table plus its
/// bottleneck and queue high-water marks.
fn print_stage_profile(op: &str, p: &ada_core::StageProfile) {
    let rows: Vec<Vec<String>> = p
        .stages_ns
        .iter()
        .map(|(stage, ns)| {
            vec![
                stage.clone(),
                format!("{:.2}", *ns as f64 / 1e6),
                format!("{:.1}%", p.stage_share(stage) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "{} stage attribution — {} mode ({:.2} ms wall)",
                op,
                p.mode,
                p.wall_ns as f64 / 1e6
            ),
            &["stage", "busy time (ms)", "share of wall"],
            &rows
        )
    );
    if let Some((stage, ns)) = p.bottleneck() {
        println!(
            "  bottleneck: {} ({:.2} ms busy) — the stage the pipeline cannot hide",
            stage,
            ns as f64 / 1e6
        );
    }
    if !p.queue_hwm.is_empty() {
        let hwm: Vec<String> = p
            .queue_hwm
            .iter()
            .map(|(q, v)| format!("{}={}", q, v))
            .collect();
        println!("  queue high-water marks: {}", hwm.join(", "));
    }
    println!();
}

/// Hybrid SSD/HDD ADA tuned for query benchmarks: small droppings so the
/// retrieval has real per-backend and per-dropping fan-out.
fn query_bench_ada(query_threads: usize) -> ada_core::Ada {
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};
    use std::sync::Arc;

    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = ada_core::AdaConfig {
        query_threads,
        frames_per_dropping: 64, // 1,000 frames → ~16 droppings per tag
        ..ada_core::AdaConfig::paper_prototype("ssd", "hdd")
    };
    ada_core::Ada::new(config, containers, ssd)
}

/// `repro bench-query` — wall-clock the serial vs parallel query paths
/// (full-frame and protein-subset retrieval at 1/2/4/8 decode workers)
/// over a multi-dropping GPCR dataset, print a table and write
/// BENCH_query.json (same shape as BENCH_ingest.json).
fn bench_query() {
    use ada_core::{Ada, IngestInput};
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use std::time::Instant;

    const THREADS: [usize; 4] = [1, 2, 4, 8];
    const REPS: usize = 5;

    fn time<F: FnMut()>(mut f: F) -> f64 {
        f(); // warm up caches and the allocator
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }

    let w = ada_workload::gpcr_workload(2_000, 1_000, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let raw_bytes = w.trajectory.nbytes() as u64;

    let ingest = |ada: &Ada| {
        ada.ingest(
            "bench",
            IngestInput::Real {
                pdb_text: pdb_text.clone(),
                xtc_bytes: xtc_bytes.clone(),
            },
        )
        .unwrap();
    };
    let serial = query_bench_ada(0);
    ingest(&serial);
    let parallel: Vec<(usize, Ada)> = THREADS
        .iter()
        .map(|&t| {
            let ada = query_bench_ada(t);
            ingest(&ada);
            (t, ada)
        })
        .collect();

    let protein = Tag::protein();
    let full_bytes = serial.query("bench", None).unwrap().data.bytes();
    let prot_bytes = serial.query("bench", Some(&protein)).unwrap().data.bytes();

    // (name, best seconds, delivered bytes)
    let mut results: Vec<(String, f64, u64)> = Vec::new();
    results.push((
        "full/serial".into(),
        time(|| {
            serial.query("bench", None).unwrap();
        }),
        full_bytes,
    ));
    for (t, ada) in &parallel {
        results.push((
            format!("full/parallel/{}", t),
            time(|| {
                ada.query("bench", None).unwrap();
            }),
            full_bytes,
        ));
    }
    results.push((
        "protein/serial".into(),
        time(|| {
            serial.query("bench", Some(&protein)).unwrap();
        }),
        prot_bytes,
    ));
    for (t, ada) in &parallel {
        results.push((
            format!("protein/parallel/{}", t),
            time(|| {
                ada.query("bench", Some(&protein)).unwrap();
            }),
            prot_bytes,
        ));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, s, bytes)| {
            vec![
                name.clone(),
                format!("{:.1}", s * 1e3),
                format!("{:.1}", mib(*bytes) / s),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "Query pipeline — best of {} (GPCR, 1,000 frames × {} atoms, {} core(s))",
                REPS,
                w.system.len(),
                cores
            ),
            &["path", "time (ms)", "delivered (MiB/s)"],
            &rows
        )
    );

    // One measured run per mode for the telemetry section (same `profile`
    // shape as BENCH_ingest.json).
    let serial_profile = serial.query("bench", None).unwrap().profile;
    let parallel_profile = parallel
        .iter()
        .find(|(t, _)| *t == 4)
        .map(|(_, ada)| ada.query("bench", None).unwrap().profile)
        .unwrap_or_default();
    let profile_json = |p: Option<ada_core::StageProfile>| match p {
        Some(p) => p.to_json(),
        None => Value::Null,
    };

    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
                ("raw_bytes", Value::num_u(raw_bytes)),
            ]),
        ),
        ("cores", Value::num_u(cores as u64)),
        ("reps", Value::num_u(REPS as u64)),
        (
            "results",
            Value::Arr(
                results
                    .iter()
                    .map(|(name, s, bytes)| {
                        Value::obj(vec![
                            ("name", Value::str(name)),
                            ("seconds", Value::Num(*s)),
                            ("mib_per_s", Value::Num(mib(*bytes) / s)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "profile",
            Value::obj(vec![
                ("serial", profile_json(serial_profile)),
                ("parallel", profile_json(parallel_profile)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_query.json", json.to_vec()).expect("write BENCH_query.json");
    println!("  wrote BENCH_query.json\n");
}

/// `repro bench-contention` — measured (not modeled) Fig-9: sweep
/// concurrent client counts through the admission front-end over ONE
/// shared `Ada` and record throughput and p50/p99 request latency for the
/// ADA path (protein-subset query) and the baseline path (full-frame
/// query). A final run through a deliberately starved queue shows typed
/// load shedding. Writes BENCH_contention.json; the front-end's queue
/// HWM gauges, admission-wait histograms and reject counters land in the
/// global telemetry snapshot (`--metrics-out`).
fn bench_contention() {
    use ada_core::IngestInput;
    use ada_frontend::{Frontend, FrontendConfig, FrontendStats};
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use std::sync::Arc;
    use std::time::Instant;

    const CLIENTS: [usize; 4] = [1, 2, 4, 8];
    const REQS_PER_CLIENT: usize = 6;

    let w = ada_workload::gpcr_workload(2_000, 200, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let ada = Arc::new({
        let ada = query_bench_ada(0); // per-request serial: concurrency comes from slots
        ada.ingest(
            "bench",
            IngestInput::Real {
                pdb_text,
                xtc_bytes,
            },
        )
        .unwrap();
        ada
    });

    struct Run {
        mode: &'static str,
        clients: usize,
        ok: u64,
        shed: u64,
        wall_s: f64,
        p50_ms: f64,
        p99_ms: f64,
        stats: FrontendStats,
    }

    // One contention run: `clients` threads, each issuing
    // REQS_PER_CLIENT queries for `tag` through a fresh front-end.
    let run = |mode: &'static str, tag: Option<Tag>, clients: usize, queue: usize| -> Run {
        let fe = Frontend::new(
            Arc::clone(&ada),
            FrontendConfig {
                query_queue: queue,
                ..FrontendConfig::default()
            },
        );
        let latencies = ada_telemetry::Histogram::new();
        let mut ok = 0u64;
        let mut shed = 0u64;
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..clients {
                let fe = &fe;
                let tag = tag.clone();
                let latencies = &latencies;
                handles.push(scope.spawn(move || {
                    let client = format!("c{}", t);
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for _ in 0..REQS_PER_CLIENT {
                        let t0 = Instant::now();
                        match fe.query(&client, "bench", tag.as_ref()) {
                            Ok(_) => {
                                latencies.record(t0.elapsed().as_nanos() as u64);
                                ok += 1;
                            }
                            Err(_) => shed += 1, // typed Overloaded; counted below
                        }
                    }
                    (ok, shed)
                }));
            }
            for h in handles {
                let (o, s) = h.join().expect("client thread must not panic");
                ok += o;
                shed += s;
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let snap = latencies.snapshot();
        Run {
            mode,
            clients,
            ok,
            shed,
            wall_s,
            p50_ms: snap.p50 / 1e6,
            p99_ms: snap.p99 / 1e6,
            stats: fe.stats(),
        }
    };

    let mut runs: Vec<Run> = Vec::new();
    for &clients in &CLIENTS {
        runs.push(run("ada", Some(Tag::protein()), clients, 64));
    }
    for &clients in &CLIENTS {
        runs.push(run("baseline", None, clients, 64));
    }
    // Starved queue (1 waiter) under the biggest herd: typed shedding.
    runs.push(run("baseline/shed", None, 8, 1));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.clients.to_string(),
                r.ok.to_string(),
                r.shed.to_string(),
                format!("{:.1}", r.wall_s * 1e3),
                format!("{:.1}", r.ok as f64 / r.wall_s),
                format!("{:.1}", r.p50_ms),
                format!("{:.1}", r.p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "Measured contention — {} reqs/client (GPCR, 200 frames × {} atoms, {} core(s), 4 query slots)",
                REQS_PER_CLIENT,
                w.system.len(),
                cores
            ),
            &["mode", "clients", "ok", "shed", "wall (ms)", "req/s", "p50 (ms)", "p99 (ms)"],
            &rows
        )
    );

    let run_json = |r: &Run| {
        let q = r.stats.query;
        Value::obj(vec![
            ("mode", Value::str(r.mode)),
            ("clients", Value::num_u(r.clients as u64)),
            (
                "requests",
                Value::num_u((r.clients * REQS_PER_CLIENT) as u64),
            ),
            ("ok", Value::num_u(r.ok)),
            ("shed", Value::num_u(r.shed)),
            ("wall_s", Value::Num(r.wall_s)),
            ("throughput_rps", Value::Num(r.ok as f64 / r.wall_s)),
            ("p50_ms", Value::Num(r.p50_ms)),
            ("p99_ms", Value::Num(r.p99_ms)),
            (
                "admission",
                Value::obj(vec![
                    ("queue_hwm", Value::num_u(q.queue_hwm as u64)),
                    ("submitted", Value::num_u(q.counters.submitted)),
                    ("admitted", Value::num_u(q.counters.admitted)),
                    ("rejected", Value::num_u(q.counters.rejected)),
                    ("expired", Value::num_u(q.counters.expired)),
                ]),
            ),
        ])
    };
    // Cumulative admission-wait distribution across the whole sweep,
    // from the front-end's global registry histograms.
    let wait_json = if ada_telemetry::enabled() {
        ada_telemetry::global()
            .histogram("frontend.wait_ns.query")
            .snapshot()
            .to_json()
    } else {
        Value::Null
    };
    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
                ("raw_bytes", Value::num_u(w.trajectory.nbytes() as u64)),
            ]),
        ),
        ("cores", Value::num_u(cores as u64)),
        ("reqs_per_client", Value::num_u(REQS_PER_CLIENT as u64)),
        ("runs", Value::Arr(runs.iter().map(run_json).collect())),
        ("wait_ns_query", wait_json),
    ]);
    std::fs::write("BENCH_contention.json", json.to_vec()).expect("write BENCH_contention.json");
    println!("  wrote BENCH_contention.json\n");
}

/// `repro bench-network` (also `bench-contention --remote`) — the
/// networked contention sweep: shard counts × concurrent TCP clients
/// against real `ada-server` fleets behind the consistent-hash
/// [`ada_client::Router`]. Each client thread owns its sockets, so
/// throughput reflects the fleet, not client-side lock convoys. A final
/// run against a deliberately starved single shard shows typed
/// `Overloaded` shedding crossing the wire intact. Writes
/// BENCH_network.json.
fn bench_network() {
    use ada_client::{ClientConfig, Router};
    use ada_frontend::{Frontend, FrontendConfig};
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use ada_server::{Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Instant;

    const SHARDS: [usize; 3] = [1, 2, 4];
    const CLIENTS: [usize; 4] = [1, 2, 4, 8];
    const REQS_PER_CLIENT: usize = 6;
    const DATASETS: usize = 8;

    let w = ada_workload::gpcr_workload(1_000, 64, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();

    struct Run {
        mode: &'static str,
        shards: usize,
        clients: usize,
        ok: u64,
        shed: u64,
        wall_s: f64,
        p50_ms: f64,
        p99_ms: f64,
        shed_kind: Option<String>,
    }

    // Start `n` servers — each over its OWN instance, as a real sharded
    // deployment would be — and seed every dataset through a router so
    // each lands on its ring owner.
    let start_fleet = |n: usize, query_slots: usize, query_queue: usize| {
        let mut servers = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let ada = Arc::new(query_bench_ada(0));
            let fe = Arc::new(Frontend::new(
                ada,
                FrontendConfig {
                    query_slots,
                    query_queue,
                    ..FrontendConfig::default()
                },
            ));
            let server = Server::start(fe, ServerConfig::default()).expect("server must start");
            addrs.push(server.local_addr().to_string());
            servers.push(server);
        }
        let setup = Router::new(addrs.clone(), ClientConfig::default());
        for d in 0..DATASETS {
            setup
                .ingest(&format!("ds{}", d), &pdb_text, &xtc_bytes, 0)
                .expect("seed ingest must succeed");
        }
        (servers, addrs)
    };

    // One measured run: `clients` threads, each with its own router,
    // cycling `tag` queries across the seeded datasets.
    let run = |mode: &'static str,
               addrs: &[String],
               shards: usize,
               clients: usize,
               tag: Option<&'static str>|
     -> Run {
        let latencies = ada_telemetry::Histogram::new();
        let mut ok = 0u64;
        let mut shed = 0u64;
        let mut shed_kind: Option<String> = None;
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..clients {
                let latencies = &latencies;
                handles.push(scope.spawn(move || {
                    let router = Router::new(
                        addrs.to_vec(),
                        ClientConfig {
                            name: format!("c{}", t),
                            ..ClientConfig::default()
                        },
                    );
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    let mut kind: Option<String> = None;
                    for r in 0..REQS_PER_CLIENT {
                        let dataset = format!("ds{}", (t + r) % DATASETS);
                        let t0 = Instant::now();
                        match router.query(&dataset, tag) {
                            Ok(_) => {
                                latencies.record(t0.elapsed().as_nanos() as u64);
                                ok += 1;
                            }
                            Err(e) => {
                                // Typed (`Overloaded` under the starved
                                // fleet); the first kind seen is reported.
                                shed += 1;
                                kind.get_or_insert_with(|| e.kind().to_string());
                            }
                        }
                    }
                    (ok, shed, kind)
                }));
            }
            for h in handles {
                let (o, s, k) = h.join().expect("client thread must not panic");
                ok += o;
                shed += s;
                if shed_kind.is_none() {
                    shed_kind = k;
                }
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let snap = latencies.snapshot();
        Run {
            mode,
            shards,
            clients,
            ok,
            shed,
            wall_s,
            p50_ms: snap.p50 / 1e6,
            p99_ms: snap.p99 / 1e6,
            shed_kind,
        }
    };

    let mut runs: Vec<Run> = Vec::new();
    for &shards in &SHARDS {
        let (mut servers, addrs) = start_fleet(shards, 4, 64);
        for &clients in &CLIENTS {
            runs.push(run("sweep", &addrs, shards, clients, Some("p")));
        }
        for s in &mut servers {
            s.shutdown();
        }
    }
    // Overload: one shard starved to a single slot and a single queue
    // waiter, hammered by the biggest herd with full-frame queries —
    // most requests come back as typed `Overloaded` over the wire.
    let (mut servers, addrs) = start_fleet(1, 1, 1);
    runs.push(run("overload", &addrs, 1, 8, None));
    for s in &mut servers {
        s.shutdown();
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.shards.to_string(),
                r.clients.to_string(),
                r.ok.to_string(),
                r.shed.to_string(),
                format!("{:.1}", r.wall_s * 1e3),
                format!("{:.1}", r.ok as f64 / r.wall_s),
                format!("{:.1}", r.p50_ms),
                format!("{:.1}", r.p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "Networked contention — {} reqs/client over {} datasets (GPCR, 64 frames × {} atoms, {} core(s), TCP loopback)",
                REQS_PER_CLIENT,
                DATASETS,
                w.system.len(),
                cores
            ),
            &["mode", "shards", "clients", "ok", "shed", "wall (ms)", "req/s", "p50 (ms)", "p99 (ms)"],
            &rows
        )
    );

    let run_json = |r: &Run| {
        Value::obj(vec![
            ("mode", Value::str(r.mode)),
            ("shards", Value::num_u(r.shards as u64)),
            ("clients", Value::num_u(r.clients as u64)),
            (
                "requests",
                Value::num_u((r.clients * REQS_PER_CLIENT) as u64),
            ),
            ("ok", Value::num_u(r.ok)),
            ("shed", Value::num_u(r.shed)),
            ("wall_s", Value::Num(r.wall_s)),
            ("throughput_rps", Value::Num(r.ok as f64 / r.wall_s)),
            ("p50_ms", Value::Num(r.p50_ms)),
            ("p99_ms", Value::Num(r.p99_ms)),
            (
                "shed_kind",
                match &r.shed_kind {
                    Some(k) => Value::str(k),
                    None => Value::Null,
                },
            ),
        ])
    };
    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
                ("raw_bytes", Value::num_u(w.trajectory.nbytes() as u64)),
            ]),
        ),
        ("cores", Value::num_u(cores as u64)),
        ("datasets", Value::num_u(DATASETS as u64)),
        ("reqs_per_client", Value::num_u(REQS_PER_CLIENT as u64)),
        ("runs", Value::Arr(runs.iter().map(run_json).collect())),
    ]);
    std::fs::write("BENCH_network.json", json.to_vec()).expect("write BENCH_network.json");
    println!("  wrote BENCH_network.json\n");
}

/// `repro serve [--port N] [--smoke]` — run a standalone `ada-server`
/// over a fresh paper-prototype instance. With `--smoke`, a loopback
/// client round-trips ping/ingest/query/range/cache-stats against the
/// live server and the process exits; without it, the daemon serves
/// until killed.
fn serve(port: u16, smoke: bool) {
    use ada_client::{Client, ClientConfig};
    use ada_frontend::{Frontend, FrontendConfig};
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use ada_server::{Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let ada = Arc::new(query_bench_ada(0));
    let fe = Arc::new(Frontend::new(ada, FrontendConfig::default()));
    let config = ServerConfig {
        addr: format!("127.0.0.1:{}", port),
        ..ServerConfig::default()
    };
    let mut server = match Server::start(fe, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ada-server failed to start: {}", e);
            std::process::exit(1);
        }
    };
    println!("ada-server listening on {}", server.local_addr());

    if smoke {
        let client = Client::new(
            server.local_addr().to_string(),
            ClientConfig {
                name: "smoke".to_string(),
                ..ClientConfig::default()
            },
        );
        let w = ada_workload::gpcr_workload(500, 8, 7);
        let pdb_text = write_pdb(&w.system);
        let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
        client.ping().expect("smoke: ping");
        let ing = client
            .ingest("smoke", &pdb_text, &xtc_bytes, 0)
            .expect("smoke: ingest");
        let q = client.query("smoke", Some("p")).expect("smoke: query");
        let r = client
            .query_range("smoke", "p", 0, 8, 2)
            .expect("smoke: query_range");
        let stats = client.cache_stats().expect("smoke: cache stats");
        server.shutdown();
        println!(
            "  smoke OK — ingested {} raw bytes; protein query {} B, strided range {} B; cache {} hit(s) / {} miss(es)",
            ing.raw_bytes,
            q.bytes(),
            r.bytes(),
            stats.hits,
            stats.misses
        );
    } else {
        println!("  serving until killed (ctrl-C to stop)");
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }
}

/// `repro bench-sampling` — the ML-sampling read workload: shuffled
/// epochs of strided `query_range` windows over both tags, swept across
/// decoded-dropping cache budgets (off / partial / full hot set).
/// Prints hit rate, p50/p99 sample latency and per-epoch decoded bytes,
/// and writes BENCH_sampling.json including the headline ratio: bytes
/// decoded per steady-state epoch, cache-off vs full-budget.
fn bench_sampling() {
    use ada_core::{Ada, AdaConfig, IngestInput};
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
    use ada_plfs::ContainerSet;
    use ada_simfs::{LocalFs, SimFileSystem};
    use ada_workload::{shuffled_epochs, SamplingConfig};
    use std::sync::Arc;
    use std::time::Instant;

    const MIB: u64 = 1024 * 1024;
    // off / about half the hot set / comfortably the whole hot set
    // (~15 MiB decoded for 512 frames × 2,000 atoms across both tags;
    // each 64-frame dropping costs ~0.9 MiB, so the partial budget must
    // leave room per shard for at least one payload).
    const BUDGETS: [u64; 3] = [0, 8 * MIB, 64 * MIB];

    let w = ada_workload::gpcr_workload(2_000, 512, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();

    let sampling = SamplingConfig {
        nframes: w.trajectory.len(),
        window: 16,
        stride: 2,
        epochs: 4,
        tags: vec!["p".to_string(), "m".to_string()],
        seed: 0xADA,
    };
    let epochs = shuffled_epochs(&sampling);

    let fresh_ada = |budget: u64| -> Ada {
        let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
        let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
        let containers = Arc::new(ContainerSet::new(vec![
            ("ssd".into(), ssd.clone()),
            ("hdd".into(), hdd),
        ]));
        let config = AdaConfig {
            frames_per_dropping: 64, // 512 frames → 8 droppings per tag
            chunk_frames: 16,        // 4 chunks per dropping: windows decode partially
            cache: ada_cache::CacheConfig {
                capacity_bytes: budget,
                shards: 4,
                min_heat: 2,
                readahead: 0,
            },
            ..AdaConfig::paper_prototype("ssd", "hdd")
        };
        let ada = Ada::new(config, containers, ssd);
        ada.ingest(
            "bench",
            IngestInput::Real {
                pdb_text: pdb_text.clone(),
                xtc_bytes: xtc_bytes.clone(),
            },
        )
        .unwrap();
        ada
    };

    struct Sweep {
        budget: u64,
        stats: ada_cache::CacheStats,
        epoch_decoded: Vec<u64>,
        p50_ms: f64,
        p99_ms: f64,
        wall_s: f64,
    }

    let sweeps: Vec<Sweep> = BUDGETS
        .iter()
        .map(|&budget| {
            let ada = fresh_ada(budget);
            let latencies = ada_telemetry::Histogram::new();
            let mut epoch_decoded = Vec::new();
            let mut decoded_before = ada.cache_stats().bytes_decoded;
            let t0 = Instant::now();
            for epoch in &epochs {
                for s in epoch {
                    let tag = Tag::new(s.tag.clone());
                    let t = Instant::now();
                    ada.query_range("bench", &tag, s.start..s.end, s.stride)
                        .unwrap();
                    latencies.record(t.elapsed().as_nanos() as u64);
                }
                let decoded_now = ada.cache_stats().bytes_decoded;
                epoch_decoded.push(decoded_now - decoded_before);
                decoded_before = decoded_now;
            }
            let wall_s = t0.elapsed().as_secs_f64();
            let snap = latencies.snapshot();
            Sweep {
                budget,
                stats: ada.cache_stats(),
                epoch_decoded,
                p50_ms: snap.p50 / 1e6,
                p99_ms: snap.p99 / 1e6,
                wall_s,
            }
        })
        .collect();

    let samples_per_epoch = epochs.first().map_or(0, Vec::len);
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                if s.budget == 0 {
                    "off".to_string()
                } else {
                    format!("{} MiB", s.budget / MIB)
                },
                format!("{:.1}%", s.stats.hit_rate() * 100.0),
                s.stats.evictions.to_string(),
                format!("{:.3}", s.p50_ms),
                format!("{:.3}", s.p99_ms),
                s.epoch_decoded
                    .iter()
                    .map(|b| format!("{:.1}", *b as f64 / MIB as f64))
                    .collect::<Vec<_>>()
                    .join(" / "),
                format!("{:.1}", s.wall_s * 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "ML-sampling sweep — {} shuffled epochs × {} samples (window {}, stride {})",
                sampling.epochs, samples_per_epoch, sampling.window, sampling.stride
            ),
            &[
                "cache budget",
                "hit rate",
                "evict",
                "p50 (ms)",
                "p99 (ms)",
                "decoded MiB/epoch",
                "wall (ms)"
            ],
            &rows
        )
    );

    // Headline: steady-state (epochs after the first) decode volume,
    // cache-off vs the hot-set-covering budget.
    let steady = |s: &Sweep| s.epoch_decoded.iter().skip(1).sum::<u64>();
    let off_bytes = steady(&sweeps[0]);
    let full_bytes = steady(sweeps.last().expect("at least one sweep"));
    let reduction = off_bytes as f64 / full_bytes.max(1) as f64;
    println!(
        "  steady-state decode: cache-off {:.1} MiB vs full-budget {:.1} MiB per {} epochs — {} less decoding (target >= 5x)\n",
        off_bytes as f64 / MIB as f64,
        full_bytes as f64 / MIB as f64,
        sampling.epochs - 1,
        if full_bytes == 0 {
            "fully amortized (0 bytes)".to_string()
        } else {
            format!("{:.0}x", reduction)
        }
    );

    let sweep_json = |s: &Sweep| {
        Value::obj(vec![
            ("budget_bytes", Value::num_u(s.budget)),
            ("hit_rate", Value::Num(s.stats.hit_rate())),
            ("hits", Value::num_u(s.stats.hits)),
            ("misses", Value::num_u(s.stats.misses)),
            ("bypasses", Value::num_u(s.stats.bypasses)),
            ("evictions", Value::num_u(s.stats.evictions)),
            ("resident_hwm_bytes", Value::num_u(s.stats.resident_hwm)),
            ("bytes_decoded", Value::num_u(s.stats.bytes_decoded)),
            (
                "bytes_served_from_cache",
                Value::num_u(s.stats.bytes_served_from_cache),
            ),
            (
                "epoch_bytes_decoded",
                Value::Arr(s.epoch_decoded.iter().map(|&b| Value::num_u(b)).collect()),
            ),
            ("p50_ms", Value::Num(s.p50_ms)),
            ("p99_ms", Value::Num(s.p99_ms)),
            ("wall_s", Value::Num(s.wall_s)),
        ])
    };
    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
                ("raw_bytes", Value::num_u(w.trajectory.nbytes() as u64)),
                ("frames_per_dropping", Value::num_u(64)),
                ("chunk_frames", Value::num_u(16)),
            ]),
        ),
        (
            "schedule",
            Value::obj(vec![
                ("window", Value::num_u(sampling.window as u64)),
                ("stride", Value::num_u(sampling.stride as u64)),
                ("epochs", Value::num_u(sampling.epochs as u64)),
                ("samples_per_epoch", Value::num_u(samples_per_epoch as u64)),
                (
                    "tags",
                    Value::Arr(sampling.tags.iter().map(Value::str).collect()),
                ),
                ("seed", Value::num_u(sampling.seed)),
            ]),
        ),
        (
            "sweeps",
            Value::Arr(sweeps.iter().map(sweep_json).collect()),
        ),
        (
            "steady_state_reduction",
            Value::obj(vec![
                ("cache_off_bytes", Value::num_u(off_bytes)),
                ("full_budget_bytes", Value::num_u(full_bytes)),
                ("factor", Value::Num(reduction)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_sampling.json", json.to_vec()).expect("write BENCH_sampling.json");
    println!("  wrote BENCH_sampling.json\n");
}

/// `repro profile-query` — answer "is index, read, decode, or reassembly
/// the retrieval ceiling?" with measured telemetry: run the serial and
/// the parallel query over the same multi-dropping dataset, print each
/// stage's busy time and share, and write PROFILE_query.json.
fn profile_query() {
    use ada_core::IngestInput;
    use ada_json::Value;
    use ada_mdformats::write_pdb;
    use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};

    let w = ada_workload::gpcr_workload(2_000, 500, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();

    let run = |query_threads: usize| {
        let ada = query_bench_ada(query_threads);
        ada.ingest(
            "profiled",
            IngestInput::Real {
                pdb_text: pdb_text.clone(),
                xtc_bytes: xtc_bytes.clone(),
            },
        )
        .unwrap();
        ada.query("profiled", None)
            .unwrap()
            .profile
            .expect("telemetry must be enabled for profile-query")
    };
    let serial = run(0);
    let parallel = run(4);

    print_stage_profile("Query", &serial);
    print_stage_profile("Query", &parallel);

    let json = Value::obj(vec![
        (
            "workload",
            Value::obj(vec![
                ("natoms", Value::num_u(w.system.len() as u64)),
                ("nframes", Value::num_u(w.trajectory.len() as u64)),
            ]),
        ),
        ("serial", serial.to_json()),
        ("parallel", parallel.to_json()),
    ]);
    std::fs::write("PROFILE_query.json", json.to_vec()).expect("write PROFILE_query.json");
    println!("  wrote PROFILE_query.json\n");
}
