//! Serial vs parallel query/retrieval: full-frame and protein-subset
//! reads through `Ada::query` at 0 (serial reference) and 1/2/4/8 decode
//! workers over a multi-dropping 1 000-frame GPCR dataset.

use ada_core::{Ada, AdaConfig, IngestInput};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use ada_workload::gpcr_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// ADA with small droppings (64 frames each) so retrieval has real
/// per-backend and per-dropping fan-out, pre-loaded with the workload.
fn ingested_ada(query_threads: usize, pdb_text: &str, xtc_bytes: &[u8]) -> Ada {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        query_threads,
        frames_per_dropping: 64,
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    let ada = Ada::new(config, containers, ssd);
    ada.ingest(
        "bench",
        IngestInput::Real {
            pdb_text: pdb_text.to_string(),
            xtc_bytes: xtc_bytes.to_vec(),
        },
    )
    .unwrap();
    ada
}

fn bench_query(c: &mut Criterion) {
    let w = gpcr_workload(2_000, 1_000, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let protein = Tag::protein();

    for (label, tag) in [("full", None), ("protein", Some(&protein))] {
        let mut g = c.benchmark_group(format!("query_pipeline/{}", label));
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_secs(2));

        let serial = ingested_ada(0, &pdb_text, &xtc_bytes);
        let delivered = serial.query("bench", tag).unwrap().data.bytes();
        g.throughput(Throughput::Bytes(delivered));
        g.bench_function("serial", |b| b.iter(|| serial.query("bench", tag).unwrap()));
        for threads in THREAD_COUNTS {
            let ada = ingested_ada(threads, &pdb_text, &xtc_bytes);
            g.bench_with_input(BenchmarkId::new("parallel", threads), &ada, |b, ada| {
                b.iter(|| ada.query("bench", tag).unwrap())
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
