//! Storage-stack benchmarks: PLFS container dispatch, tag-filtered reads,
//! striped-FS operations, and the end-to-end ADA ingest/query path in real
//! (byte-materializing) mode.

use ada_core::{Ada, AdaConfig, IngestInput};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{Content, LocalFs, SimFileSystem, StripedFs};
use ada_workload::gpcr_workload;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn two_backend_set() -> Arc<ContainerSet> {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd),
        ("hdd".into(), hdd),
    ]))
}

fn bench_plfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("plfs");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("append_tagged_1MB", |b| {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        let payload = vec![0u8; 1_000_000];
        b.iter(|| {
            cs.append_tagged("bar", "p", "ssd", Content::real(payload.clone()))
                .unwrap()
        });
    });
    g.bench_function("read_tagged_100_droppings", |b| {
        let cs = two_backend_set();
        cs.create_logical("bar").unwrap();
        for i in 0..100 {
            let tag = if i % 2 == 0 { "p" } else { "m" };
            let backend = if i % 2 == 0 { "ssd" } else { "hdd" };
            cs.append_tagged("bar", tag, backend, Content::real(vec![i as u8; 10_000]))
                .unwrap();
        }
        b.iter(|| cs.read_tagged("bar", "p").unwrap());
    });
    g.finish();
}

fn bench_striped_fs(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_fs");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let fs = StripedFs::pvfs_ssd_3nodes();
    let data: Vec<u8> = (0..4_000_000u32).map(|i| i as u8).collect();
    fs.create("/f", Content::real(data)).unwrap();
    g.throughput(Throughput::Bytes(4_000_000));
    g.bench_function("read_4MB_real", |b| b.iter(|| fs.read("/f").unwrap()));
    g.bench_function("read_range_64k", |b| {
        b.iter(|| fs.read_range("/f", 1_000_000, 65_536).unwrap())
    });
    g.finish();
}

fn bench_ada_end_to_end(c: &mut Criterion) {
    let w = gpcr_workload(8_000, 4, 17);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let mut g = c.benchmark_group("ada_end_to_end");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));
    g.bench_function("ingest_real", |b| {
        b.iter(|| {
            let cs = two_backend_set();
            let label_fs: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
            let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, label_fs);
            ada.ingest(
                "bar",
                IngestInput::Real {
                    pdb_text: pdb_text.clone(),
                    xtc_bytes: xtc_bytes.clone(),
                },
            )
            .unwrap()
        })
    });
    // Query benches over one pre-ingested instance.
    let cs = two_backend_set();
    let label_fs: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, label_fs);
    ada.ingest(
        "bar",
        IngestInput::Real {
            pdb_text: pdb_text.clone(),
            xtc_bytes: xtc_bytes.clone(),
        },
    )
    .unwrap();
    g.bench_function("query_protein", |b| {
        b.iter(|| ada.query("bar", Some(&Tag::protein())).unwrap())
    });
    g.bench_function("query_all", |b| b.iter(|| ada.query("bar", None).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_plfs, bench_striped_fs, bench_ada_end_to_end);
criterion_main!(benches);
