//! Serial vs pipelined ingest: the frame-parallel splitter
//! (`split_trajectory_opts`) and the streaming three-stage ingest
//! pipeline (`Ada::ingest_streaming`) at 1/2/4/8 worker threads over a
//! 1 000-frame GPCR workload.

use ada_core::{
    categorize_algo1, split_trajectory_opts, split_trajectory_serial, Ada, AdaConfig, SplitOptions,
};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::category::Taxonomy;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use ada_workload::gpcr_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn ada_with(split_threads: usize, pipeline_depth: usize) -> Ada {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        split_threads,
        pipeline_depth,
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    Ada::new(config, containers, ssd)
}

fn bench_splitter(c: &mut Criterion) {
    let w = gpcr_workload(2_000, 1_000, 7);
    let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());
    let mut g = c.benchmark_group("ingest_pipeline/split");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| split_trajectory_serial(&w.trajectory, &labeler).unwrap())
    });
    for threads in THREAD_COUNTS {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| {
                split_trajectory_opts(&w.trajectory, &labeler, SplitOptions::with_threads(t))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_streaming_ingest(c: &mut Criterion) {
    let w = gpcr_workload(2_000, 1_000, 7);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let mut g = c.benchmark_group("ingest_pipeline/streaming");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));
    // A fresh ADA per iteration: datasets are create-once and the
    // in-memory backends would otherwise accumulate droppings.
    g.bench_function("serial", |b| {
        b.iter(|| {
            ada_with(1, 1)
                .ingest_streaming("bench", &pdb_text, &xtc_bytes, 128)
                .unwrap()
        })
    });
    for threads in THREAD_COUNTS {
        g.bench_with_input(BenchmarkId::new("pipelined", threads), &threads, |b, &t| {
            b.iter(|| {
                ada_with(t, 2)
                    .ingest_streaming("bench", &pdb_text, &xtc_bytes, 128)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_splitter, bench_streaming_ingest);
criterion_main!(benches);
