//! Telemetry overhead budget: the same instrumented split hot loop with
//! telemetry enabled vs `set_enabled(false)`.
//!
//! The loop is the serial splitter wrapped in a `span!` that records
//! bytes/frames — exactly the shape `Ada::ingest` uses. With telemetry
//! disabled every record site collapses to a relaxed load + branch, so
//! the enabled/disabled delta IS the telemetry cost.
//!
//! A second group measures request *tracing* the same way: a full
//! ingest+query roundtrip through the `Ada` facade (which mints a trace
//! root and records a span tree per request) with tracing on vs
//! `trace::set_tracing(false)`. Tracing must fit the same <2 % budget.
//!
//! The <2 % regression assertions are off by default (Criterion
//! wall-clock noise on shared CI would flake them); opt in with
//! `ADA_TELEMETRY_OVERHEAD_ASSERT=1 cargo bench -p ada-bench --bench
//! telemetry_overhead`.

use ada_core::{categorize_algo1, split_trajectory_serial, Ada, AdaConfig, IngestInput, Labeler};
use ada_mdformats::Trajectory;
use ada_mdmodel::category::Taxonomy;
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use ada_telemetry::{span, trace};
use ada_workload::gpcr_workload;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use std::time::Instant;

fn split_instrumented(traj: &Trajectory, labeler: &Labeler) -> u64 {
    let mut s = span!("bench.split");
    let out = split_trajectory_serial(traj, labeler).unwrap();
    s.add_bytes(out.raw_bytes);
    s.add_frames(traj.len() as u64);
    out.raw_bytes
}

/// Mean ns per instrumented split over `reps` runs.
fn measure(traj: &Trajectory, labeler: &Labeler, reps: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        black_box(split_instrumented(traj, labeler));
    }
    t.elapsed().as_nanos() as f64 / f64::from(reps)
}

fn bench_overhead(c: &mut Criterion) {
    let w = gpcr_workload(20_000, 6, 5);
    let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));

    ada_telemetry::set_enabled(true);
    g.bench_function("split_telemetry_enabled", |b| {
        b.iter(|| split_instrumented(&w.trajectory, &labeler))
    });
    ada_telemetry::set_enabled(false);
    g.bench_function("split_telemetry_disabled", |b| {
        b.iter(|| split_instrumented(&w.trajectory, &labeler))
    });
    ada_telemetry::set_enabled(true);
    g.finish();

    if std::env::var("ADA_TELEMETRY_OVERHEAD_ASSERT").as_deref() == Ok("1") {
        // Interleave the two modes so drift hits both equally; warm up first.
        let (reps, rounds) = (8, 5);
        measure(&w.trajectory, &labeler, reps);
        let (mut on, mut off) = (0.0, 0.0);
        for _ in 0..rounds {
            ada_telemetry::set_enabled(true);
            on += measure(&w.trajectory, &labeler, reps);
            ada_telemetry::set_enabled(false);
            off += measure(&w.trajectory, &labeler, reps);
        }
        ada_telemetry::set_enabled(true);
        let overhead = on / off - 1.0;
        println!(
            "telemetry overhead on split loop: {:+.3}% (enabled {:.2} ms, disabled {:.2} ms)",
            overhead * 100.0,
            on / 1e6 / f64::from(rounds),
            off / 1e6 / f64::from(rounds),
        );
        assert!(
            overhead < 0.02,
            "telemetry overhead {:.3}% exceeds the 2% budget",
            overhead * 100.0
        );
    }
}

fn tracing_bench_ada() -> Ada {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), containers, ssd)
}

/// One traced request pair: ingest a fresh dataset (unique name per rep
/// — ingest refuses to overwrite), query the protein tag, delete. Each
/// call mints a trace root and records its span tree when tracing is on.
fn roundtrip(ada: &Ada, pdb_text: &str, xtc_bytes: &[u8], rep: u64) -> u64 {
    let dataset = format!("ovh{}", rep);
    ada.ingest(
        &dataset,
        IngestInput::Real {
            pdb_text: pdb_text.to_string(),
            xtc_bytes: xtc_bytes.to_vec(),
        },
    )
    .unwrap();
    let report = ada.query(&dataset, Some(&Tag::protein())).unwrap();
    ada.delete_dataset(&dataset).unwrap();
    report.data.bytes()
}

/// Mean ns per traced ingest+query roundtrip over `reps` runs.
fn measure_roundtrip(ada: &Ada, pdb: &str, xtc: &[u8], reps: u64, base: &mut u64) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        *base += 1;
        black_box(roundtrip(ada, pdb, xtc, *base));
    }
    t.elapsed().as_nanos() as f64 / reps as f64
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let w = gpcr_workload(2_000, 20, 5);
    let pdb_text = ada_mdformats::write_pdb(&w.system);
    let xtc_bytes =
        ada_mdformats::xtc::write_xtc(&w.trajectory, ada_mdformats::xtc::DEFAULT_PRECISION)
            .unwrap();
    let ada = tracing_bench_ada();
    let mut rep = 0u64;

    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));

    trace::set_tracing(true);
    g.bench_function("ingest_query_tracing_enabled", |b| {
        b.iter(|| {
            rep += 1;
            roundtrip(&ada, &pdb_text, &xtc_bytes, rep)
        })
    });
    trace::set_tracing(false);
    g.bench_function("ingest_query_tracing_disabled", |b| {
        b.iter(|| {
            rep += 1;
            roundtrip(&ada, &pdb_text, &xtc_bytes, rep)
        })
    });
    trace::set_tracing(true);
    g.finish();

    if std::env::var("ADA_TELEMETRY_OVERHEAD_ASSERT").as_deref() == Ok("1") {
        let (reps, rounds) = (4u64, 5u32);
        measure_roundtrip(&ada, &pdb_text, &xtc_bytes, reps, &mut rep);
        let (mut on, mut off) = (0.0, 0.0);
        for _ in 0..rounds {
            trace::set_tracing(true);
            on += measure_roundtrip(&ada, &pdb_text, &xtc_bytes, reps, &mut rep);
            trace::set_tracing(false);
            off += measure_roundtrip(&ada, &pdb_text, &xtc_bytes, reps, &mut rep);
        }
        trace::set_tracing(true);
        trace::recorder().clear();
        let overhead = on / off - 1.0;
        println!(
            "tracing overhead on ingest+query roundtrip: {:+.3}% (enabled {:.2} ms, disabled {:.2} ms)",
            overhead * 100.0,
            on / 1e6 / f64::from(rounds),
            off / 1e6 / f64::from(rounds),
        );
        assert!(
            overhead < 0.02,
            "tracing overhead {:.3}% exceeds the 2% budget",
            overhead * 100.0
        );
    }
}

criterion_group!(benches, bench_overhead, bench_tracing_overhead);
criterion_main!(benches);
