//! Telemetry overhead budget: the same instrumented split hot loop with
//! telemetry enabled vs `set_enabled(false)`.
//!
//! The loop is the serial splitter wrapped in a `span!` that records
//! bytes/frames — exactly the shape `Ada::ingest` uses. With telemetry
//! disabled every record site collapses to a relaxed load + branch, so
//! the enabled/disabled delta IS the telemetry cost.
//!
//! The <2 % regression assertion is off by default (Criterion wall-clock
//! noise on shared CI would flake it); opt in with
//! `ADA_TELEMETRY_OVERHEAD_ASSERT=1 cargo bench -p ada-bench --bench
//! telemetry_overhead`.

use ada_core::{categorize_algo1, split_trajectory_serial, Labeler};
use ada_mdformats::Trajectory;
use ada_mdmodel::category::Taxonomy;
use ada_telemetry::span;
use ada_workload::gpcr_workload;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

fn split_instrumented(traj: &Trajectory, labeler: &Labeler) -> u64 {
    let mut s = span!("bench.split");
    let out = split_trajectory_serial(traj, labeler).unwrap();
    s.add_bytes(out.raw_bytes);
    s.add_frames(traj.len() as u64);
    out.raw_bytes
}

/// Mean ns per instrumented split over `reps` runs.
fn measure(traj: &Trajectory, labeler: &Labeler, reps: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..reps {
        black_box(split_instrumented(traj, labeler));
    }
    t.elapsed().as_nanos() as f64 / f64::from(reps)
}

fn bench_overhead(c: &mut Criterion) {
    let w = gpcr_workload(20_000, 6, 5);
    let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));

    ada_telemetry::set_enabled(true);
    g.bench_function("split_telemetry_enabled", |b| {
        b.iter(|| split_instrumented(&w.trajectory, &labeler))
    });
    ada_telemetry::set_enabled(false);
    g.bench_function("split_telemetry_disabled", |b| {
        b.iter(|| split_instrumented(&w.trajectory, &labeler))
    });
    ada_telemetry::set_enabled(true);
    g.finish();

    if std::env::var("ADA_TELEMETRY_OVERHEAD_ASSERT").as_deref() == Ok("1") {
        // Interleave the two modes so drift hits both equally; warm up first.
        let (reps, rounds) = (8, 5);
        measure(&w.trajectory, &labeler, reps);
        let (mut on, mut off) = (0.0, 0.0);
        for _ in 0..rounds {
            ada_telemetry::set_enabled(true);
            on += measure(&w.trajectory, &labeler, reps);
            ada_telemetry::set_enabled(false);
            off += measure(&w.trajectory, &labeler, reps);
        }
        ada_telemetry::set_enabled(true);
        let overhead = on / off - 1.0;
        println!(
            "telemetry overhead on split loop: {:+.3}% (enabled {:.2} ms, disabled {:.2} ms)",
            overhead * 100.0,
            on / 1e6 / f64::from(rounds),
            off / 1e6 / f64::from(rounds),
        );
        assert!(
            overhead < 0.02,
            "telemetry overhead {:.3}% exceeds the 2% budget",
            overhead * 100.0
        );
    }
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
