//! ADA data pre-processor benchmarks: Algorithm 1 (categorizer), the
//! labeler's range structure, and the frame splitter.

use ada_core::{categorize_algo1, split_trajectory};
use ada_mdmodel::category::Taxonomy;
use ada_workload::gpcr_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_categorizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("categorizer_algo1");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for natoms in [5_000usize, 20_000, 45_000] {
        let w = gpcr_workload(natoms, 1, 3);
        g.throughput(Throughput::Elements(w.system.len() as u64));
        let paper = Taxonomy::paper_default();
        g.bench_with_input(BenchmarkId::new("paper_taxonomy", natoms), &w, |b, w| {
            b.iter(|| categorize_algo1(&w.system, &paper))
        });
        let fine = Taxonomy::fine_grained();
        g.bench_with_input(BenchmarkId::new("fine_taxonomy", natoms), &w, |b, w| {
            b.iter(|| categorize_algo1(&w.system, &fine))
        });
    }
    g.finish();
}

fn bench_splitter(c: &mut Criterion) {
    let w = gpcr_workload(20_000, 6, 5);
    let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());
    let mut g = c.benchmark_group("splitter");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(w.trajectory.nbytes() as u64));
    g.bench_function("split_by_paper_tags", |b| {
        b.iter(|| split_trajectory(&w.trajectory, &labeler).unwrap())
    });
    let fine = categorize_algo1(&w.system, &Taxonomy::fine_grained());
    g.bench_function("split_by_fine_tags", |b| {
        b.iter(|| split_trajectory(&w.trajectory, &fine).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_categorizer, bench_splitter);
criterion_main!(benches);
