//! XTC codec benchmarks.
//!
//! The paper's bottleneck analysis rests on XTC decompression being
//! expensive relative to I/O. These benches measure this repository's real
//! `xdr3dfcoord` implementation: encode and decode throughput, the
//! parallel-decode speedup ADA gets on storage nodes, the header-only
//! index scan, and a precision ablation (quantization step vs output
//! size).

use ada_mdformats::read_xtc;
use ada_mdformats::xtc::{decode_frames_parallel, index_frames, write_xtc, DEFAULT_PRECISION};
use ada_workload::gpcr_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_roundtrip(c: &mut Criterion) {
    let w = gpcr_workload(20_000, 8, 7);
    let raw_bytes = w.trajectory.nbytes() as u64;
    let encoded = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();

    let mut g = c.benchmark_group("xtc_codec");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(raw_bytes));
    g.bench_function("encode", |b| {
        b.iter(|| write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap())
    });
    g.bench_function("decode", |b| b.iter(|| read_xtc(&encoded).unwrap()));
    g.bench_function("index_frames(header scan)", |b| {
        b.iter(|| index_frames(&encoded).unwrap())
    });
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("decode_parallel", threads),
            &threads,
            |b, &t| b.iter(|| decode_frames_parallel(&encoded, t).unwrap()),
        );
    }
    g.finish();
}

fn bench_precision_ablation(c: &mut Criterion) {
    let w = gpcr_workload(10_000, 4, 11);
    let mut g = c.benchmark_group("xtc_precision_ablation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for precision in [100.0f32, 1000.0, 10000.0] {
        let encoded = write_xtc(&w.trajectory, precision).unwrap();
        eprintln!(
            "precision {:>7}: {} bytes ({:.2} bytes/atom/frame)",
            precision,
            encoded.len(),
            encoded.len() as f64 / (w.trajectory.natoms() * w.trajectory.len()) as f64
        );
        g.bench_with_input(
            BenchmarkId::new("encode", precision as u32),
            &precision,
            |b, &p| b.iter(|| write_xtc(&w.trajectory, p).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_roundtrip, bench_precision_ablation);
criterion_main!(benches);
