//! Renderer benchmarks: bond inference and frame rendering, including the
//! protein-subset vs full-system contrast that motivates ADA (less data →
//! proportionally cheaper rendering) and the crossbeam frame fan-out.

use ada_mdmodel::{infer_bonds, Category};
use ada_vmdsim::{render_frame, render_trajectory, RenderOptions};
use ada_workload::gpcr_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_bonds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bond_inference");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for natoms in [2_000usize, 10_000] {
        let w = gpcr_workload(natoms, 1, 9);
        g.throughput(Throughput::Elements(w.system.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(natoms), &w, |b, w| {
            b.iter(|| {
                infer_bonds(
                    &w.system,
                    &w.system.coords,
                    ada_mdmodel::bonds::DEFAULT_TOLERANCE,
                )
            })
        });
    }
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let w = gpcr_workload(10_000, 6, 23);
    let bonds = infer_bonds(
        &w.system,
        &w.system.coords,
        ada_mdmodel::bonds::DEFAULT_TOLERANCE,
    );
    let opts = RenderOptions::default();
    let mut g = c.benchmark_group("render");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("full_system_frame", |b| {
        b.iter(|| render_frame(&w.system, &bonds, &w.trajectory.frames[0].coords, &opts))
    });

    // Protein-only subset (the Fig. 1b view ADA enables).
    let prot_ranges = w.system.category_ranges(Category::Protein);
    let prot_sys = w.system.subset(&prot_ranges);
    let prot_bonds = infer_bonds(
        &prot_sys,
        &prot_sys.coords,
        ada_mdmodel::bonds::DEFAULT_TOLERANCE,
    );
    let prot_coords = prot_ranges.gather(&w.trajectory.frames[0].coords);
    g.bench_function("protein_subset_frame", |b| {
        b.iter(|| render_frame(&prot_sys, &prot_bonds, &prot_coords, &opts))
    });

    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("trajectory_parallel", threads),
            &threads,
            |b, &t| b.iter(|| render_trajectory(&w.system, &bonds, &w.trajectory.frames, &opts, t)),
        );
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    use ada_vmdsim::{radius_of_gyration, rmsd_series, rmsf};
    let w = gpcr_workload(10_000, 20, 31);
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("rmsd_series_20_frames", |b| {
        b.iter(|| rmsd_series(&w.trajectory.frames, 4))
    });
    g.bench_function("rmsf_20_frames", |b| b.iter(|| rmsf(&w.trajectory.frames)));
    g.bench_function("radius_of_gyration", |b| {
        b.iter(|| radius_of_gyration(&w.system, &w.trajectory.frames[0].coords))
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    use ada_mdmodel::parse_selection;
    let w = gpcr_workload(20_000, 1, 17);
    let mut g = c.benchmark_group("selection");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, text) in [
        ("category", "protein"),
        ("boolean", "protein or (water and not hydrogen)"),
        ("backbone", "backbone"),
        ("spatial_within", "water and within 0.5 of protein"),
    ] {
        let sel = parse_selection(text).unwrap();
        g.bench_function(name, |b| b.iter(|| sel.evaluate(&w.system)));
    }
    g.bench_function("parse", |b| {
        b.iter(|| parse_selection("protein or (water and not hydrogen)").unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bonds,
    bench_render,
    bench_analysis,
    bench_selection
);
criterion_main!(benches);
