//! One benchmark per paper table/figure: each bench regenerates the
//! table's/figure's full data series through the platform harness (the
//! same code the `repro` binary prints), so `cargo bench` exercises every
//! experiment end to end. The printed rows themselves come from
//! `cargo run -p ada-bench --bin repro -- all`.

use ada_platforms::figures::{fig10, fig7, fig8, fig9, table1, table2, table6};
use ada_platforms::{run_scenario, Platform, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("table1", |b| b.iter(table1));
    g.bench_function("table2", |b| b.iter(table2));
    g.bench_function("table6", |b| b.iter(table6));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("fig7_ssd_server_abc", |b| b.iter(fig7));
    g.bench_function("fig8_cpu_breakdown", |b| b.iter(fig8));
    g.bench_function("fig9_cluster_abc", |b| b.iter(fig9));
    g.bench_function("fig10_fatnode_abcd", |b| b.iter(fig10));
    g.finish();
}

fn bench_single_runs(c: &mut Criterion) {
    // The cost of one scenario execution through simfs+plfs+ada-core.
    let mut g = c.benchmark_group("scenario_run");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let ssd = Platform::ssd_server();
    let fat = Platform::fatnode();
    for (name, platform, scenario, frames) in [
        ("ssd_c_ext4_5006", &ssd, Scenario::CTraditional, 5006u64),
        ("ssd_ada_protein_5006", &ssd, Scenario::AdaProtein, 5006),
        ("fat_xfs_1876800", &fat, Scenario::CTraditional, 1_876_800),
        (
            "fat_ada_protein_5004800",
            &fat,
            Scenario::AdaProtein,
            5_004_800,
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| run_scenario(platform, scenario, frames))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_single_runs);
criterion_main!(benches);
