//! Fixture tests for the lexer and the rule engine.
//!
//! The fixture workspaces live under `tests/fixtures/` — outside any cargo
//! target, so their deliberately-broken sources are never compiled; they are
//! only lexed by ada-lint itself.

use ada_lint::lexer::{self, TokenKind};
use ada_lint::run_workspace;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn lexer_never_tokenizes_unwrap_inside_strings_or_comments() {
    let src = concat!(
        "let s = \"call .unwrap() or panic!() here\";\n",
        "/* outer /* nested unwrap() */ done */\n",
        "let r = r##\"raw \"quoted\" unwrap()\"##;\n",
        "// trailing unwrap() in a line comment\n",
    );
    let toks = lexer::lex(src);
    assert!(
        toks.iter()
            .all(|t| !(t.kind == TokenKind::Ident && t.text == "unwrap")),
        "unwrap leaked out of a string/comment as an identifier"
    );
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokenKind::Str).count(),
        2,
        "plain + raw string should each be one Str token"
    );
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokenKind::BlockComment)
            .count(),
        1,
        "nested block comment must collapse into one token"
    );
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .count(),
        1
    );
}

#[test]
fn lexer_distinguishes_lifetimes_from_char_literals() {
    let toks = lexer::lex("fn f<'a>(x: &'a str) -> char { 'x' }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, ["'x'"]);
}

#[test]
fn lexer_spans_are_one_based() {
    let toks = lexer::lex("ab cd\n  ef");
    let spans: Vec<(&str, u32, u32)> = toks
        .iter()
        .map(|t| (t.text.as_str(), t.line, t.col))
        .collect();
    assert_eq!(spans, [("ab", 1, 1), ("cd", 1, 4), ("ef", 2, 3)]);
}

/// The dirty fixture exercises every rule; expectations are exact
/// `(rule, line, col, suppressed)` tuples, so spans cannot drift.
#[test]
fn fixture_workspace_reports_every_rule_with_exact_spans() {
    let report = run_workspace(&fixture("ws")).unwrap();
    assert_eq!(report.files_scanned, 3, "core lib + core bin + bench lib");
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.path == "crates/core/src/lib.rs"),
        "bench crates and bin targets must not produce findings: {:?}",
        report.diagnostics
    );
    let got: Vec<(&str, u32, u32, bool)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.col, d.suppressed.is_some()))
        .collect();
    let expected = [
        ("forbid-unsafe", 1, 1, false), // missing #![forbid(unsafe_code)]
        ("no-std-sync-in-hot-crates", 2, 16, false),
        ("error-kind-exhaustive", 8, 5, false), // variant C unmapped
        ("error-kind-exhaustive", 15, 23, false), // duplicate kind "a"
        ("error-kind-exhaustive", 16, 13, false), // wildcard arm
        ("no-panic-in-lib", 24, 7, false),
        ("no-panic-in-lib", 30, 15, true), // allow on the line above
        ("no-panic-in-lib", 31, 15, false), // allow covers exactly one line
        ("bounded-channels-only", 36, 28, false), // turbofish form
        ("no-print-in-lib", 41, 5, false),
        ("forbid-unsafe", 46, 5, false), // `unsafe` token
        ("unused-allow", 49, 1, false),
        ("malformed-allow", 52, 1, false),
    ];
    assert_eq!(got, expected);
}

#[test]
fn allow_comment_suppresses_exactly_one_finding_and_keeps_its_reason() {
    let report = run_workspace(&fixture("ws")).unwrap();
    let suppressed: Vec<_> = report.suppressed().collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 30);
    assert_eq!(
        suppressed[0].suppressed.as_deref(),
        Some("fixture: first unwrap is guarded by the caller")
    );
    // The structurally identical unwrap on the next line stays open.
    assert!(report
        .unsuppressed()
        .any(|d| d.rule == "no-panic-in-lib" && d.line == 31));
}

/// The metric catalog pass: literals registered in METRICS.md (and names
/// in test code) pass; unregistered literals fail with exact spans. The
/// `ws`/`clean_ws` fixtures have no METRICS.md, so the pass is skipped
/// there — their exact-tuple expectations above stay valid.
#[test]
fn metric_names_must_be_registered_in_the_catalog() {
    let report = run_workspace(&fixture("metrics_ws")).unwrap();
    let got: Vec<(&str, u32, u32, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.col, d.message.as_str()))
        .collect();
    assert_eq!(got.len(), 2, "{:?}", got);
    for (rule, _, _, _) in &got {
        assert_eq!(*rule, "metric-name-registered");
    }
    assert_eq!((got[0].1, got[0].2), (9, 19), "histogram literal span");
    assert!(got[0].3.contains("\"app.unknown_ns\""), "{}", got[0].3);
    assert_eq!((got[1].1, got[1].2), (10, 25), "trace root literal span");
    assert!(got[1].3.contains("\"app.trace\""), "{}", got[1].3);
}

#[test]
fn clean_workspace_has_no_findings() {
    let report = run_workspace(&fixture("clean_ws")).unwrap();
    assert_eq!(report.files_scanned, 1);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn json_report_parses_back_with_per_rule_counts() {
    let report = run_workspace(&fixture("ws")).unwrap();
    let v = ada_json::parse(&report.to_json().to_vec()).unwrap();
    assert_eq!(v.field("schema").unwrap().as_str().unwrap(), "ada-lint/2");
    assert_eq!(v.field("files_scanned").unwrap().as_u64().unwrap(), 3);
    assert_eq!(v.field("unsuppressed_total").unwrap().as_u64().unwrap(), 12);
    assert_eq!(v.field("suppressed_total").unwrap().as_u64().unwrap(), 1);

    let rules = v.field("rules").unwrap();
    let count = |rule: &str, key: &str| {
        rules
            .field(rule)
            .unwrap()
            .field(key)
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert_eq!(count("no-panic-in-lib", "unsuppressed"), 2);
    assert_eq!(count("no-panic-in-lib", "suppressed"), 1);
    assert_eq!(count("error-kind-exhaustive", "unsuppressed"), 3);
    assert_eq!(count("bounded-channels-only", "unsuppressed"), 1);
    assert_eq!(count("no-std-sync-in-hot-crates", "unsuppressed"), 1);
    assert_eq!(count("no-print-in-lib", "unsuppressed"), 1);
    assert_eq!(count("forbid-unsafe", "unsuppressed"), 2);
    assert_eq!(count("malformed-allow", "unsuppressed"), 1);
    assert_eq!(count("unused-allow", "unsuppressed"), 1);
    // v2 additions: per-rule distinct-file counts (all findings live in
    // the one dirty file) and zeroed entries for rules that never fired.
    assert_eq!(count("no-panic-in-lib", "files"), 1);
    assert_eq!(count("lock-order-cycle", "files"), 0);
    assert_eq!(count("lock-order-cycle", "unsuppressed"), 0);

    assert_eq!(v.field("findings").unwrap().as_arr().unwrap().len(), 12);
    let sups = v.field("suppressions").unwrap().as_arr().unwrap();
    assert_eq!(sups.len(), 1);
    assert_eq!(
        sups[0].field("allow_reason").unwrap().as_str().unwrap(),
        "fixture: first unwrap is guarded by the caller"
    );
}

/// Acceptance criterion: `--deny` exits non-zero when fixture violations
/// are present and zero on a clean tree.
#[test]
fn deny_flag_drives_the_exit_code() {
    let bin = env!("CARGO_BIN_EXE_ada-lint");

    let dirty = std::process::Command::new(bin)
        .args(["--workspace", "--deny", "--root"])
        .arg(fixture("ws"))
        .output()
        .unwrap();
    assert_eq!(dirty.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:24:7 [no-panic-in-lib]"),
        "diagnostic lines must be span-accurate: {}",
        stdout
    );

    let clean = std::process::Command::new(bin)
        .args(["--workspace", "--deny", "--root"])
        .arg(fixture("clean_ws"))
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&clean.stdout).contains("0 findings"));
}
