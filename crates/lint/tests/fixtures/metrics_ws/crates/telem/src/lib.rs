#![forbid(unsafe_code)]
//! Metric-name fixture: registered, unregistered, dynamic, and test-only
//! names for the `metric-name-registered` pass. Lexed, never compiled.

pub fn record_metrics(reg: &Registry, op: &str) {
    reg.counter("app.requests").inc();
    reg.gauge("app.depth").set(1);
    let _s = span!("app.stage");
    reg.histogram("app.unknown_ns").record(1);
    let (_c, _g) = root("app.trace");
    reg.counter(&format!("app.{}.ok", op)).inc();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_names_are_exempt() {
        reg.counter("test.scratch").inc();
    }
}
