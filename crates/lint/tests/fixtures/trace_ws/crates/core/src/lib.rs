//! Trace-propagation fixture: spawns in the instrumented `core` crate
//! must receive or capture a `TraceContext`, directly or via a callee.
#![forbid(unsafe_code)]

/// Fixture error enum so the error-kind pass has a map to check.
pub enum AdaError {
    /// IO failed.
    Io,
    /// Bad input.
    Parse,
}

impl AdaError {
    /// Stable kind string per variant.
    pub fn kind(&self) -> &'static str {
        match self {
            AdaError::Io => "io",
            AdaError::Parse => "parse",
        }
    }
}

/// Minimal trace-context stand-in.
#[derive(Clone)]
pub struct TraceContext;

impl TraceContext {
    /// Record a span (no-op in the fixture).
    pub fn mark(&self) {}
}

fn helper(c: TraceContext) {
    c.mark();
}

fn plain_work() -> u64 {
    7
}

/// Finding: the spawned closure reaches no context at all.
pub fn spawn_without_ctx() -> u64 {
    let h = std::thread::spawn(plain_work);
    h.join().unwrap_or(0)
}

/// Non-finding: the closure captures `ctx` directly.
pub fn spawn_with_capture(ctx: TraceContext) {
    let h = std::thread::spawn(move || ctx.mark());
    let _ = h.join();
}

/// Non-finding: the closure reaches a ctx-taking callee (`helper`).
pub fn spawn_via_helper(ctx: TraceContext) {
    let c = ctx;
    let h = std::thread::spawn(move || helper(c));
    let _ = h.join();
}
