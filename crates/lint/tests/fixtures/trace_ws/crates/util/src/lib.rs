//! Uninstrumented crate: spawns here carry no tracing obligation.
#![forbid(unsafe_code)]

fn work() -> u64 {
    1
}

/// Non-finding: `util` is not an instrumented crate.
pub fn spawn_plain() -> u64 {
    let h = std::thread::spawn(work);
    h.join().unwrap_or(1)
}
