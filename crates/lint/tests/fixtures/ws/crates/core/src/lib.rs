//! Fixture crate: every rule fires somewhere in this file.
use std::sync::Mutex;
use std::sync::mpsc;

pub enum AdaError {
    A(String),
    B,
    C,
}

impl AdaError {
    pub fn kind(&self) -> &'static str {
        match self {
            AdaError::A(_) => "a",
            AdaError::B => "a",
            _ => "other",
        }
    }
}

pub fn from_option(x: Option<u32>) -> u32 {
    let s = "strings may say .unwrap() and panic!() freely";
    let _ = s;
    x.unwrap()
}

/// Doc comments may say `.unwrap()` and `panic!()` freely.
pub fn suppressed_and_open(x: Option<u32>) -> u32 {
    // ada-lint: allow(no-panic-in-lib) fixture: first unwrap is guarded by the caller
    let a = x.unwrap();
    let b = x.unwrap();
    a + b
}

pub fn channels_and_locks() {
    let (_tx, _rx) = mpsc::channel::<u32>();
    let _lock = Mutex::new(0u32);
}

pub fn printing() {
    println!("libraries must not print");
}

pub fn dangerous() -> u32 {
    let p = &1u32 as *const u32;
    unsafe { *p }
}

// ada-lint: allow(no-print-in-lib) stale: nothing on the next line prints
pub fn quiet() {}

// ada-lint: allow(definitely-not-a-rule) bogus rule id
pub fn fine() {}

#[cfg(test)]
mod tests {
    #[test]
    fn anything_goes_in_tests() {
        let x: Option<u32> = Some(1);
        x.unwrap();
        println!("ok");
        panic!("fine");
    }
}
