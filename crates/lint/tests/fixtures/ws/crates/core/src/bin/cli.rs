fn main() {
    let x: Option<u32> = Some(5);
    println!("{}", x.unwrap());
}
