#![forbid(unsafe_code)]
//! Bench fixture: the CLI crate may print and panic.
pub fn report(x: Option<u32>) {
    println!("{}", x.unwrap());
}
