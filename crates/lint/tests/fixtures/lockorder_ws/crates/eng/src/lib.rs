//! Lock-ordering fixture: `ab` takes `a` then `b` directly, while `ba`
//! takes `b` and then calls `grab_a`, so the propagated edge `b -> a`
//! closes a cycle with the direct edge `a -> b`.
#![forbid(unsafe_code)]

use parking_lot::Mutex;

/// Engine with two independent locks.
pub struct Eng {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Eng {
    /// Direct edge: acquires `a`, then `b` while `a` is held.
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    /// Transitive acquisition of `a` (no second lock here).
    pub fn grab_a(&self) -> u32 {
        let ga = self.a.lock();
        *ga
    }

    /// Propagated edge: holds `b` across a call that acquires `a`.
    pub fn ba(&self) -> u32 {
        let gb = self.b.lock();
        *gb + self.grab_a()
    }

    /// Consistent order: drops `a` before taking `b` — no reverse edge.
    pub fn consistent(&self) -> u32 {
        let ga = self.a.lock();
        let x = *ga;
        drop(ga);
        let gb = self.b.lock();
        x + *gb
    }
}
