//! Blocking-under-lock fixture: channel ops and joins while a guard is
//! live, plus the safe shapes (drop first, suppressed site) for contrast.
#![forbid(unsafe_code)]

use parking_lot::Mutex;
use std::sync::mpsc::{Receiver, SyncSender};

/// Shared pipeline endpoints guarded by mutexes.
pub struct Pipe {
    state: Mutex<u64>,
    tx: SyncSender<u64>,
    rx: Mutex<Receiver<u64>>,
}

impl Pipe {
    /// Finding: sends on a bounded channel while `state` is held.
    pub fn send_under_lock(&self, v: u64) {
        let g = self.state.lock();
        let _ = self.tx.send(*g + v);
    }

    /// Finding: the chained temporary guard on `rx` is live during `recv`.
    pub fn chained_recv(&self) -> u64 {
        self.rx.lock().recv().unwrap_or(0)
    }

    /// Non-finding: the guard is dropped before the send.
    pub fn drop_then_send(&self, v: u64) {
        let g = self.state.lock();
        let x = *g + v;
        drop(g);
        let _ = self.tx.send(x);
    }

    /// Suppressed finding: the mandatory reason documents why it is safe.
    pub fn allowed_send(&self, v: u64) {
        let g = self.state.lock();
        // ada-lint: allow(no-blocking-under-lock) fixture: exercises the suppression path
        let _ = self.tx.send(*g + v);
    }
}

/// Finding: joins a worker while holding its result slot's lock.
pub fn join_under_lock(slot: &Mutex<u64>, h: std::thread::JoinHandle<u64>) {
    let mut g = slot.lock();
    *g = h.join().unwrap_or(0);
}
