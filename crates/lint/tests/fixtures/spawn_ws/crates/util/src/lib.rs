//! Unjoined-spawn fixture: discarded handles are findings; joined,
//! collected, and scoped spawns are not.
#![forbid(unsafe_code)]

fn work() -> u64 {
    2
}

/// Two findings: the handle is discarded both ways.
pub fn leaks() {
    std::thread::spawn(work);
    let _ = std::thread::spawn(work);
}

/// Non-finding: the handle is joined.
pub fn joined() -> u64 {
    let h = std::thread::spawn(work);
    h.join().unwrap_or(0)
}

/// Non-finding: handles are collected for a later join.
pub fn collected() -> u64 {
    let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(work)).collect();
    let mut total = 0;
    for h in handles {
        total += h.join().unwrap_or(0);
    }
    total
}

/// Non-finding: scoped spawns join implicitly when the scope ends.
pub fn scoped(vals: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|s| {
        for v in vals {
            s.spawn(|| {
                let _ = v;
            });
        }
        total = vals.len() as u64;
    });
    total
}
