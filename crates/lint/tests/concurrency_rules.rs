//! Fixture tests for the four concurrency passes (DESIGN.md §15).
//!
//! Each fixture workspace pairs true positives with the nearest
//! non-finding shape (drop-before-block, direct capture, scoped spawn,
//! consistent lock order), and expectations are exact
//! `(rule, path, line, col, suppressed)` tuples so spans cannot drift.
//! The same corpora back `ada-lint --self-check` via their `EXPECT.txt`
//! files; the last test here proves that mode's exit code.

use ada_lint::run_workspace;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn tuples(name: &str) -> Vec<(&'static str, String, u32, u32, bool)> {
    run_workspace(&fixture(name))
        .unwrap()
        .diagnostics
        .iter()
        .map(|d| {
            (
                d.rule,
                d.path.clone(),
                d.line,
                d.col,
                d.suppressed.is_some(),
            )
        })
        .collect()
}

/// `ab` acquires `a` then `b`; `ba` holds `b` across a call that acquires
/// `a` — one cycle, reported once, anchored at the first edge's witness.
/// `consistent` drops `a` before taking `b` and adds no reverse edge.
#[test]
fn lock_order_cycle_with_propagated_edge() {
    let got = tuples("lockorder_ws");
    assert_eq!(
        got,
        [(
            "lock-order-cycle",
            "crates/eng/src/lib.rs".to_string(),
            18,
            25,
            false
        )]
    );
}

#[test]
fn lock_order_message_names_both_witness_paths() {
    let report = run_workspace(&fixture("lockorder_ws")).unwrap();
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("Eng::ab"), "direct-edge witness: {}", msg);
    assert!(
        msg.contains("Eng::ba") && msg.contains("Eng::grab_a"),
        "propagated-edge witness must name the callee: {}",
        msg
    );
    assert!(msg.contains("crates/eng/src/lib.rs:31:20"), "{}", msg);
}

/// `send`/chained `recv`/`join` under a live guard fire; dropping the
/// guard first does not, and the annotated site resolves as suppressed.
#[test]
fn blocking_under_lock_variants() {
    let got = tuples("blocking_ws");
    let p = "crates/pipe/src/lib.rs".to_string();
    assert_eq!(
        got,
        [
            ("no-blocking-under-lock", p.clone(), 19, 25, false),
            ("no-blocking-under-lock", p.clone(), 24, 24, false),
            ("no-blocking-under-lock", p.clone(), 39, 25, true),
            ("no-blocking-under-lock", p, 46, 12, false),
        ]
    );
}

/// Only the ctx-less spawn in the instrumented crate fires: direct
/// capture and propagation through a ctx-taking callee are recognized,
/// and the uninstrumented `util` crate is exempt entirely.
#[test]
fn trace_context_propagation() {
    let got = tuples("trace_ws");
    assert_eq!(
        got,
        [(
            "trace-context-propagated",
            "crates/core/src/lib.rs".to_string(),
            42,
            26,
            false
        )]
    );
}

/// Discarded handles (bare statement and `let _ =`) fire; joined,
/// collected-then-joined, and scoped spawns do not.
#[test]
fn unjoined_spawn_variants() {
    let got = tuples("spawn_ws");
    let p = "crates/util/src/lib.rs".to_string();
    assert_eq!(
        got,
        [
            ("unjoined-spawn", p.clone(), 11, 18, false),
            ("unjoined-spawn", p, 12, 26, false),
        ]
    );
}

/// `--self-check` replays every fixture against its `EXPECT.txt` and
/// exits zero only when all of them still match.
#[test]
fn self_check_exit_code_is_green_on_the_committed_corpus() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ada-lint"))
        .args(["--self-check", "--root"])
        .arg(&repo_root)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{}", stdout);
    assert!(stdout.contains("7/7 fixtures ok"), "{}", stdout);
}
