//! Golden-baseline test: the committed `LINT.json` at the repo root must
//! match a fresh scan of the real workspace, rule by rule.
//!
//! This pins two properties at once: the tree stays at zero open findings
//! (every violation is either fixed or carries a reasoned allow), and the
//! suppression counts cannot drift silently — adding or removing an
//! `ada-lint: allow` without regenerating the baseline
//! (`cargo run -p ada-lint -- --workspace --json LINT.json`) fails here.

use ada_lint::run_workspace;
use std::path::Path;

#[test]
fn committed_baseline_matches_a_fresh_workspace_scan() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let baseline_path = repo_root.join("LINT.json");
    let baseline_bytes = std::fs::read(&baseline_path).unwrap();
    let baseline = ada_json::parse(&baseline_bytes).unwrap();
    assert_eq!(
        baseline.field("schema").unwrap().as_str().unwrap(),
        "ada-lint/2"
    );

    let report = run_workspace(repo_root).unwrap();
    assert_eq!(
        report.unsuppressed().count(),
        0,
        "the tree must stay at zero open findings: {:?}",
        report.unsuppressed().collect::<Vec<_>>()
    );
    assert_eq!(
        baseline
            .field("unsuppressed_total")
            .unwrap()
            .as_u64()
            .unwrap(),
        0
    );
    assert_eq!(
        baseline
            .field("suppressed_total")
            .unwrap()
            .as_u64()
            .unwrap(),
        report.suppressed().count() as u64,
        "suppression count drifted; regenerate LINT.json"
    );
    assert_eq!(
        baseline.field("files_scanned").unwrap().as_u64().unwrap(),
        report.files_scanned as u64,
        "file-discovery drifted; regenerate LINT.json"
    );

    let rules = baseline.field("rules").unwrap();
    for (rule, open, quiet) in report.rule_counts() {
        let entry = rules
            .field(rule)
            .unwrap_or_else(|_| panic!("rule {} missing from LINT.json", rule));
        let get = |key: &str| entry.field(key).unwrap().as_u64().unwrap();
        assert_eq!(
            (get("unsuppressed"), get("suppressed")),
            (open as u64, quiet as u64),
            "rule {} drifted from the committed baseline; regenerate LINT.json",
            rule
        );
    }
}
