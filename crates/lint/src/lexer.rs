//! A small Rust lexer — just enough fidelity for lint rules.
//!
//! The rules in this crate match on *token* streams, never on raw text, so
//! an `unwrap` inside a string literal, a doc comment, or a `//` comment can
//! never produce a finding. The lexer therefore has to get the tricky
//! boundaries right:
//!
//! * line comments vs. doc comments (both become comment tokens),
//! * nested block comments (`/* /* */ */`),
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary number of `#` guards (`r##"…"##`),
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#type`).
//!
//! It does **not** attempt full semantic analysis (no macro expansion, no
//! type resolution); spans are 1-based line/column positions counted in
//! characters, matching what editors display.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included in text).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A string literal of any flavour (`"…"`, `b"…"`, `r#"…"#`).
    Str,
    /// A numeric literal (integer or float, suffix included).
    Num,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// A `//` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// A `/* … */` comment (possibly nested), including `/** … */`.
    BlockComment,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification used by the rules.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in chars) of the first character.
    pub col: u32,
}

impl Token {
    /// True for both comment kinds — rules skip these when matching code.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Indices of the non-comment tokens — the "code view" every pass scans.
/// Positions into this vector are called *code indices* throughout the
/// crate; `code[j]` maps one back to the raw token stream.
pub fn code_indices(tokens: &[Token]) -> Vec<usize> {
    (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect()
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Never fails: unterminated literals and
/// comments extend to end-of-file, which is good enough for linting (the
/// compiler rejects such files anyway).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks: Vec<Token> = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col, start) = (cur.line, cur.col, cur.i);
        let kind = if c.is_whitespace() {
            cur.bump();
            continue;
        } else if c == '/' && cur.peek(1) == Some('/') {
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            TokenKind::LineComment
        } else if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        } else if is_ident_start(c) {
            lex_ident_or_literal(&mut cur)
        } else if c == '"' {
            consume_string(&mut cur);
            TokenKind::Str
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cur)
        } else if c.is_ascii_digit() {
            consume_number(&mut cur);
            TokenKind::Num
        } else {
            cur.bump();
            TokenKind::Punct
        };
        let text: String = cur.chars[start..cur.i].iter().collect();
        toks.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    toks
}

/// At an identifier-start char: disambiguate raw strings (`r"`, `r#"`),
/// byte strings (`b"`, `br#"`), byte chars (`b'x'`) and raw identifiers
/// (`r#type`) from plain identifiers.
fn lex_ident_or_literal(cur: &mut Cursor) -> TokenKind {
    let c = cur.peek(0).unwrap_or(' ');
    match (c, cur.peek(1), cur.peek(2)) {
        ('r', Some('"'), _) => {
            cur.bump();
            consume_raw_string(cur);
            TokenKind::Str
        }
        ('r', Some('#'), Some(n)) if n == '"' || n == '#' => {
            cur.bump();
            consume_raw_string(cur);
            TokenKind::Str
        }
        ('b', Some('"'), _) => {
            cur.bump();
            consume_string(cur);
            TokenKind::Str
        }
        ('b', Some('r'), Some(n)) if n == '"' || n == '#' => {
            cur.bump();
            cur.bump();
            consume_raw_string(cur);
            TokenKind::Str
        }
        ('b', Some('\''), _) => {
            cur.bump();
            consume_char(cur);
            TokenKind::Char
        }
        ('r', Some('#'), Some(n)) if is_ident_start(n) => {
            cur.bump();
            cur.bump();
            consume_ident(cur);
            TokenKind::Ident
        }
        _ => {
            consume_ident(cur);
            TokenKind::Ident
        }
    }
}

fn consume_ident(cur: &mut Cursor) {
    while let Some(ch) = cur.peek(0) {
        if !is_ident_continue(ch) {
            break;
        }
        cur.bump();
    }
}

/// Cursor is on the opening `"`. Consumes through the closing quote,
/// honouring backslash escapes.
fn consume_string(cur: &mut Cursor) {
    cur.bump();
    while let Some(ch) = cur.peek(0) {
        match ch {
            '\\' => {
                cur.bump();
                cur.bump();
            }
            '"' => {
                cur.bump();
                break;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// Cursor is on the first `#` or the `"` of a raw string (after `r`/`br`).
/// Counts the `#` guards and consumes until `"` followed by that many `#`s.
fn consume_raw_string(cur: &mut Cursor) {
    let mut guards = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        guards += 1;
    }
    if cur.peek(0) != Some('"') {
        return; // not actually a raw string; give up gracefully
    }
    cur.bump();
    'scan: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for k in 0..guards {
                if cur.peek(k) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..guards {
                cur.bump();
            }
            break;
        }
    }
}

/// Cursor is on a `'`: either a lifetime (`'a`, `'static`, `'_`) or a char
/// literal (`'x'`, `'\n'`, `'{'`). The grammar rule: `'` + identifier not
/// followed by a closing `'` is a lifetime; everything else is a char.
fn lex_char_or_lifetime(cur: &mut Cursor) -> TokenKind {
    match (cur.peek(1), cur.peek(2)) {
        (Some(n), after) if is_ident_start(n) && after != Some('\'') => {
            cur.bump();
            consume_ident(cur);
            TokenKind::Lifetime
        }
        _ => {
            consume_char(cur);
            TokenKind::Char
        }
    }
}

/// Cursor is on the opening `'` of a char literal. Consumes through the
/// closing `'`, honouring escapes (`'\''`, `'\u{1F600}'`).
fn consume_char(cur: &mut Cursor) {
    cur.bump();
    if cur.peek(0) == Some('\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    // Multi-char escapes (\u{…}) leave residue before the closing quote.
    while let Some(ch) = cur.peek(0) {
        if ch == '\'' {
            cur.bump();
            break;
        }
        if ch == '\n' {
            break; // malformed; don't swallow the rest of the file
        }
        cur.bump();
    }
}

/// Cursor is on an ASCII digit. Consumes integer/float/hex literals with
/// suffixes; stops before `..` so ranges keep their punctuation.
fn consume_number(cur: &mut Cursor) {
    while let Some(ch) = cur.peek(0) {
        if !is_ident_continue(ch) {
            break;
        }
        cur.bump();
    }
    if cur.peek(0) == Some('.') {
        if let Some(d) = cur.peek(1) {
            if d.is_ascii_digit() {
                cur.bump();
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    cur.bump();
                }
            }
        }
    }
}
