#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

//! # ada-lint — workspace-aware static analysis for the ADA reproduction
//!
//! The ingest and query paths are multi-threaded pipelines whose
//! correctness rests on conventions `clippy` cannot see: bounded channels
//! only, no panics on library hot paths (a panic inside a worker poisons a
//! channel instead of surfacing an [`AdaError`]-style structured error),
//! every error variant mapped to a distinct telemetry kind, `parking_lot`
//! locks on hot crates. This crate locks those invariants in:
//!
//! * [`lexer`] — a small Rust lexer (comments, strings, raw strings,
//!   lifetimes handled correctly) so rules match tokens, not text;
//! * [`rules`] — per-file rules with stable IDs, span-accurate diagnostics
//!   and `// ada-lint: allow(rule-id) reason` suppression;
//! * [`semantic`] — cross-file passes: the `AdaError::kind()` map stays
//!   exhaustive and distinct, and `METRICS.md` neither misses an emitted
//!   name nor carries a stale one;
//! * [`callgraph`] — the workspace symbol table (functions, impl blocks,
//!   lock-typed fields) and call resolution built over the token streams;
//! * [`concurrency`] — the four cross-crate concurrency passes
//!   (`lock-order-cycle`, `no-blocking-under-lock`,
//!   `trace-context-propagated`, `unjoined-spawn`) over a per-function
//!   guard-liveness walk (DESIGN.md §15).
//!
//! Run it as `cargo run -p ada-lint -- --workspace [--deny] [--json PATH]`
//! or `repro lint [--json]`; the verify gate runs it with `--deny` after
//! clippy and rustfmt, plus `--self-check` over the fixture corpus.
//!
//! [`AdaError`]: https://docs.rs/ada-core

pub mod callgraph;
pub mod concurrency;
pub mod lexer;
pub mod rules;
pub mod semantic;

use callgraph::SourceFile;
use rules::{Allow, Diagnostic, FileClass, RULES};
use std::path::{Path, PathBuf};

/// Anything that stops the lint from running (I/O, missing workspace).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// No workspace root (a `Cargo.toml` with `[workspace]`) was found.
    NoWorkspace(PathBuf),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "io error at {}: {}", path.display(), source)
            }
            LintError::NoWorkspace(start) => write!(
                f,
                "no Cargo.toml with [workspace] at or above {}",
                start.display()
            ),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::NoWorkspace(_) => None,
        }
    }
}

/// The outcome of a full workspace scan.
#[derive(Debug)]
pub struct LintReport {
    /// All diagnostics, suppressed ones included, ordered by path/line/col.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files lexed and scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Diagnostics an `--deny` run fails on.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_none())
    }

    /// Diagnostics claimed by an `allow` comment.
    pub fn suppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_some())
    }

    /// Per-rule `(unsuppressed, suppressed)` counts over every known rule,
    /// zeros included, in [`RULES`] order — the lint baseline.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                let open = self
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule == *r && d.suppressed.is_none())
                    .count();
                let quiet = self
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule == *r && d.suppressed.is_some())
                    .count();
                (*r, open, quiet)
            })
            .collect()
    }

    /// Serialize the report (summary + every finding) as an `ada-json`
    /// value — `repro lint --json` writes this to `LINT.json`. Schema
    /// `ada-lint/2`: v1 plus a per-rule `files` count (distinct files with
    /// any finding of that rule, suppressed included).
    pub fn to_json(&self) -> ada_json::Value {
        use ada_json::Value;
        let rules = Value::Obj(
            self.rule_counts()
                .into_iter()
                .map(|(rule, open, quiet)| {
                    let files: std::collections::BTreeSet<&str> = self
                        .diagnostics
                        .iter()
                        .filter(|d| d.rule == rule)
                        .map(|d| d.path.as_str())
                        .collect();
                    (
                        rule.to_string(),
                        Value::obj(vec![
                            ("unsuppressed", Value::num_u(open as u64)),
                            ("suppressed", Value::num_u(quiet as u64)),
                            ("files", Value::num_u(files.len() as u64)),
                        ]),
                    )
                })
                .collect(),
        );
        let finding = |d: &Diagnostic| {
            let mut fields = vec![
                ("rule", Value::str(d.rule)),
                ("path", Value::str(d.path.clone())),
                ("line", Value::num_u(d.line as u64)),
                ("col", Value::num_u(d.col as u64)),
                ("message", Value::str(d.message.clone())),
            ];
            if let Some(reason) = &d.suppressed {
                fields.push(("allow_reason", Value::str(reason.clone())));
            }
            Value::obj(fields)
        };
        Value::obj(vec![
            ("schema", Value::str("ada-lint/2")),
            ("files_scanned", Value::num_u(self.files_scanned as u64)),
            (
                "unsuppressed_total",
                Value::num_u(self.unsuppressed().count() as u64),
            ),
            (
                "suppressed_total",
                Value::num_u(self.suppressed().count() as u64),
            ),
            ("rules", rules),
            (
                "findings",
                Value::Arr(self.unsuppressed().map(finding).collect()),
            ),
            (
                "suppressions",
                Value::Arr(self.suppressed().map(finding).collect()),
            ),
        ])
    }
}

/// Walk upward from `start` to the `Cargo.toml` declaring `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let body = std::fs::read_to_string(&manifest).map_err(|source| LintError::Io {
                path: manifest.clone(),
                source,
            })?;
            if body.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(LintError::NoWorkspace(start.to_path_buf()));
        }
    }
}

/// Lint every `crates/*/src/**/*.rs` file under `root` — plus the umbrella
/// crate's `src/**` and `examples/*.rs` when present — and run the
/// cross-file semantic and concurrency passes. Deterministic: files are
/// visited in sorted order and diagnostics are ordered by path/line/col.
pub fn run_workspace(root: &Path) -> Result<LintReport, LintError> {
    let mut files: Vec<SourceFile> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
        .into_iter()
        .filter(|p| p.is_dir() && p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        load_dir(root, &crate_dir.join("src"), &crate_name, false, &mut files)?;
    }
    // The umbrella crate at the workspace root (re-exports + integration
    // surface) and the runnable examples ride under the same rules: the
    // umbrella is library code, examples are bin targets (may print).
    let root_src = root.join("src");
    if root_src.is_dir() {
        load_dir(root, &root_src, "ada", false, &mut files)?;
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        load_dir(root, &examples, "examples", true, &mut files)?;
    }

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    for file in &files {
        let (d, a) = rules::scan_file(&file.class, &file.tokens);
        diagnostics.extend(d);
        allows.extend(a);
        let rel = file.class.path.as_str();
        if rel.ends_with("/src/lib.rs") || rel == "src/lib.rs" {
            if let Some(d) = rules::check_crate_root(&file.class, &file.tokens) {
                diagnostics.push(d);
            }
        }
    }

    diagnostics.extend(semantic::check_error_kinds(&files));
    // The metric passes run only where a catalog exists: a workspace
    // without METRICS.md (e.g. rule-test fixtures) opted out.
    let catalog_path = root.join("METRICS.md");
    if catalog_path.is_file() {
        let catalog = std::fs::read_to_string(&catalog_path).map_err(|source| LintError::Io {
            path: catalog_path,
            source,
        })?;
        diagnostics.extend(semantic::check_metric_names(&files, &catalog));
        diagnostics.extend(semantic::check_metric_usage(&files, &catalog));
    }

    let symbols = callgraph::build_symbols(&files);
    diagnostics.extend(concurrency::analyze(&files, &symbols));

    rules::resolve_suppressions(&mut diagnostics, &mut allows);
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Lex every `.rs` file under `dir` into [`SourceFile`]s with the given
/// crate classification.
fn load_dir(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    force_bin: bool,
    out: &mut Vec<SourceFile>,
) -> Result<(), LintError> {
    let mut paths = Vec::new();
    collect_rs_files(dir, &mut paths)?;
    paths.sort();
    for file in paths {
        let rel = rel_path(root, &file);
        let body = std::fs::read_to_string(&file).map_err(|source| LintError::Io {
            path: file.clone(),
            source,
        })?;
        let tokens = lexer::lex(&body);
        let class = FileClass {
            crate_name: crate_name.to_string(),
            path: rel.clone(),
            is_bin_target: force_bin || rel.ends_with("src/main.rs") || rel.contains("/src/bin/"),
        };
        out.push(SourceFile::new(class, tokens));
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
